"""The four stateful workload apps, runnable on both switch targets.

Each app exercises one primitive from this package on the central
(stateful) pipeline path:

* :class:`TokenBucketApp` — per-flow rate limiting over
  :class:`~repro.stateful.scr.ScrTokenBucket` (state-compute
  replication: per-ingress-lane budget shares + periodic reconcile).
* :class:`SynFloodApp` — half-open connection tracking as an
  :class:`~repro.stateful.efsm.EfsmSpec`, flagging sources whose
  ``half_open`` register crosses a threshold and dropping their SYNs.
* :class:`HeavyHitterApp` — count-min sketch rows in pipeline registers
  with threshold promotion into an exact match table (top-k heavy
  hitters).
* :class:`KeyCacheApp` — in-network key cache over a last-writer-wins
  :class:`~repro.stateful.replicated.ReplicatedObject`, write-through
  PUTs invalidating peer replicas at the next merge round.

All four follow the fabric-app conventions: :meth:`claims` gates the
stateful path by opcode so transit traffic takes plain forwarding,
requests are consumed and re-emitted with a terminal opcode
(``OP_RESULT``/``OP_REPLY``), and emissions inherit ``origin_time`` so
serve mode measures end-to-end latency.  Replies are addressed by
``dst_ip`` in a fabric or by a fixed ``result_port`` on a single switch.
"""

from __future__ import annotations

from ..arch.app import PipelineContext, SwitchApp
from ..arch.decision import Decision
from ..errors import ConfigError
from ..net.headers import OP_DATA, OP_GET, OP_PUT, OP_REPLY, OP_RESULT
from ..net.packet import Packet
from ..net.phv import PHV
from ..net.traffic import make_coflow_packet
from ..sim.rng import stable_hash64
from ..tables.mat import MatchKind, MatchTable
from .efsm import Action, EfsmEngine, EfsmSpec, Guard, Transition
from .replicated import ReplicatedObject
from .scr import ScrTokenBucket

__all__ = [
    "OP_ACK",
    "OP_FIN",
    "OP_SYN",
    "HeavyHitterApp",
    "KeyCacheApp",
    "SYN_FLOOD_EFSM",
    "SynFloodApp",
    "TokenBucketApp",
]

# TCP-ish control opcodes for the SYN-flood EFSM, in the coflow header's
# 8-bit opcode field above the built-in OP_* range (net/headers.py).
OP_SYN = 6
OP_ACK = 7
OP_FIN = 8


class StatefulApp(SwitchApp):
    """Shared plumbing: opcode-gated claims and reply addressing."""

    #: Opcodes this app's stateful path consumes.
    CLAIM_OPCODES: tuple[int, ...] = (OP_DATA,)

    def __init__(
        self,
        name: str,
        elements_per_packet: int = 1,
        result_port: int | None = None,
    ) -> None:
        super().__init__(name, elements_per_packet)
        self.result_port = result_port
        self.results_emitted = 0

    def uses_central_state(self) -> bool:
        return True

    def claims(self, packet: Packet) -> bool:
        if not packet.has_header("coflow"):
            return False
        return packet.header("coflow")["opcode"] in self.CLAIM_OPCODES

    def _emit(
        self,
        packet: Packet,
        opcode: int,
        elements: list[tuple[int, int]],
        dst_ip: int | None = None,
    ) -> Packet:
        """Build one terminal-opcode emission for a consumed request.

        ``dst_ip=None`` keeps the request's own destination (fabric
        routing continues toward the original target); single-switch
        instances address by ``result_port`` instead.
        """
        header = packet.header("coflow")
        if dst_ip is None:
            dst_ip = (
                packet.header("ipv4")["dst_ip"]
                if packet.has_header("ipv4")
                else 0
            )
        out = make_coflow_packet(
            header["coflow_id"],
            flow_id=header["flow_id"],
            seq=self.results_emitted,
            elements=elements,
            opcode=opcode,
            worker_id=header["worker_id"],
            dst_ip=dst_ip if self.result_port is None else 0,
        )
        if self.result_port is not None:
            out.meta.egress_port = self.result_port
        if packet.meta.origin_time is not None:
            out.meta.origin_time = packet.meta.origin_time
        self.results_emitted += 1
        return out


class TokenBucketApp(StatefulApp):
    """Per-flow token-bucket rate limiting via state-compute replication."""

    CLAIM_OPCODES = (OP_DATA,)

    def __init__(
        self,
        flows: int,
        lanes: int,
        capacity: float,
        refill_per_s: float,
        reconcile_period_s: float,
        elements_per_packet: int = 1,
        result_port: int | None = None,
    ) -> None:
        super().__init__("tokenbucket", elements_per_packet, result_port)
        if reconcile_period_s <= 0:
            raise ConfigError("token bucket: reconcile period must be > 0")
        self.bucket = ScrTokenBucket(flows, lanes, capacity, refill_per_s)
        self.reconcile_period_s = reconcile_period_s
        self._next_reconcile_s = reconcile_period_s
        self.admitted = 0
        self.rate_limited = 0

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        if not self.claims(packet):
            return Decision.forward()
        if ctx.now >= self._next_reconcile_s:
            self.bucket.reconcile(ctx.now)
            self._next_reconcile_s += self.reconcile_period_s
        header = packet.header("coflow")
        flow = header["flow_id"] % self.bucket.flows
        lane = (packet.meta.ingress_port or 0) % self.bucket.lanes
        # Charge the lane's bucket access as a real register write so the
        # resource monitor sees the state traffic.
        tokens = ctx.register("tb_tokens", self.bucket.flows, width_bits=32)
        admitted = self.bucket.try_consume(lane, flow, 1.0, ctx.now)
        tokens.write(flow, int(self.bucket.lane_tokens(lane, flow)))
        if not admitted:
            self.rate_limited += 1
            return Decision.drop("rate_limited")
        self.admitted += 1
        elements = (
            [(e.key, e.value) for e in packet.payload]
            if packet.payload is not None
            else []
        )
        return Decision.consume(self._emit(packet, OP_RESULT, elements))


#: Half-open connection tracking, one machine per source.
SYN_FLOOD_EFSM = EfsmSpec(
    name="synflood",
    states=("IDLE", "PENDING", "OPEN"),
    initial="IDLE",
    events=("syn", "ack", "fin"),
    registers=(("half_open", 16), ("total_syn", 32)),
    transitions=(
        Transition(
            "IDLE", "syn", "PENDING",
            actions=(Action("half_open", "add", 1), Action("total_syn", "add", 1)),
        ),
        Transition(
            "PENDING", "syn", "PENDING",
            actions=(Action("half_open", "add", 1), Action("total_syn", "add", 1)),
        ),
        Transition(
            "PENDING", "ack", "OPEN",
            guard=Guard("half_open", "ge", 1),
            actions=(Action("half_open", "add", -1),),
        ),
        Transition("PENDING", "fin", "IDLE"),
        Transition(
            "OPEN", "syn", "PENDING",
            actions=(Action("half_open", "add", 1), Action("total_syn", "add", 1)),
        ),
        Transition("OPEN", "fin", "IDLE"),
    ),
)

_SYN_EVENTS = {OP_SYN: "syn", OP_ACK: "ack", OP_FIN: "fin"}


class SynFloodApp(StatefulApp):
    """SYN-flood detector: the half-open EFSM plus threshold mitigation."""

    CLAIM_OPCODES = (OP_SYN, OP_ACK, OP_FIN)

    def __init__(
        self,
        sources: int,
        threshold: int,
        result_port: int | None = None,
    ) -> None:
        super().__init__("synflood", 1, result_port)
        if threshold < 1:
            raise ConfigError("syn flood: threshold must be >= 1")
        self.engine = EfsmEngine(SYN_FLOOD_EFSM, sources)
        self.threshold = threshold
        self.mitigated = 0

    def placement_key(self, packet: Packet) -> int:
        # All of a source's events must meet the same per-partition EFSM
        # arrays, so place by source id, not by payload key.
        if packet.has_header("coflow"):
            return packet.header("coflow")["flow_id"]
        return 0

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        if not self.claims(packet):
            return Decision.forward()
        header = packet.header("coflow")
        source = header["flow_id"]
        event = _SYN_EVENTS[header["opcode"]]
        self.engine.step(ctx, source, event)
        half_open = self.engine.register_of(
            ctx.pipeline_index, source, "half_open"
        )
        if event == "syn" and half_open > self.threshold:
            self.mitigated += 1
            return Decision.drop("syn_flood")
        return Decision.consume(self._emit(packet, OP_RESULT, []))

    def flagged_sources(self) -> list[int]:
        """Sources whose half-open count ended above the threshold."""
        flagged = set()
        for partition, (_, regs) in self.engine.bound.items():
            half_open = regs["half_open"]
            for slot in range(self.engine.flows):
                if half_open.read(slot) > self.threshold:
                    flagged.add(slot)
        return sorted(flagged)


class HeavyHitterApp(StatefulApp):
    """Top-k heavy hitters: count-min rows + threshold promotion."""

    CLAIM_OPCODES = (OP_DATA,)

    def __init__(
        self,
        rows: int,
        width: int,
        threshold: int,
        table_capacity: int,
        elements_per_packet: int = 1,
        result_port: int | None = None,
    ) -> None:
        super().__init__("heavyhitter", elements_per_packet, result_port)
        if rows < 1 or width < 1:
            raise ConfigError("heavy hitter: rows and width must be >= 1")
        if threshold < 1:
            raise ConfigError("heavy hitter: threshold must be >= 1")
        self.rows = rows
        self.width = width
        self.threshold = threshold
        #: App-owned exact table holding promoted keys (control-plane
        #: install, data-plane lookups), the "threshold promotion" MAT.
        self.heavy = MatchTable(
            "heavy_keys", MatchKind.EXACT, 32, table_capacity
        )
        self.promotions = 0
        self.table_full_drops = 0
        self._promoted: set[int] = set()

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        if not self.claims(packet):
            return Decision.forward()
        sketch = [
            ctx.register(f"cms_row{i}", self.width, width_bits=32)
            for i in range(self.rows)
        ]
        assert packet.payload is not None
        for element in packet.payload:
            key = element.key
            estimate = min(
                sketch[i].add(
                    stable_hash64(f"hh/r{i}/{key}") % self.width, 1
                )
                for i in range(self.rows)
            )
            self.heavy.lookup(key)
            if estimate >= self.threshold and key not in self._promoted:
                if self.heavy.is_full:
                    self.table_full_drops += 1
                else:
                    self.heavy.install(key)
                    self.promotions += 1
                self._promoted.add(key)
        elements = [(e.key, e.value) for e in packet.payload]
        return Decision.consume(self._emit(packet, OP_RESULT, elements))

    def promoted_keys(self) -> list[int]:
        return sorted(
            entry.pattern.value for entry in self.heavy._entries
        )


class KeyCacheApp(StatefulApp):
    """In-network key cache over a replicated lww object.

    GETs answer from the local replica (``OP_REPLY`` back to the
    requester) when the slot holds a version, and fall through to the
    original destination (the store, ``OP_RESULT``) on a miss.  PUTs
    write the local replica and write through to the store; peer
    replicas serve stale values until the next merge round propagates
    the invalidating version.
    """

    CLAIM_OPCODES = (OP_GET, OP_PUT)

    def __init__(
        self,
        shared: ReplicatedObject,
        replica: int,
        merge_period_s: float,
        ctrl: dict | None = None,
        result_port: int | None = None,
    ) -> None:
        super().__init__("keycache", 1, result_port)
        if shared.mode != "lww":
            raise ConfigError("key cache requires an lww replicated object")
        if merge_period_s <= 0:
            raise ConfigError("key cache: merge period must be > 0")
        self.shared = shared
        self.replica = replica
        self.merge_period_s = merge_period_s
        #: Shared across every instance over the same object so merge
        #: rounds fire once per period fabric-wide, not once per switch.
        self.ctrl = ctrl if ctrl is not None else {"next_merge_s": merge_period_s}
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        if not self.claims(packet):
            return Decision.forward()
        if ctx.now >= self.ctrl["next_merge_s"]:
            self.shared.merge_round()
            self.ctrl["next_merge_s"] += self.merge_period_s
        header = packet.header("coflow")
        assert packet.payload is not None and len(packet.payload) > 0
        key = packet.payload[0].key % self.shared.size
        # Charge the tag check as a register read on this pipeline.
        tags = ctx.register("cache_tags", self.shared.size, width_bits=32)
        tags.read(key)
        if header["opcode"] == OP_PUT:
            self.puts += 1
            self.shared.update(self.replica, key, packet.payload[0].value)
            tags.write(key, self.shared.version(self.replica, key) & 0xFFFFFFFF)
            return Decision.consume(self._emit(packet, OP_RESULT, [(key, packet.payload[0].value)]))
        version = self.shared.version(self.replica, key)
        value = self.shared.read(self.replica, key)
        if version > 0:
            self.hits += 1
            reply_ip = (
                packet.header("ipv4")["src_ip"]
                if packet.has_header("ipv4")
                else 0
            )
            return Decision.consume(
                self._emit(packet, OP_REPLY, [(key, value)], dst_ip=reply_ip)
            )
        self.misses += 1
        return Decision.consume(self._emit(packet, OP_RESULT, [(key, 0)]))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
