"""State-compute replication: per-lane state + periodic reconciliation.

Sequential register access serializes stateful packet processing: one
memory, one access per packet, one pipeline.  State-compute replication
(Xu et al., arXiv:2309.14647) trades that bottleneck for N independent
replicas — one per ingress lane/port — each updated locally without
coordination, plus a periodic reconciliation step that folds the lane
partials back into the authoritative value.

Two shapes live here:

* :class:`ReplicatedCounter` — the exact case.  Counters commute, so
  folding lane partials reproduces the sequential result bit-for-bit;
  :meth:`ReplicatedCounter.drift` is identically zero after reconcile.
* :class:`ScrTokenBucket` — the approximate case.  Admission decisions
  consume shared budget, so partitioning the budget across lanes changes
  *which* packets are admitted relative to one sequential bucket.  The
  bucket runs a shadow sequential bucket over the same decision stream
  and reports the admission divergence — the quantity the reconciliation
  period trades against state-access parallelism.

Like the replicated objects, reconciliation traffic is charged
(transfers, moved tokens) rather than injected as packets.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["ReplicatedCounter", "ScrTokenBucket"]


class ReplicatedCounter:
    """Per-lane replicated counters folded exactly at reconcile time."""

    def __init__(self, name: str, size: int, lanes: int) -> None:
        if size <= 0 or lanes <= 0:
            raise ConfigError(
                f"replicated counter {name!r}: size and lanes must be > 0"
            )
        self.name = name
        self.size = size
        self.lanes = lanes
        self._partials = [[0] * size for _ in range(lanes)]
        self._folded = [0] * size
        self._shadow = [0] * size  # sequential ground truth
        self.adds = 0
        self.reconciliations = 0
        self.reconciled_cells = 0

    def add(self, lane: int, index: int, value: int = 1) -> int:
        if not 0 <= lane < self.lanes:
            raise ConfigError(
                f"replicated counter {self.name!r}: lane {lane} out of "
                f"range [0, {self.lanes})"
            )
        slot = index % self.size
        self.adds += 1
        self._partials[lane][slot] += value
        self._shadow[slot] += value
        return self._partials[lane][slot]

    def reconcile(self) -> int:
        """Fold every lane partial into the authoritative array.

        Returns the number of non-zero cells folded this round.
        """
        self.reconciliations += 1
        folded = 0
        for partial in self._partials:
            for slot, value in enumerate(partial):
                if value:
                    self._folded[slot] += value
                    partial[slot] = 0
                    folded += 1
        self.reconciled_cells += folded
        return folded

    def total(self, index: int) -> int:
        """Authoritative + in-flight lane partials for one slot."""
        slot = index % self.size
        return self._folded[slot] + sum(p[slot] for p in self._partials)

    def drift(self) -> int:
        """Max |replicated - sequential| over all slots (0 == exact)."""
        return max(
            abs(self.total(slot) - self._shadow[slot])
            for slot in range(self.size)
        )


class ScrTokenBucket:
    """Per-flow token buckets with per-lane budget shares.

    The logical bucket for each flow holds ``capacity`` tokens refilled
    at ``refill_per_s``; each lane owns an equal share it draws from
    without coordination.  :meth:`reconcile` pools the lanes' leftover
    tokens and redistributes them evenly (remainder to the lowest lane
    indices — deterministic), modeling the periodic state exchange.

    A shadow sequential bucket replays the same ``(flow, tokens, time)``
    decision stream against the undivided budget; ``admit_divergence``
    counts decisions where the two disagree.
    """

    def __init__(
        self,
        flows: int,
        lanes: int,
        capacity: float,
        refill_per_s: float,
    ) -> None:
        if flows <= 0 or lanes <= 0:
            raise ConfigError("token bucket: flows and lanes must be > 0")
        if capacity <= 0 or refill_per_s < 0:
            raise ConfigError(
                "token bucket: capacity must be > 0 and refill >= 0"
            )
        self.flows = flows
        self.lanes = lanes
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        share = capacity / lanes
        self._tokens = [[share] * flows for _ in range(lanes)]
        self._refill_at = [[0.0] * flows for _ in range(lanes)]
        self._shadow_tokens = [capacity] * flows
        self._shadow_refill_at = [0.0] * flows
        self.admitted = 0
        self.dropped = 0
        self.shadow_admitted = 0
        self.admit_divergence = 0
        self.reconciliations = 0
        self.tokens_moved = 0.0

    def _lane_refill(self, lane: int, flow: int, now_s: float) -> None:
        elapsed = now_s - self._refill_at[lane][flow]
        if elapsed > 0:
            cap = self.capacity / self.lanes
            self._tokens[lane][flow] = min(
                cap,
                self._tokens[lane][flow]
                + elapsed * self.refill_per_s / self.lanes,
            )
        self._refill_at[lane][flow] = now_s

    def try_consume(
        self, lane: int, flow: int, tokens: float, now_s: float
    ) -> bool:
        """One admission decision on ``lane``; updates the shadow too."""
        if not 0 <= lane < self.lanes:
            raise ConfigError(
                f"token bucket: lane {lane} out of range [0, {self.lanes})"
            )
        slot = flow % self.flows
        self._lane_refill(lane, slot, now_s)
        admitted = self._tokens[lane][slot] >= tokens
        if admitted:
            self._tokens[lane][slot] -= tokens
            self.admitted += 1
        else:
            self.dropped += 1

        elapsed = now_s - self._shadow_refill_at[slot]
        if elapsed > 0:
            self._shadow_tokens[slot] = min(
                self.capacity,
                self._shadow_tokens[slot] + elapsed * self.refill_per_s,
            )
        self._shadow_refill_at[slot] = now_s
        shadow_admit = self._shadow_tokens[slot] >= tokens
        if shadow_admit:
            self._shadow_tokens[slot] -= tokens
            self.shadow_admitted += 1
        if admitted != shadow_admit:
            self.admit_divergence += 1
        return admitted

    def reconcile(self, now_s: float) -> float:
        """Pool leftover tokens per flow and re-split them evenly.

        Returns the total token mass moved between lanes this round.
        """
        self.reconciliations += 1
        moved = 0.0
        for flow in range(self.flows):
            for lane in range(self.lanes):
                self._lane_refill(lane, flow, now_s)
            pool = sum(self._tokens[lane][flow] for lane in range(self.lanes))
            share = pool / self.lanes
            for lane in range(self.lanes):
                moved += abs(self._tokens[lane][flow] - share)
                self._tokens[lane][flow] = share
        # Each transfer moves mass both out of and into lanes; count the
        # one-way mass.
        moved /= 2.0
        self.tokens_moved += moved
        return moved

    def lane_tokens(self, lane: int, flow: int) -> float:
        return self._tokens[lane][flow % self.flows]
