"""LOADER-style replicated state objects with eventual merge.

A :class:`ReplicatedObject` models one logical array of switch state
kept as N replicas — one per switch instance (fabric) or per pipeline
partition (single switch).  Each replica absorbs writes locally and at
full speed; a periodic *merge round* exchanges the dirty entries
all-to-all and folds them under the object's merge discipline:

* ``"sum"``  — commutative counters: replicas exchange deltas, every
  replica converges to the global sum.
* ``"max"``  — monotone high-water marks: replicas exchange candidates,
  every replica converges to the global max.
* ``"lww"``  — last-writer-wins cells versioned by a deterministic
  logical clock: the highest-version write for each slot wins
  everywhere (the key-cache invalidation discipline).

The object is control-plane bookkeeping: merge traffic is *charged*
(messages, bytes, rounds) rather than injected as wire packets, the same
way the coflow placement layer charges steering rather than emitting
control packets.  Between merges, replicas legitimately disagree — the
stale-read accounting (:meth:`read` vs the logical clock) is the
experiment, not a bug.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["ReplicatedObject"]

_MODES = ("sum", "max", "lww")


class ReplicatedObject:
    """One logical array replicated across ``replicas`` instances."""

    def __init__(
        self,
        name: str,
        size: int,
        replicas: int,
        mode: str = "sum",
        width_bits: int = 64,
    ) -> None:
        if size <= 0:
            raise ConfigError(f"replicated object {name!r}: size must be > 0")
        if replicas <= 0:
            raise ConfigError(
                f"replicated object {name!r}: replicas must be > 0"
            )
        if mode not in _MODES:
            raise ConfigError(
                f"replicated object {name!r}: mode {mode!r} not in {_MODES}"
            )
        self.name = name
        self.size = size
        self.replicas = replicas
        self.mode = mode
        self.width_bits = width_bits
        self._views = [[0] * size for _ in range(replicas)]
        self._versions = [[0] * size for _ in range(replicas)]
        #: replica -> {slot: pending payload} awaiting the next merge.
        #: sum: accumulated delta; max: best candidate; lww: (version, value).
        self._dirty: list[dict[int, object]] = [{} for _ in range(replicas)]
        self._clock = 0  # deterministic logical clock for lww versions
        self.updates = 0
        self.reads = 0
        self.stale_reads = 0
        self.merge_rounds = 0
        self.merge_messages = 0
        self.merge_bytes = 0

    def _check(self, replica: int, index: int) -> int:
        if not 0 <= replica < self.replicas:
            raise ConfigError(
                f"replicated object {self.name!r}: replica {replica} out "
                f"of range [0, {self.replicas})"
            )
        return index % self.size

    def update(self, replica: int, index: int, value: int) -> int:
        """Apply one local write; returns the replica's new cell value.

        ``value`` is a delta for ``sum``, a candidate for ``max``, and
        the new cell value for ``lww``.
        """
        slot = self._check(replica, index)
        self.updates += 1
        view = self._views[replica]
        dirty = self._dirty[replica]
        if self.mode == "sum":
            view[slot] += value
            dirty[slot] = dirty.get(slot, 0) + value
        elif self.mode == "max":
            view[slot] = max(view[slot], value)
            dirty[slot] = max(dirty.get(slot, value), value)
        else:  # lww
            self._clock += 1
            view[slot] = value
            self._versions[replica][slot] = self._clock
            dirty[slot] = (self._clock, value)
        return view[slot]

    def read(self, replica: int, index: int) -> int:
        """Local read; counts a stale read when a newer lww version
        exists on some other replica (pre-merge disagreement)."""
        slot = self._check(replica, index)
        self.reads += 1
        if self.mode == "lww":
            newest = max(v[slot] for v in self._versions)
            if self._versions[replica][slot] < newest:
                self.stale_reads += 1
        return self._views[replica][slot]

    def version(self, replica: int, index: int) -> int:
        return self._versions[replica][self._check(replica, index)]

    def merge_round(self) -> dict[str, int]:
        """All-to-all exchange of dirty entries; folds and clears them.

        Each replica with D dirty slots sends one message of D entries to
        each of the other replicas.  Returns this round's stats.
        """
        self.merge_rounds += 1
        entry_bytes = max(1, self.width_bits // 8) + 8  # value + slot tag
        outgoing = [dict(d) for d in self._dirty]
        for d in self._dirty:
            d.clear()
        messages = 0
        transferred = 0
        for sender, dirty in enumerate(outgoing):
            if not dirty:
                continue
            messages += self.replicas - 1
            transferred += len(dirty) * (self.replicas - 1)
            for receiver in range(self.replicas):
                if receiver == sender:
                    continue
                view = self._views[receiver]
                for slot, payload in dirty.items():
                    if self.mode == "sum":
                        view[slot] += payload
                    elif self.mode == "max":
                        view[slot] = max(view[slot], payload)
                    else:  # lww
                        version, value = payload
                        if version > self._versions[receiver][slot]:
                            view[slot] = value
                            self._versions[receiver][slot] = version
        round_bytes = transferred * entry_bytes
        self.merge_messages += messages
        self.merge_bytes += round_bytes
        return {
            "messages": messages,
            "bytes": round_bytes,
            "entries": transferred,
        }

    def converged(self) -> bool:
        """True when every replica holds the identical view."""
        first = self._views[0]
        return all(view == first for view in self._views[1:])

    def rounds_to_convergence(self, limit: int = 8) -> int:
        """Merge until converged; returns rounds taken (<= ``limit``).

        With all-to-all exchange one round converges sum/max and lww
        (ties broken by version); the limit guards the loop anyway.
        """
        rounds = 0
        while not self.converged():
            if rounds >= limit:
                raise ConfigError(
                    f"replicated object {self.name!r} failed to converge "
                    f"in {limit} merge rounds"
                )
            self.merge_round()
            rounds += 1
        return rounds

    def global_value(self, index: int) -> int:
        """The converged value a slot would reach (without merging)."""
        slot = index % self.size
        if self.mode == "sum":
            merged = self._views[0][slot]
            for replica in range(1, self.replicas):
                merged += self._dirty[replica].get(slot, 0)
            # view[0] already includes its own dirty delta; others' views
            # may double-count entries merged earlier, so fold pending
            # deltas from the other replicas only.
            return merged
        if self.mode == "max":
            return max(view[slot] for view in self._views)
        best = max(range(self.replicas), key=lambda r: self._versions[r][slot])
        return self._views[best][slot]
