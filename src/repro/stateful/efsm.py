"""EFSM: declarative per-flow state machines over switch registers.

The Open Packet Processor lineage (Bianchi et al.) programs switches as
extended finite-state machines: each flow carries a current state plus a
small set of per-flow registers; packets are *events* that fire guarded
transitions whose actions mutate the registers.  This module gives the
repro codebase that construct in a target-neutral form:

* :class:`EfsmSpec` is the declarative machine — states, events, per-flow
  registers, and ordered :class:`Transition` rules with optional
  :class:`Guard` predicates and :class:`Action` register updates.
* :class:`EfsmEngine` executes a spec against a pipeline's
  :class:`~repro.tables.registers.RegisterArray` storage (one state array
  plus one array per declared register, all sized to the flow-slot count),
  so every step is charged as real register reads/writes in the resource
  monitor.
* :func:`efsm_program` lowers a spec to the :mod:`repro.program` table
  graph — an exact flow table carrying the machine's stateful bits plus a
  state×event transition table — which is how the compiler charges RMT's
  per-key replication vs ADCP's shared-copy allocation for the same
  machine (§3.2 of the paper).

Transition resolution is first-match in declaration order: the first rule
whose (state, event) pair matches and whose guard passes fires.  A packet
that matches no rule leaves the flow's state untouched and is counted in
:attr:`EfsmEngine.unmatched`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..program import ActionSpec, ProgramGraph, TableSpec
from ..tables.mat import MatchKind

__all__ = [
    "Action",
    "EfsmEngine",
    "EfsmSpec",
    "Guard",
    "Transition",
    "efsm_program",
]

_GUARD_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
_ACTION_OPS = ("set", "add", "max", "min")


@dataclass(frozen=True)
class Guard:
    """Predicate over one per-flow register: ``register <op> operand``."""

    register: str
    op: str
    operand: int

    def __post_init__(self) -> None:
        if self.op not in _GUARD_OPS:
            raise ConfigError(
                f"guard op {self.op!r} not in {_GUARD_OPS}"
            )

    def evaluate(self, value: int) -> bool:
        if self.op == "eq":
            return value == self.operand
        if self.op == "ne":
            return value != self.operand
        if self.op == "lt":
            return value < self.operand
        if self.op == "le":
            return value <= self.operand
        if self.op == "gt":
            return value > self.operand
        return value >= self.operand


@dataclass(frozen=True)
class Action:
    """Register update fired by a transition.

    ``operand=None`` uses the event's carried value (the packet payload
    element), mirroring OPP's ability to fold header fields into flow
    registers.
    """

    register: str
    op: str
    operand: int | None = None

    def __post_init__(self) -> None:
        if self.op not in _ACTION_OPS:
            raise ConfigError(
                f"action op {self.op!r} not in {_ACTION_OPS}"
            )

    def apply(self, current: int, event_value: int) -> int:
        operand = self.operand if self.operand is not None else event_value
        if self.op == "set":
            return operand
        if self.op == "add":
            return current + operand
        if self.op == "max":
            return max(current, operand)
        return min(current, operand)


@dataclass(frozen=True)
class Transition:
    """One guarded rule: in ``state``, on ``event``, go to ``next_state``."""

    state: str
    event: str
    next_state: str
    guard: Guard | None = None
    actions: tuple[Action, ...] = ()


@dataclass(frozen=True)
class EfsmSpec:
    """A declarative per-flow state machine.

    ``registers`` maps register name -> width in bits; every flow slot
    gets its own copy of each register plus the state variable, which is
    what :func:`efsm_program` charges as the flow table's stateful bits.
    """

    name: str
    states: tuple[str, ...]
    initial: str
    events: tuple[str, ...]
    registers: tuple[tuple[str, int], ...] = ()
    transitions: tuple[Transition, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("EFSM name must be non-empty")
        if len(set(self.states)) != len(self.states):
            raise ConfigError(f"EFSM {self.name!r}: duplicate states")
        if len(set(self.events)) != len(self.events):
            raise ConfigError(f"EFSM {self.name!r}: duplicate events")
        if self.initial not in self.states:
            raise ConfigError(
                f"EFSM {self.name!r}: initial state {self.initial!r} "
                f"not in states"
            )
        reg_names = [name for name, _ in self.registers]
        if len(set(reg_names)) != len(reg_names):
            raise ConfigError(f"EFSM {self.name!r}: duplicate registers")
        for reg, width in self.registers:
            if width <= 0:
                raise ConfigError(
                    f"EFSM {self.name!r}: register {reg!r} width must "
                    f"be positive"
                )
        known = set(reg_names)
        for t in self.transitions:
            for state in (t.state, t.next_state):
                if state not in self.states:
                    raise ConfigError(
                        f"EFSM {self.name!r}: transition references "
                        f"unknown state {state!r}"
                    )
            if t.event not in self.events:
                raise ConfigError(
                    f"EFSM {self.name!r}: transition references unknown "
                    f"event {t.event!r}"
                )
            if t.guard is not None and t.guard.register not in known:
                raise ConfigError(
                    f"EFSM {self.name!r}: guard references unknown "
                    f"register {t.guard.register!r}"
                )
            for action in t.actions:
                if action.register not in known:
                    raise ConfigError(
                        f"EFSM {self.name!r}: action references unknown "
                        f"register {action.register!r}"
                    )

    @property
    def state_width_bits(self) -> int:
        """Bits needed to encode one state value (at least 1)."""
        return max(1, (len(self.states) - 1).bit_length())

    @property
    def flow_state_bits(self) -> int:
        """Per-flow storage: state variable + every declared register."""
        return self.state_width_bits + sum(w for _, w in self.registers)

    def state_index(self, state: str) -> int:
        return self.states.index(state)


class EfsmEngine:
    """Executes an :class:`EfsmSpec` over pipeline register arrays.

    The engine is bound to whichever pipeline partition runs the app's
    central hook: arrays are fetched lazily through
    ``ctx.register(...)`` so each partition owns the slots its placement
    hashes there, exactly like any other stateful app.  Transition
    counters are engine-global (control-plane observability, not
    data-plane state).
    """

    def __init__(self, spec: EfsmSpec, flows: int) -> None:
        if flows <= 0:
            raise ConfigError(f"EFSM {spec.name!r}: flows must be positive")
        self.spec = spec
        self.flows = flows
        self.steps = 0
        self.unmatched = 0
        self._taken: dict[tuple[str, str, str], int] = {}
        #: partition index -> (state array, {register name -> array}),
        #: recorded at bind time so post-run scans (e.g. flagged-source
        #: detection) can read the final per-flow registers.
        self.bound: dict[int, tuple] = {}

    def _arrays(self, ctx):
        state = ctx.register(
            f"efsm_{self.spec.name}_state",
            self.flows,
            width_bits=max(8, self.spec.state_width_bits),
        )
        regs = {
            name: ctx.register(
                f"efsm_{self.spec.name}_{name}", self.flows, width_bits=width
            )
            for name, width in self.spec.registers
        }
        self.bound[ctx.pipeline_index] = (state, regs)
        return state, regs

    def step(self, ctx, slot: int, event: str, value: int = 0):
        """Fire the machine for one packet.

        Returns ``(old_state, new_state, transition | None)``; ``None``
        means no rule matched and the state is unchanged.
        """
        state_arr, regs = self._arrays(ctx)
        index = slot % self.flows
        old_index = state_arr.read(index)
        old_state = self.spec.states[old_index]
        self.steps += 1
        for t in self.spec.transitions:
            if t.state != old_state or t.event != event:
                continue
            if t.guard is not None:
                if not t.guard.evaluate(regs[t.guard.register].read(index)):
                    continue
            for action in t.actions:
                arr = regs[action.register]
                arr.write(index, action.apply(arr.read(index), value))
            if t.next_state != old_state:
                state_arr.write(index, self.spec.state_index(t.next_state))
            else:
                # Self-loop still charges the state write-back.
                state_arr.write(index, old_index)
            key = (t.state, t.event, t.next_state)
            self._taken[key] = self._taken.get(key, 0) + 1
            return old_state, t.next_state, t
        self.unmatched += 1
        return old_state, old_state, None

    def state_of(self, partition: int, slot: int) -> str:
        """Current state name of a flow slot on a bound partition."""
        state_arr, _ = self.bound[partition]
        return self.spec.states[state_arr.read(slot % self.flows)]

    def register_of(self, partition: int, slot: int, register: str) -> int:
        _, regs = self.bound[partition]
        return regs[register].read(slot % self.flows)

    def transition_counts(self) -> dict[str, int]:
        """Stable ``state--event->next`` labels -> firing counts."""
        return {
            f"{s}--{e}->{n}": count
            for (s, e, n), count in sorted(self._taken.items())
        }

    @property
    def state_accesses(self) -> int:
        """Register reads+writes across every bound partition."""
        total = 0
        for state_arr, regs in self.bound.values():
            total += state_arr.access_count
            total += sum(arr.access_count for arr in regs.values())
        return total


def efsm_program(
    spec: EfsmSpec,
    flows: int,
    keys_per_packet: int = 1,
    flow_key_bits: int = 104,
) -> ProgramGraph:
    """Lower an EFSM to the compiler's table graph.

    Two tables: the exact *flow table* (keyed by the flow tuple, carrying
    every flow's state+register bits as stateful storage, looked up
    ``keys_per_packet`` times per packet) and the *transition table*
    (state x event -> next state + actions, pure lookup).  The flow table
    must resolve before the transition table, so a MATCH dependency links
    them.  Compiling this graph onto ``rmt_target()`` vs ``adcp_target()``
    is the §3.2 experiment: the scalar target replicates the flow table
    per key, the array target keeps one copy.
    """
    if flows <= 0:
        raise ConfigError(f"EFSM {spec.name!r}: flows must be positive")
    event_bits = max(1, (len(spec.events) - 1).bit_length())
    actions = tuple(
        ActionSpec(f"{spec.name}_t{i}", max(1, len(t.actions) + 1))
        for i, t in enumerate(spec.transitions)
    ) or (ActionSpec(f"{spec.name}_nop", 1),)
    flow_table = TableSpec(
        name=f"{spec.name}_flow",
        kind=MatchKind.EXACT,
        key_width_bits=flow_key_bits,
        capacity=flows,
        keys_per_packet=keys_per_packet,
        actions=(ActionSpec(f"{spec.name}_load", 1),),
        stateful_bits=flows * spec.flow_state_bits,
    )
    transition_table = TableSpec(
        name=f"{spec.name}_trans",
        kind=MatchKind.EXACT,
        key_width_bits=spec.state_width_bits + event_bits,
        capacity=max(1, len(spec.transitions)),
        keys_per_packet=keys_per_packet,
        actions=actions,
    )
    program = ProgramGraph(f"efsm_{spec.name}")
    program.add_table(flow_table)
    program.add_table(transition_table)
    program.add_dependency(flow_table.name, transition_table.name)
    return program
