"""Seeded traffic generators for the stateful workloads.

Two shapes, mirroring the coflow workloads:

* :func:`build_single` — single-switch streams paced by
  :class:`~repro.net.traffic.DeterministicSource` across four source
  ports, with replies leaving on a fixed result port.  Key/flow draws
  are zipf-skewed (``skew`` is the zipf exponent — the campaign sweeps
  it), so access concentration is a first-class experimental axis.
* :func:`build_stateful_workload` — the fabric variant, registered
  under ``stateful-<name>`` in :func:`repro.fabric.workloads.build_workload`:
  client hosts stream requests toward a server host, the first-hop leaf
  claims them, and the returned workload carries an ``app_factory`` that
  instantiates this package's apps on every switch (sharing one
  replicated cache object fabric-wide).

Ground truth for scoring (which sources *are* attackers, the true heavy
keys) rides on the stream/factory objects — it is generator knowledge,
never visible to the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigError
from ..net.headers import OP_DATA, OP_GET, OP_PUT
from ..net.packet import Packet
from ..net.traffic import DeterministicSource, make_coflow_packet, merge_sources
from ..sim.rng import make_rng, stable_hash64
from .apps import (
    OP_ACK,
    OP_FIN,
    OP_SYN,
    HeavyHitterApp,
    KeyCacheApp,
    StatefulApp,
    SynFloodApp,
    TokenBucketApp,
)
from .replicated import ReplicatedObject

__all__ = [
    "FABRIC_STATEFUL_WORKLOADS",
    "STATEFUL_WORKLOADS",
    "SingleStream",
    "build_single",
    "build_stateful_workload",
]

STATEFUL_WORKLOADS = (
    "tokenbucket",
    "synflood",
    "heavyhitter",
    "keycache",
)
FABRIC_STATEFUL_WORKLOADS = tuple(f"stateful-{w}" for w in STATEFUL_WORKLOADS)

#: Single-switch port plan: four source ports feeding one result port.
_SOURCE_PORTS = (0, 1, 2, 3)
_RESULT_PORT = 6
_STATEFUL_COFLOW = 0x5AFE

#: Fraction of sources the SYN-flood generator turns into attackers.
_ATTACK_FRACTION = 0.25
#: Heavy-hitter promotion threshold and sketch shape.
_HH_ROWS = 3
_HH_THRESHOLD = 12
_HH_TABLE_CAPACITY = 32
#: Token bucket: burst capacity (tokens) and per-flow refill as a
#: fraction of the fair-share packet rate (aggregate pps / flows), so a
#: zipf-hot flow offers several times its refill and gets limited while
#: the tail stays under budget.
_TB_CAPACITY = 16.0
_TB_REFILL_FRACTION = 0.5


@dataclass
class SingleStream:
    """One single-switch stateful run: the app, its stream, its truth.

    ``arrivals`` must be called *after* the switch is constructed — the
    generator groups multi-key packets by the app's bound placement so
    every key in a packet lands on the partition that owns its state
    (the same contract as the kv-cache app's partition-local batches).
    """

    workload: str
    app: StatefulApp
    truth: dict = field(default_factory=dict)
    _make: Callable[[float], list[tuple[float, Packet]]] = None  # type: ignore

    def arrivals(self, port_speed_bps: float) -> list[tuple[float, Packet]]:
        return self._make(port_speed_bps)


def _zipf_key(rng, skew: float, space: int) -> int:
    return (int(rng.zipf(skew)) - 1) % space


def _sample_wire_bytes(elements_per_packet: int) -> int:
    sample = make_coflow_packet(
        _STATEFUL_COFLOW, 0, 0, [(0, 0)] * max(1, elements_per_packet)
    )
    return sample.wire_bytes


def _paced(
    per_port: dict[int, list[Packet]], link_bps: float
) -> list[tuple[float, Packet]]:
    sources = [
        DeterministicSource(port, link_bps, per_port[port])
        for port in sorted(per_port)
        if per_port[port]
    ]
    return list(merge_sources(sources))


def _aggregate_pps(link_bps: float, wire_bytes: int) -> float:
    return len(_SOURCE_PORTS) * link_bps / (wire_bytes * 8)


def build_single(
    workload: str,
    *,
    flows: int = 64,
    skew: float = 1.2,
    packets: int = 400,
    seed: int = 0,
    elements_per_packet: int = 1,
    port_speed_bps: float,
) -> SingleStream:
    """Build one single-switch stateful workload (app + paced stream)."""
    if workload not in STATEFUL_WORKLOADS:
        raise ConfigError(
            f"unknown stateful workload {workload!r}; choose from "
            f"{', '.join(STATEFUL_WORKLOADS)}"
        )
    if flows < 1:
        raise ConfigError(f"flows must be >= 1, got {flows}")
    if packets < 1:
        raise ConfigError(f"packets must be >= 1, got {packets}")
    if skew <= 1.0:
        raise ConfigError(f"zipf skew must be > 1.0, got {skew}")
    builder = {
        "tokenbucket": _single_tokenbucket,
        "synflood": _single_synflood,
        "heavyhitter": _single_heavyhitter,
        "keycache": _single_keycache,
    }[workload]
    return builder(flows, skew, packets, seed, elements_per_packet, port_speed_bps)


def _round_robin_ports(packets: list[Packet]) -> dict[int, list[Packet]]:
    per_port: dict[int, list[Packet]] = {p: [] for p in _SOURCE_PORTS}
    for index, packet in enumerate(packets):
        per_port[_SOURCE_PORTS[index % len(_SOURCE_PORTS)]].append(packet)
    return per_port


def _single_tokenbucket(
    flows, skew, packets, seed, elements_per_packet, port_speed_bps
) -> SingleStream:
    wire = _sample_wire_bytes(1)
    pps = _aggregate_pps(port_speed_bps, wire)
    app = TokenBucketApp(
        flows=flows,
        lanes=len(_SOURCE_PORTS),
        capacity=_TB_CAPACITY,
        refill_per_s=_TB_REFILL_FRACTION * pps / flows,
        reconcile_period_s=32.0 / pps,
        result_port=_RESULT_PORT,
    )
    rng = make_rng(stable_hash64(f"stateful-tokenbucket/{seed}") % (2**32))

    def make(link_bps: float) -> list[tuple[float, Packet]]:
        stream = []
        for i in range(packets):
            flow = _zipf_key(rng, skew, flows)
            stream.append(
                make_coflow_packet(
                    _STATEFUL_COFLOW, flow_id=flow, seq=i, elements=[(flow, 1)]
                )
            )
        return _paced(_round_robin_ports(stream), link_bps)

    return SingleStream("tokenbucket", app, {"offered": packets}, make)


def _single_synflood(
    flows, skew, packets, seed, elements_per_packet, port_speed_bps
) -> SingleStream:
    sources = flows
    rng = make_rng(stable_hash64(f"stateful-synflood/{seed}") % (2**32))
    attackers = set(
        int(i)
        for i in rng.choice(
            sources, size=max(1, int(sources * _ATTACK_FRACTION)),
            replace=False,
        )
    )
    threshold = 3
    app = SynFloodApp(
        sources=sources, threshold=threshold, result_port=_RESULT_PORT
    )
    stream: list[Packet] = []
    syn_sent: dict[int, int] = {}
    seq = 0
    cycle = (OP_SYN, OP_ACK, OP_FIN)
    while len(stream) < packets:
        source = _zipf_key(rng, skew, sources)
        if source in attackers:
            # Flood: SYNs with no completing handshake.
            opcodes = (OP_SYN, OP_SYN, OP_SYN)
        else:
            opcodes = cycle
        for opcode in opcodes:
            if opcode == OP_SYN and source in attackers:
                syn_sent[source] = syn_sent.get(source, 0) + 1
            stream.append(
                make_coflow_packet(
                    _STATEFUL_COFLOW,
                    flow_id=source,
                    seq=seq,
                    elements=[(source, 0)],
                    opcode=opcode,
                )
            )
            seq += 1
    for extra in stream[packets:]:
        # Keep the SYN tally consistent with the truncated stream.
        header = extra.header("coflow")
        if header["opcode"] == OP_SYN and header["flow_id"] in attackers:
            syn_sent[header["flow_id"]] -= 1
    del stream[packets:]
    # Ground truth is the *detectable* attackers: those whose flood
    # actually crossed the half-open threshold inside this stream.  A
    # planted attacker the zipf draw never scheduled is indistinguishable
    # from benign and would only deflate the detection rate spuriously.
    truth = {
        "attackers": sorted(
            s for s, count in syn_sent.items() if count > threshold
        ),
        "sources": sources,
    }

    def make(link_bps: float) -> list[tuple[float, Packet]]:
        return _paced(_round_robin_ports(stream), link_bps)

    return SingleStream("synflood", app, truth, make)


def _single_heavyhitter(
    flows, skew, packets, seed, elements_per_packet, port_speed_bps
) -> SingleStream:
    key_space = flows
    app = HeavyHitterApp(
        rows=_HH_ROWS,
        width=max(8, key_space),
        threshold=_HH_THRESHOLD,
        table_capacity=_HH_TABLE_CAPACITY,
        elements_per_packet=elements_per_packet,
        result_port=_RESULT_PORT,
    )
    rng = make_rng(stable_hash64(f"stateful-heavyhitter/{seed}") % (2**32))
    keys = [
        _zipf_key(rng, skew, key_space)
        for _ in range(packets * elements_per_packet)
    ]
    counts: dict[int, int] = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    truth = {
        "counts": counts,
        "heavy": sorted(k for k, c in counts.items() if c >= _HH_THRESHOLD),
    }

    def make(link_bps: float) -> list[tuple[float, Packet]]:
        # Partition-local batches: every key in a packet must live on the
        # placement partition that owns its sketch rows, so group the key
        # stream by the app's bound placement before packing.
        buckets: dict[int, list[int]] = {}
        batches: list[list[int]] = []
        for key in keys:
            partition = app.partition_of_key(key)
            bucket = buckets.setdefault(partition, [])
            bucket.append(key)
            if len(bucket) == elements_per_packet:
                batches.append(bucket[:])
                bucket.clear()
        for partition in sorted(buckets):
            if buckets[partition]:
                batches.append(buckets[partition])
        stream = [
            make_coflow_packet(
                _STATEFUL_COFLOW,
                flow_id=batch[0],
                seq=i,
                elements=[(key, 1) for key in batch],
            )
            for i, batch in enumerate(batches)
        ]
        return _paced(_round_robin_ports(stream), link_bps)

    return SingleStream("heavyhitter", app, truth, make)


def _single_keycache(
    flows, skew, packets, seed, elements_per_packet, port_speed_bps
) -> SingleStream:
    key_space = flows
    shared = ReplicatedObject("keycache", key_space, replicas=1, mode="lww")
    wire = _sample_wire_bytes(1)
    pps = _aggregate_pps(port_speed_bps, wire)
    app = KeyCacheApp(
        shared=shared,
        replica=0,
        merge_period_s=64.0 / pps,
        result_port=_RESULT_PORT,
    )
    rng = make_rng(stable_hash64(f"stateful-keycache/{seed}") % (2**32))

    def make(link_bps: float) -> list[tuple[float, Packet]]:
        stream: list[Packet] = []
        for i in range(packets):
            key = _zipf_key(rng, skew, key_space)
            # One write in eight keeps the cache warm under churn.
            put = i % 8 == 0
            stream.append(
                make_coflow_packet(
                    _STATEFUL_COFLOW,
                    flow_id=key,
                    seq=i,
                    elements=[(key, i + 1 if put else 0)],
                    opcode=OP_PUT if put else OP_GET,
                )
            )
        return _paced(_round_robin_ports(stream), link_bps)

    return SingleStream("keycache", app, {"key_space": key_space}, make)


# --- fabric variants --------------------------------------------------------------


class StatefulAppFactory:
    """Per-switch app construction for the fabric runner.

    Callable ``factory(switch_name) -> SwitchApp``; remembers every
    instance it built (``instances``) so the stateful runner can harvest
    app counters after the run, and carries the generator's ground truth
    (``truth``).  Key-cache factories share one fabric-wide
    :class:`~repro.stateful.replicated.ReplicatedObject` across the
    switch replicas they create.
    """

    def __init__(self, build: Callable[[str], StatefulApp], truth: dict):
        self._build = build
        self.truth = truth
        self.instances: dict[str, StatefulApp] = {}

    def __call__(self, switch_name: str) -> StatefulApp:
        app = self._build(switch_name)
        self.instances[switch_name] = app
        return app


def build_stateful_workload(
    name: str,
    topology,
    *,
    coflows: int = 2,
    vector: int = 64,
    elements_per_packet: int = 1,
    link_bps: float,
    load: float = 1.0,
    seed: int = 0,
    coflow_base: int = 0,
):
    """Build a ``stateful-*`` fabric workload (dispatched from
    :func:`repro.fabric.workloads.build_workload`).

    Every host but the last streams ``vector`` request packets toward
    the last host (the server/store); the first-hop leaf's app instance
    claims and answers them.  ``expected`` stays empty — admission
    decisions (drops, cache misses) make exact terminal counts
    timing-dependent, so completion accounting is skipped and the
    stateful ledger carries the verdicts instead.
    """
    from ..fabric.workloads import FabricCoflowSpec, FabricWorkload, _timed

    short = name.removeprefix("stateful-")
    if short not in STATEFUL_WORKLOADS:
        raise ConfigError(
            f"unknown stateful fabric workload {name!r}; choose from "
            f"{', '.join(FABRIC_STATEFUL_WORKLOADS)}"
        )
    hosts = topology.host_ids
    if len(hosts) < 2:
        raise ConfigError("stateful fabric workloads need >= 2 hosts")
    server = hosts[-1]
    clients = hosts[:-1]
    skew = 1.3
    key_space = max(16, len(clients) * 4)
    specs = []
    per_host: dict[int, list[Packet]] = {}
    for group in range(coflows):
        coflow_id = coflow_base + group + 1
        members = tuple(
            c for i, c in enumerate(clients) if i % coflows == group
        ) or (clients[0],)
        specs.append(
            FabricCoflowSpec(coflow_id, members, vector, aggregated=False)
        )
    truth: dict = {"server": server, "clients": list(clients)}
    attackers: set[int] = set()
    if short == "synflood":
        rng = make_rng(stable_hash64(f"{name}/{seed}/attackers") % (2**32))
        attackers = set(
            int(clients[int(i)])
            for i in rng.choice(
                len(clients),
                size=max(1, int(len(clients) * _ATTACK_FRACTION)),
                replace=False,
            )
        )
        truth["attackers"] = sorted(attackers)
    counts: dict[int, int] = {}
    for index, client in enumerate(clients):
        rng = make_rng(stable_hash64(f"{name}/{seed}/h{client}") % (2**32))
        coflow_id = coflow_base + (index % coflows) + 1
        stream: list[Packet] = []
        for seq in range(vector):
            if short == "tokenbucket":
                packet = make_coflow_packet(
                    coflow_id, flow_id=client, seq=seq,
                    elements=[(client, 1)],
                )
            elif short == "synflood":
                if client in attackers:
                    opcode = OP_SYN
                else:
                    opcode = (OP_SYN, OP_ACK, OP_FIN)[seq % 3]
                packet = make_coflow_packet(
                    coflow_id, flow_id=client, seq=seq,
                    elements=[(client, 0)], opcode=opcode,
                )
            elif short == "heavyhitter":
                key = _zipf_key(rng, skew, key_space)
                counts[key] = counts.get(key, 0) + 1
                packet = make_coflow_packet(
                    coflow_id, flow_id=client, seq=seq,
                    elements=[(key, 1)],
                )
            else:  # keycache
                key = _zipf_key(rng, skew, key_space)
                put = seq % 8 == 0
                packet = make_coflow_packet(
                    coflow_id, flow_id=client, seq=seq,
                    elements=[(key, seq + 1 if put else 0)],
                    opcode=OP_PUT if put else OP_GET,
                )
            ip = packet.header("ipv4")
            ip["src_ip"] = topology.hosts[client].ip
            ip["dst_ip"] = topology.hosts[server].ip
            packet.meta.egress_port = None
            stream.append(packet)
        per_host[client] = stream
    if short == "heavyhitter":
        threshold = max(2, _HH_THRESHOLD // 2)
        truth["counts"] = counts
        truth["heavy"] = sorted(
            k for k, c in counts.items() if c >= threshold
        )
        truth["threshold"] = threshold
    factory = _fabric_factory(short, topology, clients, truth, link_bps)
    arrivals = _timed(per_host, topology, link_bps, load)
    return FabricWorkload(
        name=name,
        kind="stateful",
        coflows=specs,
        arrivals=arrivals,
        expected={},
        app_factory=factory,
    )


def _fabric_factory(
    short: str, topology, clients, truth: dict, link_bps: float
) -> StatefulAppFactory:
    flows = max(clients) + 1 if clients else 1
    wire = _sample_wire_bytes(1)
    pps = len(clients) * link_bps / (wire * 8)
    if short == "tokenbucket":
        def build(switch_name: str) -> StatefulApp:
            return TokenBucketApp(
                flows=flows,
                lanes=4,
                capacity=_TB_CAPACITY,
                refill_per_s=_TB_REFILL_FRACTION * pps / flows,
                reconcile_period_s=32.0 / pps,
            )
        return StatefulAppFactory(build, truth)
    if short == "synflood":
        def build(switch_name: str) -> StatefulApp:
            return SynFloodApp(sources=flows, threshold=3)
        return StatefulAppFactory(build, truth)
    if short == "heavyhitter":
        key_space = max(16, len(clients) * 4)
        def build(switch_name: str) -> StatefulApp:
            return HeavyHitterApp(
                rows=_HH_ROWS,
                width=max(8, key_space),
                threshold=truth.get("threshold", _HH_THRESHOLD),
                table_capacity=_HH_TABLE_CAPACITY,
            )
        return StatefulAppFactory(build, truth)
    # keycache: one replica per switch over one shared lww object.
    key_space = max(16, len(clients) * 4)
    switch_names = sorted(topology.switch_names)
    shared = ReplicatedObject(
        "keycache", key_space, replicas=len(switch_names), mode="lww"
    )
    ctrl = {"next_merge_s": 64.0 / pps}
    factory_truth = dict(truth)
    factory_truth["shared"] = shared

    def build(switch_name: str) -> StatefulApp:
        return KeyCacheApp(
            shared=shared,
            replica=switch_names.index(switch_name),
            merge_period_s=64.0 / pps,
            ctrl=ctrl,
        )

    return StatefulAppFactory(build, factory_truth)
