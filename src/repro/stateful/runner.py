"""Drive the stateful workloads and emit ``repro.stateful_ledger/1``.

:func:`run_stateful` runs one workload on one or both targets — single
switch or any fabric topology — and folds the app counters, ground-truth
scoring, and the §3.2 compile divergence into a diffable ledger:

* per-target sections (``adcp:<workload>`` / ``rmt:<workload>``, or
  ``<target>:<workload>@<topo>`` in a fabric) carry state accesses,
  transition counts, admission/detection verdicts, and merge traffic as
  single-sample series with explicit direction tags on the quality
  metrics;
* one ``compile`` section sweeps keys-per-packet through the
  :mod:`repro.program` compiler on both targets over the workload's
  state tables: RMT's per-key replication factor grows with k while
  ADCP's shared-copy block usage stays flat — the paper's Table-1/§3.2
  claim, machine-checked in every ledger.

Ledger content is a pure function of (workload, params, seed): nothing
wall-clock- or backend-dependent enters it, so artifacts are
byte-identical per seed across queue backends (modulo ``git_sha``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError
from ..program import Compiler, TableSpec, adcp_target, rmt_target
from ..sim.rng import DEFAULT_SEED
from ..tables.mat import MatchKind
from ..telemetry.ledger import (
    STATEFUL_LEDGER_SCHEMA,
    git_sha,
    write_ledger,
)
from ..units import GBPS
from .apps import SYN_FLOOD_EFSM
from .efsm import efsm_program
from .workloads import STATEFUL_WORKLOADS, build_single

__all__ = [
    "StatefulRun",
    "compile_divergence",
    "run_stateful",
    "single_trace_sections",
]

#: keys-per-packet sweep for the compile-divergence section (capped at
#: the ADCP target's array width, where the array path saturates).
_KPP_SWEEP = (1, 2, 4, 8, 16)
_ADCP_ARRAY_WIDTH = 16

#: ADCP packs multiple keys per packet only where the workload has a
#: multi-key packet format; events and requests stay scalar.
_ADCP_EPP = {"heavyhitter": 8}


def _point(value: float, direction: str | None = None) -> dict:
    """Single-sample series summary (same shape as the fabric ledger)."""
    value = float(value)
    summary = {
        "samples": 1,
        "mean": value,
        "peak": value,
        "p99": value,
        "last": value,
    }
    if direction is not None:
        summary["direction"] = direction
    return summary


@dataclass
class StatefulSection:
    """One ledger section plus the run objects behind it."""

    label: str
    series: dict[str, dict]
    counters: dict
    telemetry: object = None
    result: object = None

    def to_json(self) -> dict:
        doc = {
            "label": self.label,
            "series": self.series,
            "counters": self.counters,
        }
        # Hoist the standard run-ledger keys so campaign axis tables and
        # ledger diffs see stateful cells like any other section.
        if "delivered" in self.series:
            doc["delivered"] = int(self.series["delivered"]["mean"])
        if "duration_ns" in self.series:
            doc["duration_s"] = self.series["duration_ns"]["mean"] * 1e-9
        return doc


@dataclass
class StatefulRun:
    """Everything one stateful run produced."""

    workload: str
    topology: str
    targets: tuple[str, ...]
    seed: int
    params: dict
    sections: list[StatefulSection]
    ledger_path: Path | None = None
    lines: list[str] = field(default_factory=list)

    def ledger(self) -> dict:
        return {
            "schema": STATEFUL_LEDGER_SCHEMA,
            "workload": self.workload,
            "topology": self.topology,
            "seed": self.seed,
            "git_sha": git_sha(),
            "params": self.params,
            "sections": [s.to_json() for s in self.sections],
        }

    def summary(self) -> dict:
        sections = {}
        for section in self.sections:
            sections[section.label] = {
                name: summary["mean"]
                for name, summary in sorted(section.series.items())
            }
        return {
            "workload": self.workload,
            "topology": self.topology,
            "targets": list(self.targets),
            "seed": self.seed,
            "params": {
                k: v for k, v in self.params.items() if k != "targets"
            },
            "sections": sections,
            "ledger": str(self.ledger_path) if self.ledger_path else None,
        }


# --- single-switch execution ------------------------------------------------------


def _single_configs(target: str):
    if target == "adcp":
        from ..adcp.config import ADCPConfig

        return ADCPConfig(
            num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
            central_pipelines=4,
        )
    from ..rmt.config import RMTConfig

    return RMTConfig(
        num_ports=8, pipelines=2, port_speed_bps=100 * GBPS,
        min_wire_packet_bytes=84.0, frequency_hz=1.25e9,
    )


def _run_single_target(
    workload: str,
    target: str,
    *,
    flows: int,
    skew: float,
    packets: int,
    seed: int,
    make_telemetry=None,
    spans=None,
):
    """One (workload, target) single-switch run.

    Returns ``(stream, telemetry, result)``; the stream's app holds the
    primitive counters, the result the switch-level ones.
    """
    config = _single_configs(target)
    epp = _ADCP_EPP.get(workload, 1) if target == "adcp" else 1
    stream = build_single(
        workload,
        flows=flows,
        skew=skew,
        packets=packets,
        seed=seed,
        elements_per_packet=epp,
        port_speed_bps=config.port_speed_bps,
    )
    telemetry = make_telemetry() if make_telemetry is not None else None
    if target == "adcp":
        from ..adcp.switch import ADCPSwitch

        switch = ADCPSwitch(config, stream.app, telemetry=telemetry)
    else:
        from ..rmt.switch import RMTSwitch

        switch = RMTSwitch(config, stream.app, telemetry=telemetry)
    if spans is not None:
        switch.spans = spans
    # Arrivals are generated after construction: the switch has bound the
    # app's placement, which partition-local batching consults.
    arrivals = stream.arrivals(config.port_speed_bps)
    result = switch.run(arrivals)
    return stream, telemetry, result


def single_trace_sections(
    workload: str, *, make_telemetry=None, seed: int = 0, spans=None
):
    """Both targets' single-switch runs as (label, telemetry, result)
    triples — the TRACEABLE adapter for trace/profile/monitor/spans."""
    out = []
    for target in ("adcp", "rmt"):
        stream, telemetry, result = _run_single_target(
            workload,
            target,
            flows=64,
            skew=1.2,
            packets=240,
            seed=seed,
            make_telemetry=make_telemetry,
            spans=spans,
        )
        out.append((f"{target}-{workload}", telemetry, result))
    return out


# --- metric extraction ------------------------------------------------------------


def _app_series(workload: str, app, truth: dict, duration_s: float) -> dict:
    """The per-primitive quality/state series for one app instance."""
    series: dict[str, dict] = {}
    if workload == "tokenbucket":
        bucket = app.bucket
        series["admitted"] = _point(app.admitted)
        series["rate_limited"] = _point(app.rate_limited)
        series["goodput_pps"] = _point(
            app.admitted / duration_s if duration_s > 0 else 0.0, "higher"
        )
        series["scr.admit_divergence"] = _point(bucket.admit_divergence)
        series["scr.shadow_admitted"] = _point(bucket.shadow_admitted)
        series["scr.reconciliations"] = _point(bucket.reconciliations)
        series["scr.tokens_moved"] = _point(bucket.tokens_moved)
        series["state_accesses"] = _point(app.admitted + app.rate_limited)
    elif workload == "synflood":
        engine = app.engine
        flagged = set(app.flagged_sources())
        attackers = set(truth.get("attackers", []))
        benign = truth.get("sources", engine.flows) - len(attackers)
        detected = len(flagged & attackers)
        series["detection_rate"] = _point(
            detected / len(attackers) if attackers else 0.0, "higher"
        )
        series["false_positive_rate"] = _point(
            len(flagged - attackers) / benign if benign else 0.0
        )
        series["mitigated_syns"] = _point(app.mitigated)
        series["efsm.steps"] = _point(engine.steps)
        series["efsm.unmatched"] = _point(engine.unmatched)
        series["state_accesses"] = _point(engine.state_accesses)
        for edge, count in engine.transition_counts().items():
            series[f"efsm.{edge}"] = _point(count)
    elif workload == "heavyhitter":
        promoted = set(app.promoted_keys())
        heavy = set(truth.get("heavy", []))
        found = len(promoted & heavy)
        series["detection_rate"] = _point(
            found / len(heavy) if heavy else 0.0, "higher"
        )
        series["false_positive_rate"] = _point(
            len(promoted - heavy) / len(promoted) if promoted else 0.0
        )
        series["promotions"] = _point(app.promotions)
        series["table_fill"] = _point(app.heavy.fill)
        series["mat_lookups"] = _point(app.heavy.lookups)
        series["state_accesses"] = _point(app.heavy.lookups * app.rows)
    else:  # keycache
        shared = app.shared
        series["hit_rate"] = _point(app.hit_rate, "higher")
        series["hits"] = _point(app.hits)
        series["misses"] = _point(app.misses)
        series["puts"] = _point(app.puts)
        series["stale_reads"] = _point(shared.stale_reads)
        series["merge_rounds"] = _point(shared.merge_rounds)
        series["merge_messages"] = _point(shared.merge_messages)
        series["merge_bytes"] = _point(shared.merge_bytes)
        series["state_accesses"] = _point(shared.reads + shared.updates)
    return series


def _merge_app_counters(workload: str, apps: list, truth: dict, duration_s: float) -> dict:
    """Fold several fabric app instances into one series dict.

    Count-like counters sum across switches; detection scoring unions
    the flagged/promoted sets first (a source is caught if *any* switch
    caught it); the key cache's replicated object is shared, so its
    counters are read once.
    """
    if not apps:
        return {}
    if workload == "synflood":
        flagged: set[int] = set()
        steps = unmatched = mitigated = accesses = 0
        transitions: dict[str, int] = {}
        for app in apps:
            flagged.update(app.flagged_sources())
            steps += app.engine.steps
            unmatched += app.engine.unmatched
            mitigated += app.mitigated
            accesses += app.engine.state_accesses
            for edge, count in app.engine.transition_counts().items():
                transitions[edge] = transitions.get(edge, 0) + count
        attackers = set(truth.get("attackers", []))
        clients = truth.get("clients", [])
        benign = len([c for c in clients if c not in attackers])
        series = {
            "detection_rate": _point(
                len(flagged & attackers) / len(attackers) if attackers else 0.0,
                "higher",
            ),
            "false_positive_rate": _point(
                len(flagged - attackers) / benign if benign else 0.0
            ),
            "mitigated_syns": _point(mitigated),
            "efsm.steps": _point(steps),
            "efsm.unmatched": _point(unmatched),
            "state_accesses": _point(accesses),
        }
        for edge, count in sorted(transitions.items()):
            series[f"efsm.{edge}"] = _point(count)
        return series
    if workload == "heavyhitter":
        promoted: set[int] = set()
        promotions = lookups = accesses = 0
        for app in apps:
            promoted.update(app.promoted_keys())
            promotions += app.promotions
            lookups += app.heavy.lookups
            accesses += app.heavy.lookups * app.rows
        heavy = set(truth.get("heavy", []))
        return {
            "detection_rate": _point(
                len(promoted & heavy) / len(heavy) if heavy else 0.0,
                "higher",
            ),
            "false_positive_rate": _point(
                len(promoted - heavy) / len(promoted) if promoted else 0.0
            ),
            "promotions": _point(promotions),
            "mat_lookups": _point(lookups),
            "state_accesses": _point(accesses),
        }
    if workload == "tokenbucket":
        admitted = limited = divergence = shadow = rounds = 0
        moved = 0.0
        for app in apps:
            admitted += app.admitted
            limited += app.rate_limited
            divergence += app.bucket.admit_divergence
            shadow += app.bucket.shadow_admitted
            rounds += app.bucket.reconciliations
            moved += app.bucket.tokens_moved
        return {
            "admitted": _point(admitted),
            "rate_limited": _point(limited),
            "goodput_pps": _point(
                admitted / duration_s if duration_s > 0 else 0.0, "higher"
            ),
            "scr.admit_divergence": _point(divergence),
            "scr.shadow_admitted": _point(shadow),
            "scr.reconciliations": _point(rounds),
            "scr.tokens_moved": _point(moved),
            "state_accesses": _point(admitted + limited),
        }
    # keycache: shared object, per-app hit counters.
    shared = truth["shared"]
    hits = sum(app.hits for app in apps)
    misses = sum(app.misses for app in apps)
    puts = sum(app.puts for app in apps)
    total = hits + misses
    return {
        "hit_rate": _point(hits / total if total else 0.0, "higher"),
        "hits": _point(hits),
        "misses": _point(misses),
        "puts": _point(puts),
        "stale_reads": _point(shared.stale_reads),
        "merge_rounds": _point(shared.merge_rounds),
        "merge_messages": _point(shared.merge_messages),
        "merge_bytes": _point(shared.merge_bytes),
        "state_accesses": _point(shared.reads + shared.updates),
    }


# --- compile divergence (§3.2) ----------------------------------------------------


def _state_table(workload: str, flows: int, keys_per_packet: int) -> TableSpec:
    """The representative stateful flow table for non-EFSM workloads."""
    bits_per_flow = {
        "tokenbucket": 48,  # token count + refill timestamp share
        "heavyhitter": 96,  # three 32-bit sketch rows
        "keycache": 96,  # value + version tag
    }[workload]
    return TableSpec(
        name=f"{workload}_state",
        kind=MatchKind.EXACT,
        key_width_bits=104,
        capacity=flows,
        keys_per_packet=keys_per_packet,
        stateful_bits=flows * bits_per_flow,
    )


def compile_divergence(workload: str, flows: int) -> StatefulSection:
    """Sweep keys-per-packet through the compiler on both targets.

    Emits, per k: RMT's replication factor and SRAM blocks (growing with
    k — the scalar MAT discipline copies the whole table per key) vs
    ADCP's (flat — k MAUs share one copy up to the array width).
    """
    series: dict[str, dict] = {}
    rmt = rmt_target()
    adcp = adcp_target(array_width=_ADCP_ARRAY_WIDTH)
    for k in _KPP_SWEEP:
        if workload == "synflood":
            program = efsm_program(SYN_FLOOD_EFSM, flows, keys_per_packet=k)
            table_name = f"{SYN_FLOOD_EFSM.name}_flow"
        else:
            from ..program import ProgramGraph

            program = ProgramGraph(f"{workload}_k{k}")
            program.add_table(_state_table(workload, flows, k))
            table_name = f"{workload}_state"
        for target, label in ((rmt, "rmt"), (adcp, "adcp")):
            allocation = Compiler(target).allocate(program)
            series[f"{label}.replication_factor.k{k}"] = _point(
                allocation.replication_factor(table_name)
            )
            series[f"{label}.sram_blocks.k{k}"] = _point(
                allocation.total_sram_blocks
            )
    return StatefulSection(
        label="compile",
        series=series,
        counters={
            "flows": flows,
            "keys_per_packet_sweep": list(_KPP_SWEEP),
            "adcp_array_width": _ADCP_ARRAY_WIDTH,
        },
    )


# --- the runner -------------------------------------------------------------------


def run_stateful(
    workload: str,
    *,
    target: str = "both",
    topology: str = "single",
    flows: int = 64,
    skew: float = 1.2,
    packets: int = 400,
    seed: int | None = None,
    coflows: int = 2,
    make_telemetry=None,
    ledger_out: str | Path | None = None,
) -> StatefulRun:
    """Run one stateful workload end to end and build its ledger.

    ``topology="single"`` runs the four-source single-switch stream on
    each requested target; any other value is parsed as a fabric
    topology (e.g. ``leaf-spine-2x2``) and runs the ``stateful-*``
    fabric workload through :func:`repro.fabric.runner.run_fabric`, with
    per-switch app instances harvested for the same series.
    """
    if workload not in STATEFUL_WORKLOADS:
        raise ConfigError(
            f"unknown stateful workload {workload!r}; choose from "
            f"{', '.join(STATEFUL_WORKLOADS)}"
        )
    if target not in ("both", "rmt", "adcp"):
        raise ConfigError(
            f"target must be rmt, adcp, or both, got {target!r}"
        )
    seed = DEFAULT_SEED if seed is None else seed
    targets = ("adcp", "rmt") if target == "both" else (target,)
    params = {
        "workload": workload,
        "topology": topology,
        "targets": list(targets),
        "flows": flows,
        "skew": skew,
        "packets": packets,
        "seed": seed,
    }
    sections: list[StatefulSection] = []
    lines: list[str] = []
    for tgt in targets:
        if topology == "single":
            stream, telemetry, result = _run_single_target(
                workload,
                tgt,
                flows=flows,
                skew=skew,
                packets=packets,
                seed=seed,
                make_telemetry=make_telemetry,
            )
            series = _app_series(
                workload, stream.app, stream.truth, result.duration_s
            )
            series["delivered"] = _point(len(result.delivered))
            series["dropped"] = _point(len(result.dropped))
            series["consumed"] = _point(result.consumed)
            series["duration_ns"] = _point(result.duration_s * 1e9)
            section = StatefulSection(
                label=f"{tgt}:{workload}",
                series=series,
                counters=dict(result.counters),
                telemetry=telemetry,
                result=result,
            )
        else:
            from ..fabric.runner import run_fabric

            run = run_fabric(
                topology,
                f"stateful-{workload}",
                target=tgt,
                seed=seed,
                coflows=coflows,
                vector=max(8, packets // 8),
                make_telemetry=make_telemetry,
            )
            factory = run.app_factory
            apps = [
                factory.instances[name]
                for name in sorted(factory.instances)
            ]
            series = _merge_app_counters(
                workload, apps, factory.truth, run.duration_s
            )
            series["delivered"] = _point(run.delivered_to_hosts)
            series["transit_packets"] = _point(run.transit_packets)
            series["injected"] = _point(run.injected)
            series["duration_ns"] = _point(run.duration_s * 1e9)
            section = StatefulSection(
                label=f"{tgt}:{workload}@{run.topology.name}",
                series=series,
                counters={"switches": len(factory.instances)},
                result=run,
            )
        sections.append(section)
        headline = _headline(workload, section.series)
        lines.append(f"{section.label}: {headline}")
    sections.append(compile_divergence(workload, flows))
    run = StatefulRun(
        workload=workload,
        topology=topology,
        targets=targets,
        seed=seed,
        params=params,
        sections=sections,
        lines=lines,
    )
    if ledger_out is not None:
        run.ledger_path = write_ledger(ledger_out, run.ledger())
        lines.append(f"ledger: {run.ledger_path}")
    return run


def _headline(workload: str, series: dict) -> str:
    def mean(name: str) -> float:
        return series.get(name, {}).get("mean", 0.0)

    if workload == "tokenbucket":
        return (
            f"admitted={mean('admitted'):.0f} "
            f"rate_limited={mean('rate_limited'):.0f} "
            f"goodput={mean('goodput_pps'):.3g} pps "
            f"divergence={mean('scr.admit_divergence'):.0f}"
        )
    if workload == "synflood":
        return (
            f"detection={mean('detection_rate'):.2f} "
            f"fpr={mean('false_positive_rate'):.2f} "
            f"mitigated={mean('mitigated_syns'):.0f} "
            f"steps={mean('efsm.steps'):.0f}"
        )
    if workload == "heavyhitter":
        return (
            f"detection={mean('detection_rate'):.2f} "
            f"fpr={mean('false_positive_rate'):.2f} "
            f"promotions={mean('promotions'):.0f}"
        )
    return (
        f"hit_rate={mean('hit_rate'):.2f} "
        f"stale_reads={mean('stale_reads'):.0f} "
        f"merge_rounds={mean('merge_rounds'):.0f}"
    )
