"""Stateful-primitive library: EFSM, replicated objects, SCR.

The paper's core claim (§3) is that stateful in-network computing wants
a different switch architecture: per-flow state machines, replicated
objects with eventual merge, and state-compute replication all fight
RMT's feed-forward, scalar-match discipline but map naturally onto the
disaggregated array-match path.  This package provides those three
primitives target-neutrally, four workloads that exercise them
(:data:`~repro.stateful.workloads.STATEFUL_WORKLOADS`), and a runner
that emits the diffable ``repro.stateful_ledger/1`` artifact — see
``docs/PRIMITIVES.md``.
"""

from .apps import (
    OP_ACK,
    OP_FIN,
    OP_SYN,
    SYN_FLOOD_EFSM,
    HeavyHitterApp,
    KeyCacheApp,
    SynFloodApp,
    TokenBucketApp,
)
from .efsm import Action, EfsmEngine, EfsmSpec, Guard, Transition, efsm_program
from .replicated import ReplicatedObject
from .runner import StatefulRun, compile_divergence, run_stateful
from .scr import ReplicatedCounter, ScrTokenBucket
from .workloads import (
    FABRIC_STATEFUL_WORKLOADS,
    STATEFUL_WORKLOADS,
    build_single,
    build_stateful_workload,
)

__all__ = [
    "Action",
    "EfsmEngine",
    "EfsmSpec",
    "FABRIC_STATEFUL_WORKLOADS",
    "Guard",
    "HeavyHitterApp",
    "KeyCacheApp",
    "OP_ACK",
    "OP_FIN",
    "OP_SYN",
    "ReplicatedCounter",
    "ReplicatedObject",
    "SYN_FLOOD_EFSM",
    "STATEFUL_WORKLOADS",
    "ScrTokenBucket",
    "StatefulRun",
    "SynFloodApp",
    "TokenBucketApp",
    "Transition",
    "build_single",
    "build_stateful_workload",
    "compile_divergence",
    "run_stateful",
    "efsm_program",
]
