"""Units and wire-level arithmetic shared across the library.

The paper's scalability arguments (Tables 2 and 3) all reduce to one piece
of arithmetic: how many packets per second a link of a given speed can carry
for a given minimum packet size, and hence what clock frequency a pipeline
that retires one packet per cycle must run at.

The paper quotes *wire* packet sizes: an Ethernet frame occupies its frame
bytes plus 8 bytes of preamble/SFD plus 12 bytes of inter-frame gap on the
wire.  The canonical example is the minimum 64 B frame, which occupies 84 B
of wire time, which is why "64x 10 Gbps ports ... amounts to a maximum of
around 952 Mpps" (64 * 10e9 / (84 * 8) = 952.4e6).

All helpers here work in plain SI units (bits per second, packets per
second, hertz, bytes) and expose convenience constants for the multiples
used throughout the paper.
"""

from __future__ import annotations

from .errors import ConfigError

# --- SI multiples -----------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

GBPS = GIGA
"""One gigabit per second, in bits per second."""

TBPS = TERA
"""One terabit per second, in bits per second."""

MHZ = MEGA
"""One megahertz, in hertz."""

GHZ = GIGA
"""One gigahertz, in hertz."""

MPPS = MEGA
"""One million packets per second."""

BPPS = GIGA
"""One billion packets per second (the paper's 'Bpps')."""

# --- Ethernet framing -------------------------------------------------------

ETHERNET_PREAMBLE_BYTES = 8
"""Preamble (7 B) plus start-of-frame delimiter (1 B)."""

ETHERNET_IFG_BYTES = 12
"""Minimum inter-frame gap at any standard Ethernet speed."""

ETHERNET_OVERHEAD_BYTES = ETHERNET_PREAMBLE_BYTES + ETHERNET_IFG_BYTES
"""Per-packet wire overhead that never reaches the pipeline: 20 B."""

ETHERNET_MIN_FRAME_BYTES = 64
"""Minimum Ethernet frame (header + payload + FCS)."""

ETHERNET_MIN_WIRE_BYTES = ETHERNET_MIN_FRAME_BYTES + ETHERNET_OVERHEAD_BYTES
"""Wire footprint of a minimum frame: 84 B, as used in the paper's tables."""

ETHERNET_HEADER_BYTES = 14
"""Destination MAC + source MAC + EtherType."""

ETHERNET_FCS_BYTES = 4
"""Frame check sequence appended to every frame."""

BITS_PER_BYTE = 8


def wire_bytes(frame_bytes: int) -> int:
    """Return the wire footprint of a frame, including preamble and IFG.

    >>> wire_bytes(64)
    84
    """
    if frame_bytes < ETHERNET_MIN_FRAME_BYTES:
        raise ConfigError(
            f"frame of {frame_bytes} B is below the Ethernet minimum of "
            f"{ETHERNET_MIN_FRAME_BYTES} B"
        )
    return frame_bytes + ETHERNET_OVERHEAD_BYTES


def frame_bytes_from_wire(wire: float) -> float:
    """Inverse of :func:`wire_bytes`; accepts fractional analytical results."""
    return wire - ETHERNET_OVERHEAD_BYTES


def packet_rate(link_bps: float, wire_packet_bytes: float) -> float:
    """Peak packets per second of a link for a given wire packet size.

    >>> round(packet_rate(10 * GBPS, 84) / MPPS, 1)
    14.9
    """
    if link_bps <= 0:
        raise ConfigError(f"link speed must be positive, got {link_bps}")
    if wire_packet_bytes <= 0:
        raise ConfigError(
            f"wire packet size must be positive, got {wire_packet_bytes}"
        )
    return link_bps / (wire_packet_bytes * BITS_PER_BYTE)


def min_wire_bytes_for_rate(link_bps: float, max_pps: float) -> float:
    """Smallest wire packet size keeping a link at or below ``max_pps``.

    This is the quantity switch designers tune when they "increase the
    assumed average packet size, which caps the maximum packet rate"
    (paper, section 2, issue 3).
    """
    if max_pps <= 0:
        raise ConfigError(f"packet rate must be positive, got {max_pps}")
    return link_bps / (max_pps * BITS_PER_BYTE)


def pipeline_frequency(
    port_speed_bps: float,
    ports_per_pipeline: float,
    wire_packet_bytes: float,
) -> float:
    """Clock frequency (Hz) of a pipeline retiring one packet per cycle.

    ``ports_per_pipeline`` may be fractional: the ADCP demultiplexes one
    port across ``m`` pipelines, which the paper writes as ``1/m`` ports
    per pipeline (0.5 for a 1:2 demux).
    """
    if ports_per_pipeline <= 0:
        raise ConfigError(
            f"ports per pipeline must be positive, got {ports_per_pipeline}"
        )
    aggregate_bps = port_speed_bps * ports_per_pipeline
    return packet_rate(aggregate_bps, wire_packet_bytes)


def format_si(value: float, unit: str) -> str:
    """Render a value with an SI prefix, e.g. ``format_si(12.8e12, 'bps')``.

    >>> format_si(12.8e12, 'bps')
    '12.8 Tbps'
    """
    for factor, prefix in ((TERA, "T"), (GIGA, "G"), (MEGA, "M"), (KILO, "k")):
        if abs(value) >= factor:
            scaled = value / factor
            text = f"{scaled:.4g}"
            return f"{text} {prefix}{unit}"
    return f"{value:.4g} {unit}"
