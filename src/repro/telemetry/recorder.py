"""The bounded, filtered trace recorder.

Design constraints, in priority order:

1. **Near-zero overhead when absent.**  Instrumented components hold a
   ``trace`` attribute that defaults to None; the entire disabled hot path
   is one attribute load and one identity check, so a switch built without
   telemetry behaves byte-identically to an uninstrumented one.
2. **Bounded memory.**  Events live in a ring buffer (``capacity`` deep);
   when it wraps, the oldest events are discarded and counted, never
   silently lost.
3. **Deterministic.**  Events are stamped with a monotonically increasing
   sequence number at emission; the discrete-event kernel already dispatches
   deterministically, so a seeded run reproduces the exact event stream.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from ..errors import ConfigError
from .events import DEFAULT_CATEGORIES, Category, Severity, TraceEvent


class TraceRecorder:
    """A bounded ring buffer of :class:`TraceEvent` with filters.

    Args:
        capacity: Maximum retained events; older events fall off the ring.
        categories: Categories to record (default: everything except the
            verbose ``STAGE``/``SIM``/``CLOCK`` detail).  Pass a set of
            :class:`Category`, or None for the default set.
        min_severity: Events below this severity are dropped at emission.
        enabled: Start recording immediately (pause with :meth:`disable`).
    """

    def __init__(
        self,
        capacity: int = 65536,
        categories: Iterable[Category] | None = None,
        min_severity: Severity = Severity.DEBUG,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.categories = (
            frozenset(categories) if categories is not None else DEFAULT_CATEGORIES
        )
        self.min_severity = min_severity
        self.enabled = enabled
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.emitted = 0
        """Events that passed the filters (retained + overwritten)."""
        self.filtered = 0
        """Events rejected by the category/severity filters."""

    # --- control -----------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def wants(self, category: Category, severity: Severity = Severity.INFO) -> bool:
        """Whether an event of this category/severity would be recorded.

        Call sites producing expensive ``args`` can pre-check this to skip
        the construction entirely.
        """
        return (
            self.enabled
            and category in self.categories
            and severity >= self.min_severity
        )

    # --- emission ----------------------------------------------------------------

    def emit(
        self,
        category: Category,
        name: str,
        time_s: float,
        component: str = "",
        severity: Severity = Severity.INFO,
        packet_id: int | None = None,
        duration_s: float | None = None,
        **args,
    ) -> TraceEvent | None:
        """Record one event; returns it, or None when filtered out."""
        if not self.wants(category, severity):
            self.filtered += 1
            return None
        event = TraceEvent(
            seq=self._seq,
            time_s=time_s,
            category=category,
            name=name,
            component=component,
            severity=severity,
            packet_id=packet_id,
            duration_s=duration_s,
            args=args,
        )
        self._seq += 1
        self.emitted += 1
        self._ring.append(event)
        return event

    # --- inspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    @property
    def overwritten(self) -> int:
        """Events pushed off the ring by newer ones."""
        return self.emitted - len(self._ring)

    def events(
        self,
        name: str | None = None,
        category: Category | None = None,
        min_severity: Severity | None = None,
    ) -> list[TraceEvent]:
        """Retained events, optionally filtered, in emission order."""
        out = []
        for event in self._ring:
            if name is not None and event.name != name:
                continue
            if category is not None and event.category is not category:
                continue
            if min_severity is not None and event.severity < min_severity:
                continue
            out.append(event)
        return out

    def count(
        self,
        name: str | None = None,
        category: Category | None = None,
    ) -> int:
        """Number of retained events matching the filters."""
        return len(self.events(name=name, category=category))

    def counts_by_name(self) -> dict[str, int]:
        """Retained events per event name, sorted by name."""
        totals: dict[str, int] = {}
        for event in self._ring:
            totals[event.name] = totals.get(event.name, 0) + 1
        return dict(sorted(totals.items()))

    def clear(self) -> None:
        """Drop retained events; counters and sequence keep running."""
        self._ring.clear()
