"""Traced reference workloads: ``python -m repro trace <workload>``.

Each workload builds one or two instrumented switches, runs a small
self-checking experiment with telemetry enabled, cross-checks the trace
against the run's terminal counters (delivered and recirculated packets
must match event-for-event), and exports a combined Chrome trace-event
JSON timeline plus a plain-text report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError, SimulationError
from ..units import GBPS
from .events import Category
from .exporters import chrome_trace_events, text_report, write_chrome_trace
from .session import Telemetry

#: Ring depth for CLI traces: large enough that the reference workloads
#: never wrap, so the consistency checks can be exact.
_CLI_CAPACITY = 1 << 20

#: Metric-snapshot spacing for CLI traces (simulated time).
_CLI_SNAPSHOT_INTERVAL_S = 5e-8


@dataclass
class TraceSection:
    """One traced switch run within a workload."""

    label: str
    telemetry: Telemetry
    result: object  # SwitchRunResult

    def consistency_errors(self) -> list[str]:
        """Cross-check the event stream against the terminal counters."""
        errors: list[str] = []
        trace = self.telemetry.trace
        if trace.overwritten:
            errors.append(
                f"{self.label}: ring overwrote {trace.overwritten} events; "
                f"counts are not exact"
            )
            return errors
        delivered_events = trace.count(name="packet.delivered")
        if delivered_events != len(self.result.delivered):
            errors.append(
                f"{self.label}: {delivered_events} packet.delivered events "
                f"vs {len(self.result.delivered)} delivered packets"
            )
        recirc_events = trace.count(category=Category.RECIRC)
        if recirc_events != self.result.recirculated_packets:
            errors.append(
                f"{self.label}: {recirc_events} recirculation events vs "
                f"{self.result.recirculated_packets} recirculated packets"
            )
        return errors


@dataclass
class TraceRun:
    """Everything one ``trace`` invocation produced."""

    workload: str
    path: Path
    sections: list[TraceSection]
    lines: list[str] = field(default_factory=list)
    spans: object | None = None  # SpanRecorder when --sample was given

    def summary(self) -> dict:
        """JSON-friendly digest for ``--json`` output."""
        out = {
            "workload": self.workload,
            "trace_file": str(self.path),
            "sections": [
                {
                    "label": s.label,
                    "events_emitted": s.telemetry.trace.emitted,
                    "events_retained": len(s.telemetry.trace),
                    "events_by_name": s.telemetry.trace.counts_by_name(),
                    "snapshots": len(s.telemetry.metrics.series),
                    "delivered": len(s.result.delivered),
                    "recirculated": s.result.recirculated_packets,
                    "duration_s": s.result.duration_s,
                }
                for s in self.sections
            ],
        }
        if self.spans is not None:
            sampler = self.spans.sampler
            out["spans"] = {
                "sample": sampler.sample,
                "packets_offered": sampler.offered,
                "packets_sampled": sampler.admitted,
                "coverage": sampler.coverage,
                "records": len(self.spans.records),
            }
        return out


def _make_telemetry() -> Telemetry:
    return Telemetry(
        capacity=_CLI_CAPACITY,
        snapshot_interval_s=_CLI_SNAPSHOT_INTERVAL_S,
    )


# --- workloads ---------------------------------------------------------------------
#
# Each workload factory accepts an optional ``make_telemetry`` so callers
# can swap the hub configuration (``run_monitor`` passes one carrying a
# ResourceMonitor) without the factories knowing what changed, plus an
# explicit ``seed``: all randomness flows through ``sim/rng`` from that
# one number (workloads with no stochastic generator accept it for
# interface uniformity — campaign sweeps pass seeds unconditionally).
# The optional ``spans`` is a shared SpanRecorder: every switch (and, on
# fabric workloads, every link) of the run points at it, so sampled
# packets leave per-hop spans without touching the trace path.


def _trace_quickstart(make_telemetry=None, seed=None, spans=None) -> list[TraceSection]:
    """The quickstart coflow on both architectures (examples/quickstart.py)."""
    from ..adcp.config import ADCPConfig
    from ..adcp.switch import ADCPSwitch
    from ..apps import ParameterServerApp
    from ..rmt.config import RMTConfig
    from ..rmt.switch import RMTSwitch

    workers = [0, 1, 4, 5]
    sections = []
    mk = make_telemetry or _make_telemetry

    adcp_tel = mk()
    adcp_config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=4,
    )
    adcp_app = ParameterServerApp(workers, 256, elements_per_packet=16)
    adcp = ADCPSwitch(adcp_config, adcp_app, telemetry=adcp_tel)
    if spans is not None:
        adcp.spans = spans
    adcp_result = adcp.run(adcp_app.workload(adcp_config.port_speed_bps))
    sections.append(TraceSection("adcp", adcp_tel, adcp_result))

    rmt_tel = mk()
    rmt_config = RMTConfig(
        num_ports=8, pipelines=2, port_speed_bps=100 * GBPS,
        min_wire_packet_bytes=84.0, frequency_hz=1.25e9,
    )
    rmt_app = ParameterServerApp(workers, 256, elements_per_packet=1)
    rmt = RMTSwitch(rmt_config, rmt_app, telemetry=rmt_tel)
    if spans is not None:
        rmt.spans = spans
    rmt_result = rmt.run(rmt_app.workload(rmt_config.port_speed_bps))
    sections.append(TraceSection("rmt", rmt_tel, rmt_result))
    return sections


def _trace_recirculate(make_telemetry=None, seed=None, spans=None) -> list[TraceSection]:
    """RMT hosting state by recirculation: every foreign-pipeline packet
    pays a loopback pass (the §2 bandwidth tax, on the timeline)."""
    from ..apps import ParameterServerApp
    from ..rmt.config import RMTConfig, StateMode
    from ..rmt.switch import RMTSwitch

    telemetry = (make_telemetry or _make_telemetry)()
    config = RMTConfig(
        num_ports=8, pipelines=2, port_speed_bps=100 * GBPS,
        min_wire_packet_bytes=84.0, frequency_hz=1.25e9,
        state_mode=StateMode.RECIRCULATE,
    )
    app = ParameterServerApp([0, 1, 4, 5], 128, elements_per_packet=1)
    switch = RMTSwitch(config, app, telemetry=telemetry)
    if spans is not None:
        switch.spans = spans
    result = switch.run(app.workload(config.port_speed_bps))
    return [TraceSection("rmt-recirculate", telemetry, result)]


#: Pinned relation seed for the mergejoin reference workload; an
#: explicit ``seed`` overrides it (the default keeps committed baselines
#: byte-stable).
_MERGEJOIN_SEED = 7


def _trace_mergejoin(make_telemetry=None, seed=None, spans=None) -> list[TraceSection]:
    """TM1's order-preserving merge joining two sorted relations."""
    from ..adcp.config import ADCPConfig
    from ..adcp.switch import ADCPSwitch
    from ..apps import SortMergeJoinApp
    from ..sim.rng import make_rng

    rng = make_rng(_MERGEJOIN_SEED if seed is None else seed)

    def relation(rows: int, key_space: int) -> list[tuple[int, int]]:
        keys = rng.integers(0, key_space, size=rows)
        values = rng.integers(0, 1000, size=rows)
        return sorted((int(k), int(v)) for k, v in zip(keys, values))

    telemetry = (make_telemetry or _make_telemetry)()
    app = SortMergeJoinApp(left_port=0, right_port=1, output_port=7)
    config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=4,
    )
    switch = ADCPSwitch(
        config, app, ordered_flows=app.ordered_flows(), telemetry=telemetry
    )
    if spans is not None:
        switch.spans = spans
    result = switch.run(
        app.workload(config.port_speed_bps, relation(80, 40), relation(80, 40))
    )
    return [TraceSection("adcp-mergejoin", telemetry, result)]


def _trace_mltrain(make_telemetry=None, seed=None, spans=None) -> list[TraceSection]:
    """Table 1's ML-training row: parameter aggregation on both targets.

    The exact benchmark pair (``benchmarks/test_table1_applications.py``):
    the ADCP aggregates 16-element packets in its central bank while RMT
    is forced to scalar packets plus egress-pinned state, which is where
    its CCT gap comes from — run this under ``profile`` to see the gap
    decomposed into recirculation and TM queue-wait.
    """
    from ..adcp.config import ADCPConfig
    from ..adcp.switch import ADCPSwitch
    from ..apps import ParameterServerApp
    from ..rmt.config import RMTConfig
    from ..rmt.switch import RMTSwitch

    workers = [0, 1, 4, 5]
    sections = []
    mk = make_telemetry or _make_telemetry

    adcp_tel = mk()
    adcp_config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=4,
    )
    adcp_app = ParameterServerApp(workers, 128, elements_per_packet=16)
    adcp = ADCPSwitch(adcp_config, adcp_app, telemetry=adcp_tel)
    if spans is not None:
        adcp.spans = spans
    adcp_result = adcp.run(adcp_app.workload(adcp_config.port_speed_bps))
    sections.append(TraceSection("adcp", adcp_tel, adcp_result))

    rmt_tel = mk()
    rmt_config = RMTConfig(
        num_ports=8, pipelines=2, port_speed_bps=100 * GBPS,
        min_wire_packet_bytes=84.0, frequency_hz=1.25e9,
    )
    rmt_app = ParameterServerApp(workers, 128, elements_per_packet=1)
    rmt = RMTSwitch(rmt_config, rmt_app, telemetry=rmt_tel)
    if spans is not None:
        rmt.spans = spans
    rmt_result = rmt.run(rmt_app.workload(rmt_config.port_speed_bps))
    sections.append(TraceSection("rmt", rmt_tel, rmt_result))
    return sections


def _trace_fabric(workload_name: str):
    """Factory-of-factories for the fabric workloads: one leaf-spine
    fabric run per target, with every switch as its own section (each
    switch owns its telemetry hub, so the per-section consistency and
    attribution checks hold switch-by-switch)."""

    def factory(make_telemetry=None, seed=None, spans=None) -> list[TraceSection]:
        from dataclasses import replace

        from ..fabric import run_fabric

        sections: list[TraceSection] = []
        for target in ("adcp", "rmt"):
            first_record = len(spans.records) if spans is not None else 0
            run = run_fabric(
                "leaf-spine-2x2",
                workload_name,
                target=target,
                seed=0 if seed is None else seed,
                make_telemetry=make_telemetry or _make_telemetry,
                spans=spans,
            )
            if spans is not None:
                # Both targets share switch names (leaf0, spine0, ...);
                # prefix this run's records so the span tracks stay
                # distinct, matching the section labels below.
                records = spans.records
                for i in range(first_record, len(records)):
                    records[i] = replace(
                        records[i], switch=f"{target}-{records[i].switch}"
                    )
            sections.extend(
                TraceSection(
                    f"{target}-{section.label}",
                    section.telemetry,
                    section.result,
                )
                for section in run.sections
            )
        return sections

    return factory


def _trace_stateful(workload: str):
    """Factory-of-factories for the stateful workloads: both targets'
    single-switch runs (see :mod:`repro.stateful.runner`), one section
    per target."""

    def factory(make_telemetry=None, seed=None, spans=None) -> list[TraceSection]:
        from ..stateful.runner import single_trace_sections

        return [
            TraceSection(label, telemetry, result)
            for label, telemetry, result in single_trace_sections(
                workload,
                make_telemetry=make_telemetry or _make_telemetry,
                seed=0 if seed is None else seed,
                spans=spans,
            )
        ]

    return factory


TRACEABLE = {
    "quickstart": _trace_quickstart,
    "recirculate": _trace_recirculate,
    "mergejoin": _trace_mergejoin,
    "mltrain": _trace_mltrain,
    "fabric-allreduce": _trace_fabric("fabric-allreduce"),
    "fabric-shuffle": _trace_fabric("fabric-shuffle"),
    "stateful-tokenbucket": _trace_stateful("tokenbucket"),
    "stateful-synflood": _trace_stateful("synflood"),
    "stateful-heavyhitter": _trace_stateful("heavyhitter"),
    "stateful-keycache": _trace_stateful("keycache"),
}


@dataclass
class ProfileSection:
    """One profiled switch run: trace, attribution, bottleneck report."""

    label: str
    telemetry: Telemetry
    result: object  # SwitchRunResult
    profile: object  # repro.profiling.RunProfile
    report: object  # repro.profiling.BottleneckReport


@dataclass
class ProfileRun:
    """Everything one ``profile`` invocation produced."""

    workload: str
    sections: list[ProfileSection]
    gap: dict[str, float] | None = None
    gap_labels: tuple[str, str] | None = None  # (slow, fast)
    lines: list[str] = field(default_factory=list)

    def summary(self) -> dict:
        """JSON-friendly digest for ``--json`` output."""
        out: dict = {
            "workload": self.workload,
            "sections": [
                {
                    "label": s.label,
                    "attribution": s.profile.to_json(),
                    "bottlenecks": s.report.to_json(),
                    "delivered": len(s.result.delivered),
                    "recirculated": s.result.recirculated_packets,
                    "duration_s": s.result.duration_s,
                }
                for s in self.sections
            ],
        }
        if self.gap is not None:
            slow, fast = self.gap_labels
            out["gap"] = {
                "slow": slow,
                "fast": fast,
                "shares": self.gap,
            }
        return out

    def chrome_events(self) -> list[dict]:
        """Raw telemetry plus attribution lanes, one process per section."""
        from .profiler import profile_chrome_events

        events: list[dict] = []
        for section in self.sections:
            events.extend(
                chrome_trace_events(
                    section.telemetry.trace,
                    section.telemetry.metrics,
                    pid=section.label,
                )
            )
            events.extend(profile_chrome_events(section.profile))
        return events


def run_profile(
    workload: str,
    chrome_out: str | Path | None = None,
    seed: int | None = None,
) -> ProfileRun:
    """Run ``workload`` traced, then attribute every packet's latency.

    Profiles the same registry of workloads as :func:`run_trace`.  Every
    profiled packet's attribution is checked to sum exactly (bit-exact,
    not within-epsilon) to its end-to-end latency; any residual raises.
    When the workload runs both architectures, the mean-latency gap is
    decomposed into per-bucket shares.  ``chrome_out`` additionally
    writes a Chrome trace with per-bucket attribution lanes.
    """
    from .attribution import AttributionTable, analyze_bottlenecks, attribution_gap
    from .profiler import profile_run as _profile_run

    if workload not in TRACEABLE:
        raise ConfigError(
            f"unknown profile workload {workload!r}; choose from "
            f"{', '.join(sorted(TRACEABLE))}"
        )
    sections = []
    for trace_section in TRACEABLE[workload](seed=seed):
        profile = _profile_run(
            trace_section.telemetry.trace, label=trace_section.label
        )
        leaky = [
            p for p in profile.packets.values() if p.unattributed_s != 0.0
        ]
        if leaky:
            worst = max(leaky, key=lambda p: abs(p.unattributed_s))
            raise SimulationError(
                f"{trace_section.label}: {len(leaky)} packets with "
                f"unattributed time (worst: packet {worst.packet_id}, "
                f"{worst.unattributed_s * 1e9:.3f} ns); the attribution "
                f"model no longer tiles this workload"
            )
        report = analyze_bottlenecks(
            profile,
            trace_section.telemetry.trace,
            trace_section.telemetry.metrics,
            duration_s=trace_section.result.duration_s,
        )
        sections.append(
            ProfileSection(
                trace_section.label,
                trace_section.telemetry,
                trace_section.result,
                profile,
                report,
            )
        )

    run = ProfileRun(workload, sections)
    run.lines.append(f"profile workload {workload!r}")
    for section in sections:
        run.lines.append("")
        run.lines.extend(
            AttributionTable(section.profile).lines(title=section.label)
        )
        run.lines.extend(section.report.lines())

    if len(sections) == 2 and all(s.profile.packets for s in sections):
        slow, fast = sorted(
            sections, key=lambda s: s.profile.mean_latency_s, reverse=True
        )
        if slow.profile.mean_latency_s > fast.profile.mean_latency_s:
            run.gap = attribution_gap(slow.profile, fast.profile)
            run.gap_labels = (slow.label, fast.label)
            delta = (
                slow.profile.mean_latency_s - fast.profile.mean_latency_s
            )
            run.lines.append("")
            run.lines.append(
                f"mean-latency gap: {slow.label} is {delta * 1e9:.1f} ns "
                f"slower than {fast.label}; per-bucket shares:"
            )
            for bucket, share in run.gap.items():
                if share:
                    run.lines.append(f"  {bucket:<16} {share:>7.1%}")

    if chrome_out is not None:
        path = write_chrome_trace(chrome_out, run.chrome_events())
        run.lines.append("")
        run.lines.append(f"chrome trace with attribution lanes -> {path}")
    return run


def run_trace(
    workload: str,
    out: str | Path | None = None,
    seed: int | None = None,
    sample: int | None = None,
) -> TraceRun:
    """Run ``workload`` with telemetry on and export its timeline.

    Writes a Chrome trace-event JSON (default ``trace_<workload>.json`` in
    the working directory) and returns the :class:`TraceRun` with the
    text report in ``.lines``.  Raises :class:`SimulationError` if the
    event stream disagrees with the run's terminal counters.

    ``sample`` additionally samples 1-in-``sample`` packets head-based
    (:mod:`repro.telemetry.sampler`) and merges their per-hop span slices
    into the exported timeline — here the spans ride *alongside* the full
    trace; under ``sampled`` telemetry they are what remains of it.
    """
    if workload not in TRACEABLE:
        raise ConfigError(
            f"unknown trace workload {workload!r}; choose from "
            f"{', '.join(sorted(TRACEABLE))}"
        )
    spans = None
    if sample is not None:
        from .sampler import SpanSampler
        from .spans import SpanRecorder

        spans = SpanRecorder(
            SpanSampler(seed=0 if seed is None else seed, sample=sample)
        )
    sections = TRACEABLE[workload](seed=seed, spans=spans)

    errors: list[str] = []
    for section in sections:
        errors.extend(section.consistency_errors())
    if errors:
        raise SimulationError(
            "trace/counter mismatch: " + "; ".join(errors)
        )

    events: list[dict] = []
    for section in sections:
        events.extend(
            chrome_trace_events(
                section.telemetry.trace,
                section.telemetry.metrics,
                pid=section.label,
            )
        )
    if spans is not None:
        from .spans import span_chrome_events

        events.extend(span_chrome_events(spans.records))
    path = write_chrome_trace(out or f"trace_{workload}.json", events)

    run = TraceRun(workload, path, sections, spans=spans)
    run.lines.append(f"trace workload {workload!r} -> {path}")
    run.lines.append(f"  chrome trace events: {len(events)}")
    if spans is not None:
        sampler = spans.sampler
        run.lines.append(
            f"  spans: {sampler.admitted}/{sampler.offered} packets "
            f"sampled (1 in {sampler.sample}), "
            f"{len(spans.records)} hop records"
        )
    for section in sections:
        run.lines.extend(
            text_report(
                section.telemetry.trace,
                section.telemetry.metrics,
                title=section.label,
            )
        )
        run.lines.append(
            f"  counters: delivered={len(section.result.delivered)} "
            f"recirculated={section.result.recirculated_packets} "
            f"consumed={section.result.consumed} "
            f"(consistent with trace)"
        )
    return run


# --- resource monitoring -----------------------------------------------------------


@dataclass
class MonitorSection:
    """One monitored switch run: series, attribution, cross-checks."""

    label: str
    telemetry: Telemetry
    result: object  # SwitchRunResult
    monitor: object  # repro.telemetry.monitor.ResourceMonitor
    attribution: dict
    littles: list = field(default_factory=list)


@dataclass
class MonitorRun:
    """Everything one ``monitor`` invocation produced."""

    workload: str
    interval_ns: float
    sections: list[MonitorSection]
    ledger: dict
    ledger_path: Path
    csv_paths: list[Path] = field(default_factory=list)
    chrome_path: Path | None = None
    lines: list[str] = field(default_factory=list)

    def summary(self) -> dict:
        """JSON-friendly digest for ``--json`` output: the ledger plus
        the artifact paths this invocation wrote."""
        return {
            "ledger_file": str(self.ledger_path),
            "csv_files": [str(p) for p in self.csv_paths],
            "chrome_file": (
                str(self.chrome_path) if self.chrome_path else None
            ),
            "ledger": self.ledger,
        }


def _sectioned_path(base: Path, label: str, count: int) -> Path:
    """Per-section artifact path: suffix the label when a workload has
    several sections so they never overwrite each other."""
    if count == 1:
        return base
    return base.with_name(f"{base.stem}_{label}{base.suffix}")


def run_monitor(
    workload: str,
    interval_ns: float | None = None,
    ledger_out: str | Path | None = None,
    csv_out: str | Path | None = None,
    chrome_out: str | Path | None = None,
    seed: int | None = None,
) -> MonitorRun:
    """Run ``workload`` with a resource monitor sampling every
    ``interval_ns`` simulated nanoseconds, and write the run ledger.

    The ledger (default ``ledger_<workload>.json``) embeds per-section
    series summaries, the latency-attribution table, and the Little's-law
    cross-check of each TM's sampled occupancy against λW from the trace
    (informational, same posture as the bottleneck report: grid sampling
    undersamples very short bursty runs, so the flag only means much on
    steadier workloads).  ``csv_out`` additionally dumps the full
    columnar time-series; ``chrome_out`` writes the telemetry timeline
    with the monitor's counter tracks merged in.
    """
    from .attribution import AttributionTable, monitor_littles_checks
    from .ledger import build_ledger, write_ledger
    from .monitor import DEFAULT_INTERVAL_NS, ResourceMonitor
    from .profiler import profile_run as _profile_run

    if workload not in TRACEABLE:
        raise ConfigError(
            f"unknown monitor workload {workload!r}; choose from "
            f"{', '.join(sorted(TRACEABLE))}"
        )
    if interval_ns is None:
        interval_ns = DEFAULT_INTERVAL_NS

    def make_telemetry() -> Telemetry:
        return Telemetry(
            capacity=_CLI_CAPACITY,
            snapshot_interval_s=_CLI_SNAPSHOT_INTERVAL_S,
            monitor=ResourceMonitor(interval_ns=interval_ns),
        )

    sections: list[MonitorSection] = []
    for trace_section in TRACEABLE[workload](
        make_telemetry=make_telemetry, seed=seed
    ):
        monitor = trace_section.telemetry.monitor
        profile = _profile_run(
            trace_section.telemetry.trace, label=trace_section.label
        )
        attribution = AttributionTable(profile).to_json()
        littles = monitor_littles_checks(
            trace_section.telemetry.trace,
            monitor,
            trace_section.result.duration_s,
        )
        sections.append(
            MonitorSection(
                trace_section.label,
                trace_section.telemetry,
                trace_section.result,
                monitor,
                attribution,
                littles,
            )
        )

    ledger = build_ledger(
        workload=workload,
        interval_ns=interval_ns,
        config={
            "trace_capacity": _CLI_CAPACITY,
            "snapshot_interval_s": _CLI_SNAPSHOT_INTERVAL_S,
        },
        sections=[
            {
                "label": s.label,
                "duration_s": s.result.duration_s,
                "delivered": len(s.result.delivered),
                "consumed": s.result.consumed,
                "recirculated": s.result.recirculated_packets,
                "samples": len(s.monitor),
                "series": {
                    name: summary.to_json()
                    for name, summary in s.monitor.summaries().items()
                },
                "attribution": s.attribution,
                "littles_law": [
                    {
                        "component": c.component,
                        "predicted_occupancy": c.predicted_occupancy,
                        "observed_occupancy": c.observed_occupancy,
                        "consistent": c.consistent,
                    }
                    for c in s.littles
                ],
                "counters": s.result.counters,
            }
            for s in sections
        ],
    )
    ledger_path = write_ledger(
        ledger_out or f"ledger_{workload}.json", ledger
    )

    run = MonitorRun(workload, interval_ns, sections, ledger, ledger_path)
    run.lines.append(
        f"monitor workload {workload!r} "
        f"(interval {interval_ns:g} ns) -> {ledger_path}"
    )
    for section in sections:
        summaries = section.monitor.summaries()
        run.lines.append(
            f"  {section.label}: {len(section.monitor)} samples x "
            f"{len(summaries)} series, "
            f"duration {section.result.duration_s * 1e9:.0f} ns"
        )
        busiest = sorted(
            summaries.values(), key=lambda s: s.peak, reverse=True
        )[:5]
        for summary in busiest:
            run.lines.append(
                f"    {summary.name:<44} peak {summary.peak:>10.4g} "
                f"mean {summary.mean:>10.4g} p99 {summary.p99:>10.4g}"
            )
        for check in section.littles:
            flag = "ok" if check.consistent else "MISMATCH"
            run.lines.append(
                f"    little's law {check.component}: "
                f"predicted {check.predicted_occupancy:.2f} vs "
                f"sampled {check.observed_occupancy:.2f} ({flag})"
            )

    if csv_out is not None:
        base = Path(csv_out)
        for section in sections:
            path = section.monitor.write_csv(
                _sectioned_path(base, section.label, len(sections))
            )
            run.csv_paths.append(path)
            run.lines.append(f"  time-series csv ({section.label}) -> {path}")

    if chrome_out is not None:
        events: list[dict] = []
        for section in sections:
            events.extend(
                chrome_trace_events(
                    section.telemetry.trace,
                    section.telemetry.metrics,
                    pid=section.label,
                )
            )
            events.extend(
                section.monitor.chrome_counter_events(pid=section.label)
            )
        run.chrome_path = write_chrome_trace(chrome_out, events)
        run.lines.append(
            f"  chrome trace with monitor counters -> {run.chrome_path}"
        )
    return run


# --- sampled fabric spans ----------------------------------------------------------


@dataclass
class SpansSection:
    """One target's sampled fabric run."""

    target: str
    recorder: object  # repro.telemetry.spans.SpanRecorder
    run: object  # repro.fabric.runner.FabricRun
    critical_paths: list  # list[CoflowCriticalPath]


@dataclass
class SpansRun:
    """Everything one ``spans`` invocation produced."""

    topology: str
    workload: str
    sample: int
    seed: int
    sections: list[SpansSection]
    ledger: dict
    ledger_path: Path | None = None
    chrome_path: Path | None = None
    lines: list[str] = field(default_factory=list)

    def summary(self) -> dict:
        """JSON-friendly digest for ``--json`` output."""
        return {
            "topology": self.topology,
            "workload": self.workload,
            "sample": self.sample,
            "seed": self.seed,
            "ledger_file": (
                str(self.ledger_path) if self.ledger_path else None
            ),
            "chrome_file": (
                str(self.chrome_path) if self.chrome_path else None
            ),
            "sections": [
                {
                    "target": s.target,
                    "packets_offered": s.recorder.sampler.offered,
                    "packets_sampled": s.recorder.sampler.admitted,
                    "coverage": s.recorder.sampler.coverage,
                    "records": len(s.recorder.records),
                    "spans": len({r.span for r in s.recorder.records}),
                    "critical_paths": [
                        p.to_json() for p in s.critical_paths
                    ],
                }
                for s in self.sections
            ],
        }


#: Default head-sampling rate for ``spans`` CLI runs: 1 in 16 keeps the
#: fast path representative while still covering every coflow.
DEFAULT_SAMPLE = 16


def run_spans(
    topology: str,
    workload: str,
    target: str = "both",
    sample: int = DEFAULT_SAMPLE,
    seed: int = 0,
    ledger_out: str | Path | None = None,
    chrome_out: str | Path | None = None,
) -> SpansRun:
    """Run a fabric workload with 1-in-``sample`` span tracing.

    Runs ``workload`` on ``topology`` per target (default both) with a
    head-based :class:`~repro.telemetry.sampler.SpanSampler` — the fast
    path stays live, only the sampled subset leaves per-hop records —
    then attributes each coflow's sampled completion time to its
    dominant hop.  ``ledger_out`` writes one combined
    ``repro.span_ledger/1`` (per-switch hop digests, coverage, critical
    paths; byte-identical per seed modulo ``git_sha``, diffable with
    ``repro diff``); ``chrome_out`` writes the fabric-wide timeline with
    one track per switch and link.
    """
    from ..fabric import run_fabric
    from .ledger import SPAN_LEDGER_SCHEMA, git_sha
    from .sampler import SpanSampler
    from .spans import (
        SpanRecorder,
        build_span_ledger,
        coflow_critical_paths,
        span_chrome_events,
        write_span_ledger,
    )

    if target == "both":
        targets: tuple[str, ...] = ("adcp", "rmt")
    elif target in ("adcp", "rmt"):
        targets = (target,)
    else:
        raise ConfigError(
            f"unknown spans target {target!r} (choices: adcp, rmt, both)"
        )

    sections: list[SpansSection] = []
    merged_sections: list[dict] = []
    critical: dict[str, list] = {}
    for name in targets:
        recorder = SpanRecorder(SpanSampler(seed=seed, sample=sample))
        fabric_run = run_fabric(
            topology, workload, target=name, seed=seed, spans=recorder
        )
        paths = coflow_critical_paths(
            recorder.records, fabric_run.span_coflows
        )
        sections.append(SpansSection(name, recorder, fabric_run, paths))
        doc = build_span_ledger(
            workload,
            recorder,
            seed=seed,
            span_coflows=fabric_run.span_coflows,
            config={"topology": topology, "target": name},
        )
        merged_sections.extend(
            {"label": f"{name}-{sec['label']}", "series": sec["series"]}
            for sec in doc["sections"]
        )
        critical[name] = doc["critical_paths"]

    # One combined document for the whole invocation.  The raw per-hop
    # records live in the Chrome export; the ledger keeps the diffable
    # digests so committed baselines stay small.
    ledger = {
        "schema": SPAN_LEDGER_SCHEMA,
        "workload": workload,
        "topology": topology,
        "targets": list(targets),
        "seed": seed,
        "sample": sample,
        "git_sha": git_sha(),
        "sections": merged_sections,
        "critical_paths": critical,
    }

    run = SpansRun(topology, workload, sample, seed, sections, ledger)
    run.lines.append(
        f"spans {workload!r} on {topology} "
        f"(1 in {sample} head-sampled, seed {seed})"
    )
    for section in sections:
        sampler = section.recorder.sampler
        tracks = len({r.switch for r in section.recorder.records})
        run.lines.append(
            f"  {section.target}: {sampler.admitted}/{sampler.offered} "
            f"packets sampled, {len(section.recorder.records)} hop "
            f"records across {tracks} tracks"
        )
        for path in section.critical_paths:
            run.lines.append(
                f"    coflow {path.coflow}: sampled cct "
                f"{path.cct_s * 1e9:.1f} ns, dominant hop "
                f"{path.dominant} over {path.spans} spans"
            )

    if ledger_out is not None:
        run.ledger_path = write_span_ledger(ledger_out, ledger)
        run.lines.append(f"  span ledger -> {run.ledger_path}")
    if chrome_out is not None:
        events: list[dict] = []
        for section in sections:
            prefix = f"{section.target}-" if len(sections) > 1 else ""
            events.extend(
                span_chrome_events(section.recorder.records, prefix)
            )
        run.chrome_path = write_chrome_trace(chrome_out, events)
        run.lines.append(f"  chrome span timeline -> {run.chrome_path}")
    return run
