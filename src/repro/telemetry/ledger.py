"""Run ledgers: one JSON artifact per run, and the ``repro diff`` comparator.

A *run ledger* is the machine-readable record of one monitored run:
workload identity and knobs, the git SHA it ran at, per-section series
summaries from the :class:`~repro.telemetry.monitor.ResourceMonitor`,
and the PR 3 latency-attribution table.  Ledgers exist to be *diffed*:
``python -m repro diff A.json B.json`` compares two ledgers
series-by-series and emits a verdict table — improved / regressed /
unchanged — with a non-zero exit when any series regressed past the
threshold.  That gives CI (and every future perf PR) a one-command
answer to "did this change move queue pressure or utilization?".

Diff semantics: most monitored series are *pressure* metrics (occupancy,
backlog, access counts, loop depth) or utilizations — for them a higher
mean at the same workload means more contention, so **lower is better**.
Serve-mode ledgers (``repro.serve_ledger/1``, docs/SERVING.md) add
goodness metrics — throughput, SLO compliance — where higher is better;
a series can declare its polarity with a ``direction`` field in its
summary (``"higher"``/``"lower"``), and otherwise name-pattern defaults
apply (:func:`series_direction`).  The verdict compares mean values;
peaks are reported alongside for context.  A series present in only one
ledger is ``added``/``removed`` (structural, never a regression by
itself).
"""

from __future__ import annotations

import json
import math
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError

#: Ledger format identifier; bump the suffix on breaking schema changes.
LEDGER_SCHEMA = "repro.run_ledger/1"

#: Serve-mode ledger format (window series + SLO summary, docs/SERVING.md).
#: Shares the sections/series shape with run ledgers, so ``repro diff``
#: accepts both families.
SERVE_LEDGER_SCHEMA = "repro.serve_ledger/1"

#: Sampled-span ledger format (per-hop span totals + coverage,
#: docs/SPANS.md).  Same sections/series shape again, so span ledgers
#: diff with the same comparator.
SPAN_LEDGER_SCHEMA = "repro.span_ledger/1"

#: Stateful-primitive ledger format (per-primitive state accesses,
#: transition counts, detection quality, compile divergence —
#: docs/PRIMITIVES.md).  Same sections/series shape, same comparator.
STATEFUL_LEDGER_SCHEMA = "repro.stateful_ledger/1"

#: Schema families :func:`load_ledger` accepts (prefix match on the part
#: before the version suffix).
LEDGER_FAMILIES = (
    "repro.run_ledger",
    "repro.serve_ledger",
    "repro.span_ledger",
    "repro.stateful_ledger",
)

#: Name fragments that mark a series as higher-is-better when its summary
#: carries no explicit ``direction`` field.  ``coverage`` and ``sampled``
#: mark the span-ledger goodness metrics (span coverage, sampled-mode
#: events/s): losing sampled spans or sampled-path throughput at the same
#: workload is the regression, not the improvement.  ``hit_rate`` and
#: ``detection_rate`` are the stateful-ledger quality metrics (cache
#: hits, flagged attackers / found heavy keys); ``goodput`` already
#: covers the token bucket's ``goodput_pps``.
HIGHER_IS_BETTER_MARKERS = (
    "throughput",
    "goodput",
    "compliance",
    "delivered",
    "completed",
    "coverage",
    "sampled",
    "hit_rate",
    "detection_rate",
)

#: Default relative-change tolerance (fraction) before a verdict flips.
DEFAULT_THRESHOLD = 0.05

#: Synthetic series name for the attribution table's mean latency, so the
#: end-to-end number participates in the same verdict table.
LATENCY_SERIES = "attribution.mean_latency_ns"


def git_sha() -> str | None:
    """Best-effort HEAD SHA of the current working directory's repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def build_ledger(
    workload: str,
    interval_ns: float,
    sections: list[dict],
    config: dict | None = None,
) -> dict:
    """Assemble a ledger document (see :data:`LEDGER_SCHEMA`).

    Each entry of ``sections`` must carry ``label`` and ``series``
    (name -> :meth:`~repro.telemetry.monitor.SeriesSummary.to_json`
    dicts); ``attribution``/``counters``/terminal counts are optional.
    """
    return {
        "schema": LEDGER_SCHEMA,
        "workload": workload,
        "interval_ns": interval_ns,
        "git_sha": git_sha(),
        "config": config or {},
        "sections": sections,
    }


def write_ledger(path: str | Path, ledger: dict) -> Path:
    """Write a ledger as deterministic JSON; returns the path written.

    The write is atomic (temp-then-rename) so parallel campaign cells
    and a reader diffing the ledger can never observe a partial file.
    """
    from ..ioutil import atomic_write_text

    return atomic_write_text(
        path, json.dumps(ledger, indent=1, sort_keys=True) + "\n"
    )


def load_ledger(path: str | Path) -> dict:
    """Read and validate a ledger file."""
    source = Path(path)
    try:
        document = json.loads(source.read_text())
    except json.JSONDecodeError as error:
        raise ConfigError(f"{source} is not valid JSON: {error}")
    if not isinstance(document, dict) or "schema" not in document:
        raise ConfigError(f"{source} is not a run ledger (no schema field)")
    schema = str(document["schema"])
    if not any(schema.startswith(family) for family in LEDGER_FAMILIES):
        raise ConfigError(
            f"{source} has schema {schema!r}, expected one of "
            f"{', '.join(LEDGER_FAMILIES)}"
        )
    return document


# --- diffing ---------------------------------------------------------------------


@dataclass(frozen=True)
class DiffRow:
    """One series' verdict between two ledgers."""

    section: str
    series: str
    verdict: str  # unchanged | improved | regressed | added | removed
    base_mean: float | None
    new_mean: float | None
    base_peak: float | None
    new_peak: float | None
    delta: float | None  # relative mean change; None when undefined
    direction: str = "lower"  # which way is better: "lower" | "higher"

    def to_json(self) -> dict:
        return {
            "section": self.section,
            "series": self.series,
            "verdict": self.verdict,
            "base_mean": self.base_mean,
            "new_mean": self.new_mean,
            "base_peak": self.base_peak,
            "new_peak": self.new_peak,
            "delta": self.delta,
            "direction": self.direction,
        }


@dataclass
class LedgerDiff:
    """Series-by-series comparison of two run ledgers."""

    threshold: float
    base_workload: str
    new_workload: str
    rows: list[DiffRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        return [row for row in self.rows if row.verdict == "regressed"]

    @property
    def improvements(self) -> list[DiffRow]:
        return [row for row in self.rows if row.verdict == "improved"]

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions)

    @property
    def exit_code(self) -> int:
        return 1 if self.has_regression else 0

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for row in self.rows:
            out[row.verdict] = out.get(row.verdict, 0) + 1
        return out

    def lines(self) -> list[str]:
        counts = self.counts()
        header = ", ".join(
            f"{counts.get(verdict, 0)} {verdict}"
            for verdict in ("regressed", "improved", "unchanged")
        )
        out = [
            f"ledger diff — {self.base_workload} vs {self.new_workload} "
            f"(threshold {self.threshold:.1%}): {header}"
        ]
        out.extend(f"  note: {note}" for note in self.notes)
        interesting = [
            row for row in self.rows if row.verdict != "unchanged"
        ]
        if not interesting:
            out.append("  every series unchanged within threshold")
            return out
        out.append(
            f"  {'verdict':<10} {'section':<16} {'series':<44} "
            f"{'base mean':>12} {'new mean':>12} {'delta':>8}"
        )
        for row in interesting:
            delta = (
                f"{row.delta:+.1%}"
                if row.delta is not None and math.isfinite(row.delta)
                else "n/a"
            )
            base = "—" if row.base_mean is None else f"{row.base_mean:.6g}"
            new = "—" if row.new_mean is None else f"{row.new_mean:.6g}"
            out.append(
                f"  {row.verdict:<10} {row.section:<16} {row.series:<44} "
                f"{base:>12} {new:>12} {delta:>8}"
            )
        return out

    def to_json(self) -> dict:
        return {
            "threshold": self.threshold,
            "base_workload": self.base_workload,
            "new_workload": self.new_workload,
            "counts": self.counts(),
            "has_regression": self.has_regression,
            "notes": self.notes,
            "rows": [row.to_json() for row in self.rows],
        }


def _series_of(section: dict) -> dict[str, dict]:
    """A section's comparable series, with the attribution mean latency
    folded in as a synthetic series."""
    series = dict(section.get("series", {}))
    attribution = section.get("attribution")
    if attribution and attribution.get("packets"):
        mean_ns = attribution.get("mean_latency_ns", 0.0)
        series[LATENCY_SERIES] = {"mean": mean_ns, "peak": mean_ns}
    return series


def series_direction(name: str, *summaries: dict | None) -> str:
    """Which way a series is better: ``"lower"`` (default) or ``"higher"``.

    An explicit ``direction`` field in either summary wins (first match
    in the order given, so callers pass the new summary first); otherwise
    the name is matched against :data:`HIGHER_IS_BETTER_MARKERS` —
    throughput-shaped series read higher-is-better, everything else
    keeps the pressure-metric default.
    """
    for summary in summaries:
        if summary is not None:
            declared = summary.get("direction")
            if declared in ("higher", "lower"):
                return declared
    lowered = name.lower()
    for marker in HIGHER_IS_BETTER_MARKERS:
        if marker in lowered:
            return "higher"
    return "lower"


def _verdict(
    base_mean: float,
    new_mean: float,
    threshold: float,
    direction: str = "lower",
):
    """(verdict, relative delta) for one series under ``direction``."""
    higher_is_better = direction == "higher"
    if base_mean == 0.0 and new_mean == 0.0:
        return "unchanged", 0.0
    if base_mean == 0.0:
        # A value appeared where there was none: infinite relative
        # growth, always past any threshold.  Pressure appearing is a
        # regression; throughput appearing is an improvement.
        verdict = "improved" if higher_is_better and new_mean > 0 else "regressed"
        return verdict, math.inf
    delta = (new_mean - base_mean) / abs(base_mean)
    worse = delta < -threshold if higher_is_better else delta > threshold
    better = delta > threshold if higher_is_better else delta < -threshold
    if worse:
        return "regressed", delta
    if better:
        return "improved", delta
    return "unchanged", delta


def diff_ledgers(
    base: dict,
    new: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> LedgerDiff:
    """Compare two ledgers series-by-series.

    Sections pair by label; series pair by name within a section.  The
    verdict tests the relative change of the *mean* against
    ``threshold`` (peaks ride along in the report).  Diffing a ledger
    against itself yields all-unchanged and exit code 0 by construction.
    """
    if threshold < 0:
        raise ConfigError(f"threshold must be >= 0, got {threshold}")
    diff = LedgerDiff(
        threshold=threshold,
        base_workload=base.get("workload", "?"),
        new_workload=new.get("workload", "?"),
    )
    if base.get("workload") != new.get("workload"):
        diff.notes.append(
            f"comparing different workloads "
            f"({base.get('workload')!r} vs {new.get('workload')!r})"
        )
    base_sections = {s["label"]: s for s in base.get("sections", [])}
    new_sections = {s["label"]: s for s in new.get("sections", [])}
    for label in sorted(set(base_sections) - set(new_sections)):
        diff.notes.append(f"section {label!r} only in base ledger")
    for label in sorted(set(new_sections) - set(base_sections)):
        diff.notes.append(f"section {label!r} only in new ledger")

    for label in sorted(set(base_sections) & set(new_sections)):
        base_series = _series_of(base_sections[label])
        new_series = _series_of(new_sections[label])
        for name in sorted(set(base_series) | set(new_series)):
            old = base_series.get(name)
            current = new_series.get(name)
            direction = series_direction(name, current, old)
            if old is None:
                diff.rows.append(
                    DiffRow(
                        label, name, "added",
                        None, current.get("mean"),
                        None, current.get("peak"),
                        None, direction,
                    )
                )
                continue
            if current is None:
                diff.rows.append(
                    DiffRow(
                        label, name, "removed",
                        old.get("mean"), None,
                        old.get("peak"), None,
                        None, direction,
                    )
                )
                continue
            verdict, delta = _verdict(
                float(old.get("mean", 0.0)),
                float(current.get("mean", 0.0)),
                threshold,
                direction,
            )
            diff.rows.append(
                DiffRow(
                    label, name, verdict,
                    old.get("mean"), current.get("mean"),
                    old.get("peak"), current.get("peak"),
                    delta, direction,
                )
            )
    return diff
