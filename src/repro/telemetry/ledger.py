"""Run ledgers: one JSON artifact per run, and the ``repro diff`` comparator.

A *run ledger* is the machine-readable record of one monitored run:
workload identity and knobs, the git SHA it ran at, per-section series
summaries from the :class:`~repro.telemetry.monitor.ResourceMonitor`,
and the PR 3 latency-attribution table.  Ledgers exist to be *diffed*:
``python -m repro diff A.json B.json`` compares two ledgers
series-by-series and emits a verdict table — improved / regressed /
unchanged — with a non-zero exit when any series regressed past the
threshold.  That gives CI (and every future perf PR) a one-command
answer to "did this change move queue pressure or utilization?".

Diff semantics: every monitored series is a *pressure* metric (occupancy,
backlog, access counts, loop depth) or a utilization — for all of them a
higher mean at the same workload means more contention, so **lower is
better**.  The verdict compares mean values; peaks are reported alongside
for context.  A series present in only one ledger is ``added``/``removed``
(structural, never a regression by itself).
"""

from __future__ import annotations

import json
import math
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError

#: Ledger format identifier; bump the suffix on breaking schema changes.
LEDGER_SCHEMA = "repro.run_ledger/1"

#: Default relative-change tolerance (fraction) before a verdict flips.
DEFAULT_THRESHOLD = 0.05

#: Synthetic series name for the attribution table's mean latency, so the
#: end-to-end number participates in the same verdict table.
LATENCY_SERIES = "attribution.mean_latency_ns"


def git_sha() -> str | None:
    """Best-effort HEAD SHA of the current working directory's repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def build_ledger(
    workload: str,
    interval_ns: float,
    sections: list[dict],
    config: dict | None = None,
) -> dict:
    """Assemble a ledger document (see :data:`LEDGER_SCHEMA`).

    Each entry of ``sections`` must carry ``label`` and ``series``
    (name -> :meth:`~repro.telemetry.monitor.SeriesSummary.to_json`
    dicts); ``attribution``/``counters``/terminal counts are optional.
    """
    return {
        "schema": LEDGER_SCHEMA,
        "workload": workload,
        "interval_ns": interval_ns,
        "git_sha": git_sha(),
        "config": config or {},
        "sections": sections,
    }


def write_ledger(path: str | Path, ledger: dict) -> Path:
    """Write a ledger as deterministic JSON; returns the path written.

    The write is atomic (temp-then-rename) so parallel campaign cells
    and a reader diffing the ledger can never observe a partial file.
    """
    from ..ioutil import atomic_write_text

    return atomic_write_text(
        path, json.dumps(ledger, indent=1, sort_keys=True) + "\n"
    )


def load_ledger(path: str | Path) -> dict:
    """Read and validate a ledger file."""
    source = Path(path)
    try:
        document = json.loads(source.read_text())
    except json.JSONDecodeError as error:
        raise ConfigError(f"{source} is not valid JSON: {error}")
    if not isinstance(document, dict) or "schema" not in document:
        raise ConfigError(f"{source} is not a run ledger (no schema field)")
    schema = document["schema"]
    family = LEDGER_SCHEMA.rsplit("/", 1)[0]
    if not str(schema).startswith(family):
        raise ConfigError(
            f"{source} has schema {schema!r}, expected {LEDGER_SCHEMA!r}"
        )
    return document


# --- diffing ---------------------------------------------------------------------


@dataclass(frozen=True)
class DiffRow:
    """One series' verdict between two ledgers."""

    section: str
    series: str
    verdict: str  # unchanged | improved | regressed | added | removed
    base_mean: float | None
    new_mean: float | None
    base_peak: float | None
    new_peak: float | None
    delta: float | None  # relative mean change; None when undefined

    def to_json(self) -> dict:
        return {
            "section": self.section,
            "series": self.series,
            "verdict": self.verdict,
            "base_mean": self.base_mean,
            "new_mean": self.new_mean,
            "base_peak": self.base_peak,
            "new_peak": self.new_peak,
            "delta": self.delta,
        }


@dataclass
class LedgerDiff:
    """Series-by-series comparison of two run ledgers."""

    threshold: float
    base_workload: str
    new_workload: str
    rows: list[DiffRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        return [row for row in self.rows if row.verdict == "regressed"]

    @property
    def improvements(self) -> list[DiffRow]:
        return [row for row in self.rows if row.verdict == "improved"]

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions)

    @property
    def exit_code(self) -> int:
        return 1 if self.has_regression else 0

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for row in self.rows:
            out[row.verdict] = out.get(row.verdict, 0) + 1
        return out

    def lines(self) -> list[str]:
        counts = self.counts()
        header = ", ".join(
            f"{counts.get(verdict, 0)} {verdict}"
            for verdict in ("regressed", "improved", "unchanged")
        )
        out = [
            f"ledger diff — {self.base_workload} vs {self.new_workload} "
            f"(threshold {self.threshold:.1%}): {header}"
        ]
        out.extend(f"  note: {note}" for note in self.notes)
        interesting = [
            row for row in self.rows if row.verdict != "unchanged"
        ]
        if not interesting:
            out.append("  every series unchanged within threshold")
            return out
        out.append(
            f"  {'verdict':<10} {'section':<16} {'series':<44} "
            f"{'base mean':>12} {'new mean':>12} {'delta':>8}"
        )
        for row in interesting:
            delta = (
                f"{row.delta:+.1%}"
                if row.delta is not None and math.isfinite(row.delta)
                else "n/a"
            )
            base = "—" if row.base_mean is None else f"{row.base_mean:.6g}"
            new = "—" if row.new_mean is None else f"{row.new_mean:.6g}"
            out.append(
                f"  {row.verdict:<10} {row.section:<16} {row.series:<44} "
                f"{base:>12} {new:>12} {delta:>8}"
            )
        return out

    def to_json(self) -> dict:
        return {
            "threshold": self.threshold,
            "base_workload": self.base_workload,
            "new_workload": self.new_workload,
            "counts": self.counts(),
            "has_regression": self.has_regression,
            "notes": self.notes,
            "rows": [row.to_json() for row in self.rows],
        }


def _series_of(section: dict) -> dict[str, dict]:
    """A section's comparable series, with the attribution mean latency
    folded in as a synthetic series."""
    series = dict(section.get("series", {}))
    attribution = section.get("attribution")
    if attribution and attribution.get("packets"):
        mean_ns = attribution.get("mean_latency_ns", 0.0)
        series[LATENCY_SERIES] = {"mean": mean_ns, "peak": mean_ns}
    return series


def _verdict(base_mean: float, new_mean: float, threshold: float):
    """(verdict, relative delta) for one series; lower mean is better."""
    if base_mean == 0.0 and new_mean == 0.0:
        return "unchanged", 0.0
    if base_mean == 0.0:
        # Pressure appeared where there was none: infinite relative
        # growth, always past any threshold.
        return "regressed", math.inf
    delta = (new_mean - base_mean) / abs(base_mean)
    if delta > threshold:
        return "regressed", delta
    if delta < -threshold:
        return "improved", delta
    return "unchanged", delta


def diff_ledgers(
    base: dict,
    new: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> LedgerDiff:
    """Compare two ledgers series-by-series.

    Sections pair by label; series pair by name within a section.  The
    verdict tests the relative change of the *mean* against
    ``threshold`` (peaks ride along in the report).  Diffing a ledger
    against itself yields all-unchanged and exit code 0 by construction.
    """
    if threshold < 0:
        raise ConfigError(f"threshold must be >= 0, got {threshold}")
    diff = LedgerDiff(
        threshold=threshold,
        base_workload=base.get("workload", "?"),
        new_workload=new.get("workload", "?"),
    )
    if base.get("workload") != new.get("workload"):
        diff.notes.append(
            f"comparing different workloads "
            f"({base.get('workload')!r} vs {new.get('workload')!r})"
        )
    base_sections = {s["label"]: s for s in base.get("sections", [])}
    new_sections = {s["label"]: s for s in new.get("sections", [])}
    for label in sorted(set(base_sections) - set(new_sections)):
        diff.notes.append(f"section {label!r} only in base ledger")
    for label in sorted(set(new_sections) - set(base_sections)):
        diff.notes.append(f"section {label!r} only in new ledger")

    for label in sorted(set(base_sections) & set(new_sections)):
        base_series = _series_of(base_sections[label])
        new_series = _series_of(new_sections[label])
        for name in sorted(set(base_series) | set(new_series)):
            old = base_series.get(name)
            current = new_series.get(name)
            if old is None:
                diff.rows.append(
                    DiffRow(
                        label, name, "added",
                        None, current.get("mean"),
                        None, current.get("peak"),
                        None,
                    )
                )
                continue
            if current is None:
                diff.rows.append(
                    DiffRow(
                        label, name, "removed",
                        old.get("mean"), None,
                        old.get("peak"), None,
                        None,
                    )
                )
                continue
            verdict, delta = _verdict(
                float(old.get("mean", 0.0)),
                float(current.get("mean", 0.0)),
                threshold,
            )
            diff.rows.append(
                DiffRow(
                    label, name, verdict,
                    old.get("mean"), current.get("mean"),
                    old.get("peak"), current.get("peak"),
                    delta,
                )
            )
    return diff
