"""Per-hop spans for sampled packets, and what to do with them.

A *span* is the causal trace of one sampled packet: every hop it (and
every ``OP_RESULT`` emission it triggers) takes through the fabric —
ingress queueing, parse, match/action, traffic-manager residency, egress
serialization, link flight — each recorded as one :class:`SpanRecord`
with exact simulated-time boundaries.  Sampling is decided once at
injection (:class:`~repro.telemetry.sampler.SpanSampler`); the span id
rides in ``PacketMetadata.span``, survives
:func:`~repro.fabric.link.switch_handoff`'s per-hop meta resets, and is
inherited by emissions, so one id stitches the whole cross-switch story
together.

Hop names deliberately reuse PR 3's attribution vocabulary
(``ingress_queue``/``parse``/``match_action``/``egress_serial``; ``tm``
lumps ``tm_service``+``tm_queue``) so sampled span totals can be
reconciled against the bit-exact profiler on small runs — that
cross-check lives in ``tests/telemetry/test_spans.py``.  ``link`` is
span-only: the profiler sees one switch at a time, spans see the fabric.

The recorder costs nothing on unsampled packets beyond the ``is None``
test each hook already performs, so ``sampled`` telemetry keeps
``switch.trace is None`` — and with it every PR 7 fast path — intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .ledger import SPAN_LEDGER_SCHEMA, git_sha, write_ledger
from .sampler import SpanSampler

#: Span hop names, in pipeline order.  The first four map 1:1 onto PR 3
#: attribution buckets; ``tm`` covers ``tm_service`` + ``tm_queue``;
#: ``link`` has no single-switch counterpart.
SPAN_HOPS = (
    "ingress_queue",
    "parse",
    "match_action",
    "tm",
    "egress_serial",
    "link",
)


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One hop of one sampled packet's life, in simulated seconds."""

    span: int  # run-relative id of the sampled root packet
    packet: int  # run-relative id of the packet this hop belongs to
    switch: str  # switch name, or link name for ``link`` hops
    hop: str  # one of SPAN_HOPS
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_json(self) -> dict:
        return {
            "span": self.span,
            "packet": self.packet,
            "switch": self.switch,
            "hop": self.hop,
            "start_s": self.start_s,
            "end_s": self.end_s,
        }


class SpanRecorder:
    """Collects :class:`SpanRecord`\\ s for the sampled packet subset.

    One recorder serves a whole run — every switch and link of a fabric
    points at the same instance (``switch.spans`` / ``link.spans``), so
    records arrive in global dispatch order and the record list is as
    deterministic as the event kernel itself.
    """

    __slots__ = ("sampler", "records")

    def __init__(self, sampler: SpanSampler) -> None:
        self.sampler = sampler
        self.records: list[SpanRecord] = []

    def admit(self, packet) -> bool:
        """Sampling decision at injection; tags ``meta.span`` when sampled."""
        if self.sampler.admits(packet.packet_id):
            packet.meta.span = self.sampler.span_id(packet.packet_id)
            return True
        return False

    def relative(self, packet_id: int) -> int:
        """Run-relative id for ledger/trace output (process-independent)."""
        return self.sampler.span_id(packet_id)

    def record(
        self,
        span: int,
        packet_id: int,
        switch: str,
        hop: str,
        start_s: float,
        end_s: float,
    ) -> None:
        self.records.append(
            SpanRecord(
                span, self.relative(packet_id), switch, hop, start_s, end_s
            )
        )

    def service(
        self,
        span: int,
        packet_id: int,
        switch: str,
        ready_s: float,
        start_s: float,
        parse_s: float,
        exit_s: float,
        queue_hop: str = "ingress_queue",
    ) -> None:
        """Record the three hops of one pipeline service.

        Boundaries come verbatim from the pipeline's
        :class:`~repro.rmt.pipeline.ServiceRecord` (identical on the
        fast and instrumented paths), so span totals tile the service
        window exactly the way the PR 3 profiler does.  ``queue_hop``
        labels the pre-service wait: ``ingress_queue`` for ingress-region
        passes, ``tm`` for egress-region passes (the wait for an egress
        pipeline *is* TM residency — the profiler's ``tm_queue``).
        """
        packet = self.relative(packet_id)
        append = self.records.append
        append(SpanRecord(span, packet, switch, queue_hop, ready_s, start_s))
        parse_end = start_s + parse_s
        append(SpanRecord(span, packet, switch, "parse", start_s, parse_end))
        append(
            SpanRecord(span, packet, switch, "match_action", parse_end, exit_s)
        )

    def __len__(self) -> int:
        return len(self.records)


# --- analysis --------------------------------------------------------------------


def span_hop_totals(
    records: list[SpanRecord],
) -> dict[str, dict[str, float]]:
    """``{switch: {hop: summed duration_s}}`` over all records."""
    totals: dict[str, dict[str, float]] = {}
    for record in records:
        per_switch = totals.setdefault(record.switch, {})
        per_switch[record.hop] = (
            per_switch.get(record.hop, 0.0) + record.duration_s
        )
    return totals


@dataclass(frozen=True)
class CoflowCriticalPath:
    """Where one coflow's (sampled) completion time went.

    ``cct_s`` spans the coflow's earliest sampled hop start to its latest
    sampled hop end; ``hop_totals`` sums the *critical span* — the span
    chain finishing last, i.e. the one that gated completion — per hop,
    with the untraced remainder (inter-hop waits, aggregation barriers)
    reported as ``other_s``.  ``dominant`` names the largest contributor.
    """

    coflow: str
    spans: int
    cct_s: float
    critical_span: int
    hop_totals: dict[str, float]
    other_s: float
    dominant: str

    def to_json(self) -> dict:
        return {
            "coflow": self.coflow,
            "spans": self.spans,
            "cct_s": self.cct_s,
            "critical_span": self.critical_span,
            "hop_totals": dict(self.hop_totals),
            "other_s": self.other_s,
            "dominant": self.dominant,
        }


def coflow_critical_paths(
    records: list[SpanRecord],
    span_coflows: dict[int, str],
) -> list[CoflowCriticalPath]:
    """Attribute each coflow's sampled CCT to its dominant hop.

    ``span_coflows`` maps span ids to coflow labels (the injector knows
    which coflow each sampled root packet belongs to); spans without a
    mapping (e.g. background traffic) are ignored.
    """
    by_span: dict[int, list[SpanRecord]] = {}
    for record in records:
        by_span.setdefault(record.span, []).append(record)
    by_coflow: dict[str, list[int]] = {}
    for span, coflow in span_coflows.items():
        if span in by_span:
            by_coflow.setdefault(coflow, []).append(span)
    out: list[CoflowCriticalPath] = []
    for coflow in sorted(by_coflow):
        spans = by_coflow[coflow]
        start = min(r.start_s for s in spans for r in by_span[s])
        end = max(r.end_s for s in spans for r in by_span[s])
        critical = max(
            spans, key=lambda s: (max(r.end_s for r in by_span[s]), s)
        )
        chain = by_span[critical]
        hop_totals = {hop: 0.0 for hop in SPAN_HOPS}
        for record in chain:
            hop_totals[record.hop] += record.duration_s
        chain_window = max(r.end_s for r in chain) - min(
            r.start_s for r in chain
        )
        other = max(0.0, chain_window - sum(hop_totals.values()))
        contributions = dict(hop_totals)
        contributions["other"] = other
        dominant = max(
            contributions, key=lambda hop: (contributions[hop], hop)
        )
        out.append(
            CoflowCriticalPath(
                coflow=coflow,
                spans=len(spans),
                cct_s=end - start,
                critical_span=critical,
                hop_totals=hop_totals,
                other_s=other,
                dominant=dominant,
            )
        )
    return out


# --- export ----------------------------------------------------------------------


def span_chrome_events(
    records: list[SpanRecord], pid_prefix: str = ""
) -> list[dict]:
    """Chrome ``traceEvents`` with one track (pid) per switch/link.

    Complete events (ph ``X``), microsecond timestamps, one tid per span
    so a sampled packet's hops line up on one row inside its switch's
    track — load the file in ``chrome://tracing`` / Perfetto.
    ``pid_prefix`` disambiguates tracks when several runs share switch
    names (e.g. both fabric targets in one file).
    """
    events = []
    for record in records:
        events.append(
            {
                "name": record.hop,
                "cat": "span",
                "ph": "X",
                "ts": record.start_s * 1e6,
                "dur": record.duration_s * 1e6,
                "pid": pid_prefix + record.switch,
                "tid": f"span {record.span}",
                "args": {"span": record.span, "packet": record.packet},
            }
        )
    return events


def _summary(durations: list[float], direction: str | None = None) -> dict:
    """A ``SeriesSummary``-shaped digest of one hop's durations."""
    count = len(durations)
    if count:
        ordered = sorted(durations)
        total = sum(ordered)
        summary = {
            "samples": count,
            "mean": total / count,
            "peak": ordered[-1],
            "p99": ordered[min(count - 1, (99 * count) // 100)],
            "last": durations[-1],
            "total": total,
        }
    else:
        summary = {
            "samples": 0, "mean": 0.0, "peak": 0.0,
            "p99": 0.0, "last": 0.0, "total": 0.0,
        }
    if direction is not None:
        summary["direction"] = direction
    return summary


def _scalar(value: float, direction: str | None = None) -> dict:
    summary = {"samples": 1, "mean": value, "peak": value, "p99": value,
               "last": value, "total": value}
    if direction is not None:
        summary["direction"] = direction
    return summary


def span_overview_series(recorder: SpanRecorder) -> dict:
    """The ``spans`` overview section's series: sampling coverage and
    record counts, direction-tagged so ``repro diff`` knows more
    coverage is better.  Shared by span ledgers and the serve ledger."""
    sampler = recorder.sampler
    span_ids = {record.span for record in recorder.records}
    return {
        "span.coverage": _scalar(sampler.coverage, "higher"),
        "span.packets_offered": _scalar(float(sampler.offered)),
        "span.packets_sampled": _scalar(float(sampler.admitted), "higher"),
        "span.count": _scalar(float(len(span_ids)), "higher"),
        "span.records": _scalar(float(len(recorder.records)), "higher"),
    }


def build_span_ledger(
    workload: str,
    recorder: SpanRecorder,
    *,
    seed: int,
    span_coflows: dict[int, str] | None = None,
    config: dict | None = None,
) -> dict:
    """Assemble a ``repro.span_ledger/1`` document.

    Sections: one per switch/link (series ``span.<hop>_s``, duration
    digests), a ``spans`` overview (coverage and counts; coverage is
    direction-tagged higher-is-better), and — when ``span_coflows`` is
    given — a ``critical_path`` section with each coflow's sampled CCT
    and dominant-hop attribution.  Byte-identical per seed modulo
    ``git_sha``; diffable with ``repro diff``.
    """
    sampler = recorder.sampler
    sections: list[dict] = []
    durations: dict[str, dict[str, list[float]]] = {}
    for record in recorder.records:
        durations.setdefault(record.switch, {}).setdefault(
            record.hop, []
        ).append(record.duration_s)
    for switch in sorted(durations):
        series = {
            f"span.{hop}_s": _summary(values)
            for hop, values in sorted(durations[switch].items())
        }
        sections.append({"label": switch, "series": series})

    sections.append({"label": "spans", "series": span_overview_series(recorder)})

    critical: list[dict] = []
    if span_coflows:
        paths = coflow_critical_paths(recorder.records, span_coflows)
        series = {}
        for path in paths:
            series[f"{path.coflow}.cct_s"] = _scalar(path.cct_s)
            dominant_total = (
                path.other_s
                if path.dominant == "other"
                else path.hop_totals[path.dominant]
            )
            series[f"{path.coflow}.dominant.{path.dominant}_s"] = _scalar(
                dominant_total
            )
        sections.append({"label": "critical_path", "series": series})
        critical = [path.to_json() for path in paths]

    return {
        "schema": SPAN_LEDGER_SCHEMA,
        "workload": workload,
        "seed": seed,
        "sample": sampler.sample,
        "git_sha": git_sha(),
        "config": config or {},
        "sections": sections,
        "critical_paths": critical,
        "spans": [record.to_json() for record in recorder.records],
    }


def write_span_ledger(path: str | Path, ledger: dict) -> Path:
    """Deterministic, atomic span-ledger write (same format as ledgers)."""
    return write_ledger(path, ledger)
