"""Bottleneck analysis over latency attributions.

:mod:`~repro.telemetry.profiler` answers "where did this packet's
nanoseconds go"; this module answers the run-level questions on top:

- **attribution table** — per-bucket totals, shares, and percentile
  spreads, mergeable across runs/switches via :meth:`Histogram.merge`;
- **bottleneck report** — per-component utilization and queue-delay
  share, a Little's-law cross-check of TM residency against the sampled
  occupancy gauges, and a top-k "critical component" ranking;
- **gap attribution** — which buckets explain the mean-latency gap
  between two runs (the Table 1 RMT-vs-ADCP question).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..sim.stats import Histogram
from .metrics import MetricRegistry
from .profiler import BUCKETS, QUEUE_BUCKETS, RunProfile
from .recorder import TraceRecorder


@dataclass(frozen=True)
class AttributionRow:
    """One bucket's aggregate across a set of profiled packets."""

    bucket: str
    packets: int
    total_s: float
    share: float
    mean_s: float
    p50_s: float
    p99_s: float
    max_s: float


class AttributionTable:
    """Per-bucket attribution aggregated over one or more runs.

    Merging uses :meth:`~repro.sim.stats.Histogram.merge`, so a table
    over several runs (e.g. the RMT and ADCP sections of one workload)
    reports the same percentiles as one run over the union of packets.
    """

    def __init__(self, *profiles: RunProfile) -> None:
        if not profiles:
            raise SimulationError("attribution table needs at least one run")
        self.profiles = profiles
        self.histograms: dict[str, Histogram] = {
            bucket: Histogram.merged(
                f"attribution.{bucket}",
                (p.histograms[bucket] for p in profiles),
            )
            for bucket in BUCKETS
        }
        self.latency = Histogram.merged(
            "latency_e2e", (p.latency for p in profiles)
        )

    def rows(self) -> list[AttributionRow]:
        total = self.latency.total
        rows = []
        for bucket in BUCKETS:
            histogram = self.histograms[bucket]
            if histogram.count:
                rows.append(
                    AttributionRow(
                        bucket=bucket,
                        packets=histogram.count,
                        total_s=histogram.total,
                        share=histogram.total / total if total else 0.0,
                        mean_s=histogram.mean,
                        p50_s=histogram.percentile(50),
                        p99_s=histogram.percentile(99),
                        max_s=histogram.maximum,
                    )
                )
            else:
                rows.append(
                    AttributionRow(bucket, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
                )
        return rows

    def lines(self, title: str = "attribution") -> list[str]:
        if not self.latency.count:
            return [f"latency attribution — {title} (no profiled packets)"]
        out = [
            f"latency attribution — {title} "
            f"({self.latency.count} packets, "
            f"mean {self.latency.mean * 1e9:.1f} ns, "
            f"p99 {self.latency.percentile(99) * 1e9:.1f} ns)"
        ]
        out.append(
            f"  {'bucket':<16} {'pkts':>6} {'total ns':>10} {'share':>7} "
            f"{'mean ns':>9} {'p99 ns':>9}"
        )
        for row in self.rows():
            out.append(
                f"  {row.bucket:<16} {row.packets:>6} "
                f"{row.total_s * 1e9:>10.1f} {row.share:>6.1%} "
                f"{row.mean_s * 1e9:>9.2f} {row.p99_s * 1e9:>9.2f}"
            )
        return out

    def to_json(self) -> dict:
        return {
            "packets": self.latency.count,
            "mean_latency_ns": self.latency.mean * 1e9 if self.latency.count else 0.0,
            "rows": [
                {
                    "bucket": row.bucket,
                    "packets": row.packets,
                    "total_ns": row.total_s * 1e9,
                    "share": row.share,
                    "mean_ns": row.mean_s * 1e9,
                    "p50_ns": row.p50_s * 1e9,
                    "p99_ns": row.p99_s * 1e9,
                    "max_ns": row.max_s * 1e9,
                }
                for row in self.rows()
            ],
        }


@dataclass(frozen=True)
class LittlesLawCheck:
    """L = λW cross-check for one traffic manager.

    ``predicted_occupancy`` is λW from the trace (admission rate times
    mean admit→release residency); ``observed_occupancy`` is the time
    average of the TM's sampled occupancy gauge.  The two are computed
    from independent instrumentation paths (event spans vs periodic
    snapshots), so agreement validates both.
    """

    component: str
    arrival_rate_pps: float
    mean_residency_s: float
    predicted_occupancy: float
    observed_occupancy: float
    tolerance: float

    @property
    def ratio(self) -> float:
        if self.predicted_occupancy == 0.0:
            return 1.0 if self.observed_occupancy == 0.0 else math.inf
        return self.observed_occupancy / self.predicted_occupancy

    @property
    def consistent(self) -> bool:
        return 1.0 / self.tolerance <= self.ratio <= self.tolerance


@dataclass(frozen=True)
class CriticalComponent:
    """One entry of the top-k bottleneck ranking."""

    component: str
    attributed_s: float
    share: float
    queue_share: float
    utilization: float | None


@dataclass
class BottleneckReport:
    """Run-level bottleneck analysis for one profiled run."""

    label: str
    duration_s: float
    critical: list[CriticalComponent] = field(default_factory=list)
    littles: list[LittlesLawCheck] = field(default_factory=list)
    utilizations: dict[str, float] = field(default_factory=dict)
    queue_delay_share: float = 0.0

    def lines(self) -> list[str]:
        out = [f"bottleneck report — {self.label}"]
        out.append(
            f"  queue-delay share of total latency: "
            f"{self.queue_delay_share:.1%}"
        )
        out.append(f"  critical components (by attributed time):")
        for entry in self.critical:
            util = (
                f" util {entry.utilization:.1%}"
                if entry.utilization is not None
                else ""
            )
            out.append(
                f"    {entry.component:<24} {entry.attributed_s * 1e9:>10.1f} ns "
                f"({entry.share:>5.1%}, queueing {entry.queue_share:.1%})"
                f"{util}"
            )
        for check in self.littles:
            flag = "ok" if check.consistent else "MISMATCH"
            out.append(
                f"  little's law {check.component}: "
                f"λ={check.arrival_rate_pps / 1e6:.1f} Mpps "
                f"W={check.mean_residency_s * 1e9:.1f} ns -> "
                f"L={check.predicted_occupancy:.2f} "
                f"vs observed {check.observed_occupancy:.2f} "
                f"({flag})"
            )
        return out

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "duration_s": self.duration_s,
            "queue_delay_share": self.queue_delay_share,
            "critical": [
                {
                    "component": e.component,
                    "attributed_ns": e.attributed_s * 1e9,
                    "share": e.share,
                    "queue_share": e.queue_share,
                    "utilization": e.utilization,
                }
                for e in self.critical
            ],
            "littles_law": [
                {
                    "component": c.component,
                    "arrival_rate_pps": c.arrival_rate_pps,
                    "mean_residency_ns": c.mean_residency_s * 1e9,
                    "predicted_occupancy": c.predicted_occupancy,
                    "observed_occupancy": c.observed_occupancy,
                    "ratio": c.ratio,
                    "consistent": c.consistent,
                }
                for c in self.littles
            ],
        }


def _tm_residencies(recorder: TraceRecorder) -> dict[str, list[float]]:
    """Per-TM admit→release residencies, paired chronologically per packet.

    A packet cannot occupy one TM's buffer twice at the same instant, so
    sorting each packet's admits and releases and zipping them pairs the
    crossings correctly even for recirculating packets.
    """
    admits: dict[tuple[str, int], list[float]] = {}
    releases: dict[tuple[str, int], list[float]] = {}
    for event in recorder:
        if event.name == "tm.admit" and event.packet_id is not None:
            admits.setdefault((event.component, event.packet_id), []).append(
                event.time_s
            )
        elif event.name == "tm.release" and event.packet_id is not None:
            releases.setdefault((event.component, event.packet_id), []).append(
                event.time_s
            )
    residencies: dict[str, list[float]] = {}
    for (component, packet_id), times in admits.items():
        out_times = releases.get((component, packet_id), [])
        for admitted, released in zip(sorted(times), sorted(out_times)):
            residencies.setdefault(component, []).append(released - admitted)
    return residencies


def _observed_occupancy(metrics: MetricRegistry, component: str) -> float:
    """Time-averaged occupancy of one TM from its sampled gauge."""
    samples = [
        value for _, value in metrics.timeseries(f"{component}.occupancy")
    ]
    if not samples:
        return 0.0
    return math.fsum(samples) / len(samples)


def analyze_bottlenecks(
    profile: RunProfile,
    recorder: TraceRecorder,
    metrics: MetricRegistry | None = None,
    duration_s: float | None = None,
    top_k: int = 5,
    littles_tolerance: float = 2.0,
) -> BottleneckReport:
    """Build the bottleneck report for one profiled run.

    ``littles_tolerance`` bounds the accepted observed/predicted
    occupancy ratio; the observed side comes from periodic snapshots, so
    it carries sampling noise proportional to the snapshot interval.
    """
    if duration_s is None:
        duration_s = max(
            (p.end_s for p in profile.packets.values()), default=0.0
        )
    total = profile.total_latency_s

    # Per-component attributed time and queueing time.
    instance_buckets = profile.instance_bucket_totals_s()
    queue_total = math.fsum(
        profile.bucket_total_s(bucket) for bucket in QUEUE_BUCKETS
    )
    critical = []
    for component, buckets in instance_buckets.items():
        attributed = math.fsum(buckets.values())
        queueing = math.fsum(
            seconds
            for bucket, seconds in buckets.items()
            if bucket in QUEUE_BUCKETS
        )
        utilization = None
        if metrics is not None:
            name = f"{component}.utilization"
            if name in metrics.gauge_names:
                utilization = metrics.latest(name)
        critical.append(
            CriticalComponent(
                component=component,
                attributed_s=attributed,
                share=attributed / total if total else 0.0,
                queue_share=queueing / queue_total if queue_total else 0.0,
                utilization=utilization,
            )
        )
    critical.sort(key=lambda e: e.attributed_s, reverse=True)

    # Little's law per TM.
    littles = []
    if metrics is not None and duration_s > 0:
        for component, residencies in sorted(_tm_residencies(recorder).items()):
            if not residencies:
                continue
            rate = len(residencies) / duration_s
            mean_residency = math.fsum(residencies) / len(residencies)
            littles.append(
                LittlesLawCheck(
                    component=component,
                    arrival_rate_pps=rate,
                    mean_residency_s=mean_residency,
                    predicted_occupancy=rate * mean_residency,
                    observed_occupancy=_observed_occupancy(metrics, component),
                    tolerance=littles_tolerance,
                )
            )

    utilizations = {}
    if metrics is not None:
        for name in metrics.gauge_names:
            if name.endswith(".utilization"):
                utilizations[name[: -len(".utilization")]] = metrics.latest(name)

    return BottleneckReport(
        label=profile.label,
        duration_s=duration_s,
        critical=critical[:top_k],
        littles=littles,
        utilizations=utilizations,
        queue_delay_share=queue_total / total if total else 0.0,
    )


def monitor_littles_checks(
    recorder: TraceRecorder,
    monitor,
    duration_s: float,
    tolerance: float = 2.0,
) -> list[LittlesLawCheck]:
    """Little's-law validation of the resource monitor's TM series.

    Same L = λW cross-check as :func:`analyze_bottlenecks`, but with the
    observed side taken from the
    :class:`~repro.telemetry.monitor.ResourceMonitor`'s sampled
    ``<tm>.occupancy`` columns instead of the metric snapshots.  The two
    sides come from fully independent instrumentation (event spans vs
    clock-grid probes), so a mismatch here is how a mis-wired probe gets
    caught.
    """
    checks: list[LittlesLawCheck] = []
    if duration_s <= 0:
        return checks
    names = set(monitor.names)
    for component, residencies in sorted(_tm_residencies(recorder).items()):
        series = f"{component}.occupancy"
        if not residencies or series not in names:
            continue
        column = monitor.column(series)
        observed = math.fsum(column) / len(column) if column else 0.0
        rate = len(residencies) / duration_s
        mean_residency = math.fsum(residencies) / len(residencies)
        checks.append(
            LittlesLawCheck(
                component=component,
                arrival_rate_pps=rate,
                mean_residency_s=mean_residency,
                predicted_occupancy=rate * mean_residency,
                observed_occupancy=observed,
                tolerance=tolerance,
            )
        )
    return checks


def attribution_gap(
    slow: RunProfile, fast: RunProfile
) -> dict[str, float]:
    """Which buckets explain ``slow``'s mean-latency excess over ``fast``.

    Returns, per bucket, the fraction of the mean-latency gap that the
    bucket's per-packet mean difference accounts for.  Shares sum to 1
    (each run's bucket means sum to its mean latency by conservation);
    negative shares mark buckets where the slow run is actually cheaper.
    """
    gap = slow.mean_latency_s - fast.mean_latency_s
    if gap <= 0:
        raise SimulationError(
            f"run {slow.label!r} (mean {slow.mean_latency_s * 1e9:.1f} ns) "
            f"is not slower than {fast.label!r} "
            f"(mean {fast.mean_latency_s * 1e9:.1f} ns)"
        )
    return {
        bucket: (slow.bucket_mean_s(bucket) - fast.bucket_mean_s(bucket)) / gap
        for bucket in BUCKETS
    }
