"""Latency attribution: where every nanosecond of a packet's life went.

The paper's §3 arguments are latency arguments — RMT packets pay a
recirculation and multiplexing tax that the ADCP's central pipelines and
demuxed ports remove.  PR 1's telemetry can show *that* a run behaved a
certain way; this module decomposes *where each nanosecond went*.

The profiler consumes a :class:`~repro.telemetry.recorder.TraceRecorder`
after a run and reconstructs, for every packet that reached a terminal
state (delivered or consumed), an exact tiling of its lifetime
``[origin, end]`` by **segments**:

==================== ==============================================
bucket               meaning
==================== ==============================================
``ingress_queue``    FIFO wait in front of an ingress-region pipeline
``parse``            parser phase of each pipeline pass
``match_action``     stage-ladder phase of each pipeline pass
``tm_service``       fixed traffic-manager traversal latency
``tm_queue``         wait in a TM buffer until the downstream
                     pipeline starts service
``merge_wait``       buffering in TM1's ordered k-way merge front-end
``recirculation``    a full RMT loopback detour (TM + egress pass +
                     loopback serialization), opaque
``egress_serial``    TX-port queueing plus wire serialization
==================== ==============================================

**Exactness.**  Every segment boundary is a float the simulator itself
computed and passed downstream (the instrumented spans carry ``ready_s``
/ ``exit_s`` / ``deliver_s`` / ``departure_s`` verbatim), so consecutive
segments share bit-identical boundaries.  The profiler *verifies* the
tiling — any gap or overlap raises — and accounts durations in exact
rational arithmetic (:class:`fractions.Fraction` represents every float
exactly), so per-component attribution sums to the end-to-end latency
with **zero** residual, not residual-up-to-rounding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable

from ..errors import SimulationError
from ..sim.stats import Histogram
from .recorder import TraceRecorder

#: Attribution buckets, in pipeline order (presentation order for tables).
BUCKETS = (
    "ingress_queue",
    "parse",
    "match_action",
    "tm_service",
    "tm_queue",
    "merge_wait",
    "recirculation",
    "egress_serial",
)

#: Buckets that are pure waiting (the queue-delay share of a run).
QUEUE_BUCKETS = frozenset({"ingress_queue", "tm_queue", "merge_wait"})


@dataclass(frozen=True)
class Segment:
    """One tile of a packet's lifetime: ``[start_s, end_s]`` spent in
    ``bucket`` at concrete component ``component``."""

    packet_id: int
    start_s: float
    end_s: float
    bucket: str
    component: str

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def exact_duration(self) -> Fraction:
        """Duration in exact rational arithmetic."""
        return Fraction(self.end_s) - Fraction(self.start_s)


@dataclass
class PacketProfile:
    """One packet's fully attributed lifetime.

    ``components`` maps bucket name to attributed seconds; ``instances``
    maps concrete component paths (``"rmt.tm"``, ``"adcp.central2"``) to
    per-bucket seconds.  ``unattributed_s`` is the exact residual between
    the end-to-end latency and the attribution sum — 0.0 whenever the
    segment tiling verified, by construction.
    """

    packet_id: int
    terminal: str  # "delivered" | "consumed"
    origin_s: float
    end_s: float
    segments: list[Segment]
    components: dict[str, float] = field(default_factory=dict)
    instances: dict[str, dict[str, float]] = field(default_factory=dict)
    recirculations: int = 0
    unattributed_s: float = 0.0

    @property
    def latency_s(self) -> float:
        return self.end_s - self.origin_s


class _PacketEvents:
    """The per-packet event shoebox the extractor fills."""

    __slots__ = (
        "pipeline",
        "tm_admits",
        "merge_offers",
        "merge_releases",
        "recircs",
        "tx",
        "delivered",
        "consumed",
        "parent",
    )

    def __init__(self) -> None:
        self.pipeline: list = []
        self.tm_admits: list = []
        self.merge_offers: list[float] = []
        self.merge_releases: list[float] = []
        self.recircs: list = []
        self.tx: list = []
        self.delivered = None
        self.consumed = None
        self.parent: int | None = None


def _collect(events: Iterable) -> dict[int, _PacketEvents]:
    """Sort the flat event stream into per-packet shoeboxes."""
    boxes: dict[int, _PacketEvents] = {}

    def box(packet_id: int) -> _PacketEvents:
        if packet_id not in boxes:
            boxes[packet_id] = _PacketEvents()
        return boxes[packet_id]

    for event in events:
        if event.packet_id is None:
            continue
        name = event.name
        if name == "pipeline.service":
            box(event.packet_id).pipeline.append(event)
        elif name == "tm.admit":
            box(event.packet_id).tm_admits.append(event)
        elif name == "merge.offer":
            box(event.packet_id).merge_offers.append(event.time_s)
        elif name == "merge.release":
            box(event.packet_id).merge_releases.append(event.time_s)
        elif name == "packet.recirculated":
            box(event.packet_id).recircs.append(event)
        elif name == "port.tx":
            box(event.packet_id).tx.append(event)
        elif name == "packet.delivered":
            box(event.packet_id).delivered = event
        elif name == "packet.consumed":
            box(event.packet_id).consumed = event
        elif name == "packet.replicated":
            box(event.packet_id).parent = event.args.get("parent_id")
    return boxes


def _require(event, key: str):
    try:
        return event.args[key]
    except KeyError:
        raise SimulationError(
            f"trace event {event.name!r} (seq {event.seq}) lacks the "
            f"{key!r} span boundary; the profiler needs traces recorded "
            f"by this version of the simulators"
        ) from None


def _segments_of(packet_id: int, box: _PacketEvents) -> list[Segment]:
    """Raw segments for one packet, before detour filtering."""
    segments: list[Segment] = []

    # Recirculation detours first: each is one opaque tile, and every
    # other segment the simulator emitted inside it (TM crossing, egress
    # pass, loopback serialization) is subsumed by it.
    detours: list[tuple[float, float]] = []
    for event in box.recircs:
        re_arrival = _require(event, "re_arrival_s")
        pipeline = event.args.get("pipeline", "")
        detours.append((event.time_s, re_arrival))
        segments.append(
            Segment(
                packet_id,
                event.time_s,
                re_arrival,
                "recirculation",
                f"{event.component}.recirc{pipeline}",
            )
        )

    def in_detour(start: float, end: float) -> bool:
        return any(start >= lo and end <= hi for lo, hi in detours)

    for event in box.pipeline:
        ready = _require(event, "ready_s")
        start = event.time_s
        exit_s = _require(event, "exit_s")
        if in_detour(ready, exit_s):
            continue
        parse_end = start + _require(event, "parse_s")
        queue_bucket = (
            "ingress_queue" if event.args.get("region") == "ingress"
            else "tm_queue"
        )
        segments.append(
            Segment(packet_id, ready, start, queue_bucket, event.component)
        )
        segments.append(
            Segment(packet_id, start, parse_end, "parse", event.component)
        )
        segments.append(
            Segment(packet_id, parse_end, exit_s, "match_action", event.component)
        )

    for event in box.tm_admits:
        deliver = _require(event, "deliver_s")
        if in_detour(event.time_s, deliver):
            continue
        segments.append(
            Segment(packet_id, event.time_s, deliver, "tm_service", event.component)
        )

    for event in box.tx:
        ready = _require(event, "ready_s")
        departure = _require(event, "departure_s")
        if in_detour(ready, departure):
            continue
        segments.append(
            Segment(packet_id, ready, departure, "egress_serial", event.component)
        )

    # Merge waits pair chronologically (a packet is offered at most once
    # per pass, and passes do not overlap).
    if len(box.merge_offers) != len(box.merge_releases):
        raise SimulationError(
            f"packet {packet_id}: {len(box.merge_offers)} merge offers vs "
            f"{len(box.merge_releases)} releases; merge trace is incomplete"
        )
    for offered, released in zip(
        sorted(box.merge_offers), sorted(box.merge_releases)
    ):
        segments.append(
            Segment(packet_id, offered, released, "merge_wait", "merge")
        )

    return segments


def _tile(packet_id: int, segments: list[Segment]) -> list[Segment]:
    """Sort segments and verify they tile an interval exactly."""
    ordered = sorted(segments, key=lambda s: (s.start_s, s.end_s))
    for previous, current in zip(ordered, ordered[1:]):
        if current.start_s != previous.end_s:
            kind = "gap" if current.start_s > previous.end_s else "overlap"
            raise SimulationError(
                f"packet {packet_id}: {kind} between "
                f"{previous.bucket}@{previous.component} ending at "
                f"{previous.end_s!r} and {current.bucket}@{current.component} "
                f"starting at {current.start_s!r}; attribution would not be "
                f"exact"
            )
    return ordered


def _retag_tm_queues(ordered: list[Segment]) -> list[Segment]:
    """Attribute TM-buffer waits to the TM the packet sat in.

    A ``tm_queue`` segment is emitted by the *downstream* pipeline (it is
    that pipeline's FIFO wait), but the packet physically occupies the
    upstream TM's shared buffer for its duration.  The tiling makes the
    upstream identifiable: the segment immediately before a TM-buffer
    wait is that TM's service span.
    """
    out: list[Segment] = []
    for index, segment in enumerate(ordered):
        if segment.bucket == "tm_queue" and index > 0:
            previous = out[index - 1]
            if previous.bucket == "tm_service":
                segment = Segment(
                    segment.packet_id,
                    segment.start_s,
                    segment.end_s,
                    segment.bucket,
                    previous.component,
                )
        out.append(segment)
    return out


#: Replication-lineage depth bound (a copy of a copy of ...).
_MAX_LINEAGE = 32


def _lineage_segments(
    packet_id: int, boxes: dict[int, _PacketEvents], depth: int = 0
) -> list[Segment]:
    """Segments for a packet, prepending its replication ancestry.

    A multicast copy's trace starts at its ``tm.admit``, but the packet's
    journey started when its replication parent entered the switch; the
    parent's own tiling ends exactly at the replication instant, so
    prepending it extends the copy's lifetime seamlessly.
    """
    if depth > _MAX_LINEAGE:
        raise SimulationError(
            f"packet {packet_id}: replication lineage deeper than "
            f"{_MAX_LINEAGE}; the trace parent links likely form a cycle"
        )
    box = boxes.get(packet_id)
    if box is None:
        # A parent with no traced events of its own: an emission that was
        # replicated the instant it was born.  The lineage starts here.
        return []
    segments = _segments_of(packet_id, box)
    if box.parent is not None:
        segments = _lineage_segments(box.parent, boxes, depth + 1) + segments
    return segments


def _profile_packet(
    packet_id: int, box: _PacketEvents, boxes: dict[int, _PacketEvents]
) -> PacketProfile | None:
    """Build one packet's profile, or None for non-terminal packets."""
    if box.delivered is not None:
        terminal = "delivered"
        end_s = _require(box.delivered, "departure_s")
    elif box.consumed is not None:
        terminal = "consumed"
        end_s = box.consumed.time_s
    else:
        return None

    segments = _lineage_segments(packet_id, boxes)
    if not segments:
        # A consumed packet with no spans (e.g. a merge-absorbed flush
        # marker): its whole observable life is the terminal instant.
        segments = [Segment(packet_id, end_s, end_s, "match_action", "")]
    ordered = _retag_tm_queues(_tile(packet_id, segments))

    origin_s = ordered[0].start_s
    if ordered[-1].end_s != end_s:
        raise SimulationError(
            f"packet {packet_id}: last segment ends at "
            f"{ordered[-1].end_s!r} but the packet reached its terminal "
            f"state at {end_s!r}"
        )

    exact: dict[str, Fraction] = {}
    instances: dict[str, dict[str, Fraction]] = {}
    for segment in ordered:
        duration = segment.exact_duration()
        exact[segment.bucket] = exact.get(segment.bucket, Fraction(0)) + duration
        per = instances.setdefault(segment.component, {})
        per[segment.bucket] = per.get(segment.bucket, Fraction(0)) + duration

    residual = Fraction(end_s) - Fraction(origin_s) - sum(exact.values())
    return PacketProfile(
        packet_id=packet_id,
        terminal=terminal,
        origin_s=origin_s,
        end_s=end_s,
        segments=ordered,
        components={bucket: float(value) for bucket, value in exact.items()},
        instances={
            path: {bucket: float(v) for bucket, v in per.items()}
            for path, per in instances.items()
        },
        recirculations=sum(
            1 for s in ordered if s.bucket == "recirculation"
        ),
        unattributed_s=float(residual),
    )


class RunProfile:
    """Aggregated latency attribution for one traced run.

    Attributes:
        label: Human name of the run (``"rmt"``, ``"adcp-mergejoin"``).
        packets: Per-packet profiles keyed by packet id.
        histograms: Per-bucket :class:`Histogram` of per-packet attributed
            seconds (a packet contributes to a bucket's histogram only
            when it spent time there).
        latency: Histogram of end-to-end latency across all profiled
            packets; its count equals delivered + consumed.
    """

    def __init__(self, label: str = "run") -> None:
        self.label = label
        self.packets: dict[int, PacketProfile] = {}
        self.histograms: dict[str, Histogram] = {
            bucket: Histogram(f"{label}.attribution.{bucket}")
            for bucket in BUCKETS
        }
        self.latency = Histogram(f"{label}.latency_e2e")

    # --- construction -------------------------------------------------------------

    def add(self, profile: PacketProfile) -> None:
        self.packets[profile.packet_id] = profile
        self.latency.observe(profile.latency_s)
        for bucket, seconds in profile.components.items():
            self.histograms[bucket].observe(seconds)

    # --- inspection ---------------------------------------------------------------

    @property
    def profiled(self) -> int:
        return len(self.packets)

    def count(self, terminal: str) -> int:
        return sum(1 for p in self.packets.values() if p.terminal == terminal)

    def bucket_total_s(self, bucket: str) -> float:
        return self.histograms[bucket].total

    @property
    def total_latency_s(self) -> float:
        return self.latency.total

    @property
    def mean_latency_s(self) -> float:
        return self.latency.mean

    def bucket_mean_s(self, bucket: str) -> float:
        """Mean attributed seconds per *profiled packet* (zeros included),
        so bucket means sum to the mean end-to-end latency."""
        if not self.packets:
            raise SimulationError(f"profile {self.label!r} has no packets")
        return self.bucket_total_s(bucket) / self.profiled

    def instance_totals_s(self) -> dict[str, float]:
        """Attributed seconds per concrete component, across all buckets."""
        totals: dict[str, float] = {}
        for profile in self.packets.values():
            for path, per in profile.instances.items():
                totals[path] = totals.get(path, 0.0) + math.fsum(per.values())
        return totals

    def instance_bucket_totals_s(self) -> dict[str, dict[str, float]]:
        """Attributed seconds per (component, bucket)."""
        totals: dict[str, dict[str, float]] = {}
        for profile in self.packets.values():
            for path, per in profile.instances.items():
                slot = totals.setdefault(path, {})
                for bucket, seconds in per.items():
                    slot[bucket] = slot.get(bucket, 0.0) + seconds
        return totals

    def to_json(self) -> dict:
        """Machine-readable digest (no per-packet detail)."""
        total = self.total_latency_s
        return {
            "label": self.label,
            "profiled_packets": self.profiled,
            "delivered": self.count("delivered"),
            "consumed": self.count("consumed"),
            "mean_latency_ns": self.mean_latency_s * 1e9 if self.packets else 0.0,
            "p99_latency_ns": (
                self.latency.percentile(99) * 1e9 if self.packets else 0.0
            ),
            "buckets": {
                bucket: {
                    "packets": self.histograms[bucket].count,
                    "total_ns": self.bucket_total_s(bucket) * 1e9,
                    "share": (
                        self.bucket_total_s(bucket) / total if total else 0.0
                    ),
                }
                for bucket in BUCKETS
            },
        }


def profile_run(
    recorder: TraceRecorder, label: str = "run"
) -> RunProfile:
    """Attribute every terminal packet's latency from a recorded trace.

    The recorder must retain the complete event stream (no ring
    overwrites) and must have been produced by the instrumented
    simulators with span boundaries enabled (any telemetry-on run).
    """
    if recorder.overwritten:
        raise SimulationError(
            f"trace ring overwrote {recorder.overwritten} events; "
            f"attribution needs the complete stream — raise the recorder "
            f"capacity (the CLI uses 2**20)"
        )
    run = RunProfile(label)
    boxes = _collect(recorder)
    for packet_id, box in sorted(boxes.items()):
        profile = _profile_packet(packet_id, box, boxes)
        if profile is not None:
            run.add(profile)
    return run


def profile_chrome_events(run: RunProfile, pid: str | None = None) -> list[dict]:
    """Attribution segments as Chrome trace-event ``X`` slices.

    One lane per bucket (``tid``), so the Perfetto timeline shows where
    simultaneous packets sat.  Combine with the raw telemetry events via
    :func:`~repro.telemetry.exporters.chrome_trace_events`.
    """
    out: list[dict] = []
    process = pid or f"{run.label}-attribution"
    for profile in run.packets.values():
        for segment in profile.segments:
            out.append(
                {
                    "name": segment.bucket,
                    "cat": "attribution",
                    "ph": "X",
                    "pid": process,
                    "tid": segment.bucket,
                    "ts": segment.start_s * 1e6,
                    "dur": segment.duration_s * 1e6,
                    "args": {
                        "packet_id": segment.packet_id,
                        "component": segment.component,
                    },
                }
            )
    return out
