"""Telemetry levels and deterministic head-based packet sampling.

PR 7's kernel speedups (``_run_fast`` dispatch, batched same-timestamp
admission, lazy PHVs) are all gated on ``switch.trace is None`` — the
fully-instrumented trace path is the *only* thing that forfeits them.
:class:`TelemetryLevel` names the useful points in between so callers can
ask for exactly the observability they need:

``off``
    Nothing but the terminal counters every run keeps.  Fast path live.
``counters``
    ``off`` plus the clock-driven :class:`~repro.telemetry.monitor.
    ResourceMonitor` (deadline-aware probe, so dispatch stays on
    ``_run_fast_probed``).  Fast path live.
``sampled``
    ``counters`` plus head-based span sampling: a deterministic 1-in-N
    subset of injected packets carries a span id in ``PacketMetadata``
    and emits per-hop :class:`~repro.telemetry.spans.SpanRecord`\\ s.
    The per-packet check is one ``is None`` test plus, on the sampled
    subset only, a handful of appends — ``switch.trace`` stays ``None``,
    so batching and fast dispatch survive.  Fast path live.
``full``
    The PR 1 instrumented path: every event traced through the ring
    buffer.  Fast path forfeited (reference semantics).

The sampling decision is *head-based* and content-free: it is made once,
at injection, from the packet id alone — ``stable_hash64("span/<seed>/
<relative packet id>") % N == 0`` — so the same seed always samples the
same packets, on every switch target and queue backend, and every hop a
sampled packet (or an ``OP_RESULT`` emission it triggers) traverses is
captured or none are.  Ids are taken *relative to the first packet the
sampler sees* so the decision depends only on a packet's position in the
run's injection stream, not on how many packets earlier runs in the same
process happened to allocate.
"""

from __future__ import annotations

import enum

from ..errors import ConfigError
from ..sim.rng import stable_hash64


class TelemetryLevel(enum.Enum):
    """The observability ladder; see the module docstring for semantics."""

    OFF = "off"
    COUNTERS = "counters"
    SAMPLED = "sampled"
    FULL = "full"

    @classmethod
    def parse(cls, value: "TelemetryLevel | str") -> "TelemetryLevel":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            choices = ", ".join(level.value for level in cls)
            raise ConfigError(
                f"unknown telemetry level {value!r} (choices: {choices})"
            )

    @property
    def preserves_fast_path(self) -> bool:
        """Whether this level keeps ``trace is None`` — and with it
        ``_run_fast``/``_run_fast_probed`` dispatch and batched
        admission — live."""
        return self is not TelemetryLevel.FULL

    @property
    def wants_monitor(self) -> bool:
        return self in (TelemetryLevel.COUNTERS, TelemetryLevel.SAMPLED)

    @property
    def wants_spans(self) -> bool:
        return self is TelemetryLevel.SAMPLED

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.value


class SpanSampler:
    """Deterministic 1-in-``sample`` head-based packet sampler.

    ``admits(packet_id)`` is called exactly once per *injected* packet
    (never for handoffs between fabric switches, never for emissions —
    those inherit the parent's span id through ``PacketMetadata.span``).
    The first id offered becomes the base; all decisions hash the
    run-relative id so repeated runs in one process — where the global
    packet-id counter keeps advancing — sample identical positions.
    """

    __slots__ = ("seed", "sample", "_base", "offered", "admitted")

    def __init__(self, seed: int, sample: int) -> None:
        if sample < 1:
            raise ConfigError(f"sample must be >= 1, got {sample}")
        self.seed = seed
        self.sample = sample
        self._base: int | None = None
        self.offered = 0
        self.admitted = 0

    def admits(self, packet_id: int) -> bool:
        base = self._base
        if base is None:
            base = self._base = packet_id
        self.offered += 1
        if self.sample > 1:
            key = f"span/{self.seed}/{packet_id - base}"
            if stable_hash64(key) % self.sample != 0:
                return False
        self.admitted += 1
        return True

    def span_id(self, packet_id: int) -> int:
        """The run-relative id an admitted packet carries as its span id."""
        return packet_id - (self._base if self._base is not None else packet_id)

    @property
    def coverage(self) -> float:
        """Fraction of offered packets sampled (0.0 when none offered)."""
        return self.admitted / self.offered if self.offered else 0.0
