"""Metric snapshots: time-series over the stats registry plus derived gauges.

The simulators already accumulate terminal counters in
:class:`~repro.sim.stats.StatsRegistry`; what they lack is *when* those
counters moved.  :class:`MetricRegistry` layers three things on top:

- **hierarchical queries** over the dotted counter namespace
  (``adcp.tm1.*``), including prefix roll-ups;
- **derived gauges** — named callables evaluated at sample time (per-stage
  utilization, TM occupancy, merge depth) that have no counter of their own;
- **periodic snapshots** — a time-series of ``(time, values)`` captured
  while a run executes, driven by the event kernel's time-advance probe so
  sampling never perturbs the event schedule or the run's duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..errors import ConfigError
from ..sim.stats import StatsRegistry

GaugeFn = Callable[[float], float]
"""A derived metric: ``fn(now_s) -> value`` evaluated at sample time."""


@dataclass(frozen=True)
class MetricSnapshot:
    """All metric values observed at one instant of simulated time."""

    time_s: float
    values: dict[str, float] = field(default_factory=dict)

    def value(self, name: str) -> float:
        return self.values.get(name, 0.0)

    def matching(self, prefix: str) -> dict[str, float]:
        """Values whose dotted names start with ``prefix``."""
        return {k: v for k, v in self.values.items() if k.startswith(prefix)}


class MetricRegistry:
    """Named gauges plus snapshot capture over a stats registry.

    The stats registry is bound late (:meth:`bind_stats`) because switches
    create their own registry at construction; a :class:`Telemetry` hub is
    typically built first and handed to the switch.
    """

    def __init__(self, stats: StatsRegistry | None = None) -> None:
        self._stats = stats
        self._gauges: dict[str, GaugeFn] = {}
        self.series: list[MetricSnapshot] = []

    # --- wiring -----------------------------------------------------------------

    def bind_stats(self, stats: StatsRegistry) -> None:
        """Attach the counter registry snapshots will read."""
        self._stats = stats

    def gauge(self, name: str, fn: GaugeFn) -> None:
        """Register a derived gauge at dotted ``name``.

        Re-registering a name replaces the gauge (switch re-binds do this).
        """
        if not name:
            raise ConfigError("gauge name must be non-empty")
        self._gauges[name] = fn

    @property
    def gauge_names(self) -> list[str]:
        return sorted(self._gauges)

    # --- sampling ---------------------------------------------------------------

    def sample(self, now_s: float) -> MetricSnapshot:
        """Capture one snapshot: every counter plus every gauge."""
        values: dict[str, float] = {}
        if self._stats is not None:
            values.update(self._stats.snapshot())
        for name in sorted(self._gauges):
            values[name] = float(self._gauges[name](now_s))
        snapshot = MetricSnapshot(now_s, values)
        self.series.append(snapshot)
        return snapshot

    # --- queries -----------------------------------------------------------------

    def timeseries(self, name: str) -> list[tuple[float, float]]:
        """``(time, value)`` pairs of one metric across the snapshots."""
        return [(s.time_s, s.value(name)) for s in self.series]

    def names(self, prefix: str = "") -> list[str]:
        """Every metric name seen in any snapshot, under ``prefix``."""
        seen: set[str] = set()
        for snapshot in self.series:
            seen.update(k for k in snapshot.values if k.startswith(prefix))
        if self._stats is not None:
            seen.update(
                k for k in self._stats.snapshot() if k.startswith(prefix)
            )
        seen.update(k for k in self._gauges if k.startswith(prefix))
        return sorted(seen)

    def latest(self, name: str) -> float:
        """Most recent sampled value of ``name`` (0 when never sampled)."""
        for snapshot in reversed(self.series):
            if name in snapshot.values:
                return snapshot.values[name]
        return 0.0

    def rollup(self, prefix: str, now_s: float | None = None) -> float:
        """Sum of current counter values under a dotted prefix.

        Reads the live stats registry (not the snapshots), plus any gauges
        under the prefix when ``now_s`` is given.
        """
        total = 0.0
        if self._stats is not None:
            for name, value in self._stats.snapshot().items():
                if name.startswith(prefix):
                    total += value
        if now_s is not None:
            for name, fn in self._gauges.items():
                if name.startswith(prefix):
                    total += float(fn(now_s))
        return total

    def __iter__(self) -> Iterator[MetricSnapshot]:
        return iter(self.series)

    def __len__(self) -> int:
        return len(self.series)


class PeriodicSampler:
    """Samples a :class:`MetricRegistry` every ``interval_s`` of sim time.

    Installed as a :attr:`repro.sim.event.Simulator.time_probe`: the kernel
    calls it whenever simulated time is about to advance, and the sampler
    captures one snapshot per crossed interval boundary (stamped at the
    boundary, so the series is a regular grid regardless of event spacing).
    Because it never schedules events, enabling sampling cannot change a
    run's event order or final duration.
    """

    def __init__(self, metrics: MetricRegistry, interval_s: float) -> None:
        if interval_s <= 0:
            raise ConfigError(
                f"sampling interval must be positive, got {interval_s}"
            )
        self.metrics = metrics
        self.interval_s = interval_s
        self._next_s = interval_s

    def __call__(self, new_time_s: float) -> None:
        while self._next_s <= new_time_s:
            self.metrics.sample(self._next_s)
            self._next_s += self.interval_s

    def next_deadline_s(self) -> float:
        """Next grid boundary (kernel probe-deadline contract)."""
        return self._next_s
