"""The resource monitor: deterministic time-series over switch resources.

Trace events (PR 1) record *that* something happened and the profiler
(PR 3) says *where a packet's nanoseconds went*; neither shows how
resource pressure — TM occupancy, bank access counts, queue backlogs,
port utilization, recirculation-loop depth — *evolves* during a run.
:class:`ResourceMonitor` fills that gap: it polls registered probes every
N simulated nanoseconds into compact columnar series.

Design constraints, in order:

- **Deterministic.**  Sampling is driven by the simulation clock (the
  kernel's time-advance probe), never wall time.  Samples land on a fixed
  grid regardless of event spacing, so two runs of the same seeded
  workload produce byte-identical CSVs.
- **Zero overhead when absent.**  Attachment goes through
  :meth:`~repro.sim.event.Simulator.add_time_probe`; a switch without a
  monitor keeps the kernel's single ``time_probe is None`` check and no
  other branch anywhere.
- **Non-perturbing when present.**  Probes only read component state;
  they never schedule events, so monitoring cannot change event order or
  the run's final duration.

Probe *definitions* live with the components they observe
(``monitor_probes()`` on pipelines, traffic managers, ports, and the
switches themselves); :meth:`ResourceMonitor.attach` walks the component
tree and collects them.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import fsum
from pathlib import Path
from typing import Callable, Iterable

from ..errors import ConfigError

ProbeFn = Callable[[float], float]
"""A probe: ``fn(now_s) -> value`` evaluated at each sample instant."""

#: Default sampling spacing (simulated nanoseconds).  Matches the CLI
#: metric-snapshot interval: fine enough to catch TM occupancy between
#: packet admit and release on the reference workloads, coarse enough
#: that sampling stays a rounding error next to event dispatch.
DEFAULT_INTERVAL_NS = 50.0

_NS_PER_S = 1e9


def _percentile(sorted_values: list[float], p: float) -> float:
    """Linear-interpolated percentile over pre-sorted values.

    Same contract as :meth:`repro.sim.stats.Histogram.percentile` so
    series summaries and attribution tables quote comparable numbers.
    """
    if not sorted_values:
        raise ConfigError("percentile of an empty series")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] + fraction * (
        sorted_values[high] - sorted_values[low]
    )


@dataclass(frozen=True)
class SeriesSummary:
    """Self-contained digest of one monitored series.

    This is what the run ledger embeds (the full columns go to CSV), and
    what ``repro diff`` compares between two runs.
    """

    name: str
    samples: int
    mean: float
    peak: float
    p99: float
    last: float

    def to_json(self) -> dict:
        return {
            "samples": self.samples,
            "mean": self.mean,
            "peak": self.peak,
            "p99": self.p99,
            "last": self.last,
        }


class ResourceMonitor:
    """Samples registered probes on a fixed simulated-time grid.

    Usage, via the telemetry hub (the normal path)::

        monitor = ResourceMonitor(interval_ns=50)
        telemetry = Telemetry(monitor=monitor)
        switch = RMTSwitch(config, app, telemetry=telemetry)
        switch.run(workload)
        monitor.series("rmt.tm.occupancy")     # [(t, v), ...]
        monitor.write_csv("monitor.csv")

    or standalone on an already-built switch::

        monitor = ResourceMonitor()
        monitor.attach(switch)                  # before switch.run(...)

    Storage is columnar: one shared time axis plus one float column per
    series, all the same length.  The probe set freezes at the first
    sample so columns can never misalign.
    """

    def __init__(self, interval_ns: float = DEFAULT_INTERVAL_NS) -> None:
        if interval_ns <= 0:
            raise ConfigError(
                f"monitor interval must be positive, got {interval_ns}"
            )
        self.interval_ns = float(interval_ns)
        self.interval_s = interval_ns / _NS_PER_S
        self.times_s: list[float] = []
        self._probes: dict[str, ProbeFn] = {}
        self._columns: dict[str, list[float]] = {}
        self._names: list[str] = []
        self._frozen = False
        self._next_s = self.interval_s
        self._attached = None

    # --- registration -----------------------------------------------------------

    def probe(self, name: str, fn: ProbeFn) -> None:
        """Register a probe at dotted ``name``.

        Probes must all be registered before the first sample — a column
        born mid-run would misalign the time axis — and names must be
        unique.
        """
        if not name:
            raise ConfigError("probe name must be non-empty")
        if self._frozen:
            raise ConfigError(
                f"cannot register probe {name!r}: the monitor already "
                f"took samples; register every probe before the run"
            )
        if name in self._probes:
            raise ConfigError(f"duplicate probe name {name!r}")
        self._probes[name] = fn

    def attach(self, switch) -> None:
        """Wire this monitor into ``switch`` (one switch per monitor).

        Walks the component tree collecting every ``monitor_probes()``
        contribution (switch, pipelines, traffic managers — the switch
        itself contributes its ports and loop series), then installs the
        monitor on the simulator clock.  Call before ``switch.run``.
        """
        if self._attached is not None and self._attached is not switch:
            raise ConfigError(
                "a ResourceMonitor serves one switch; build one per switch"
            )
        if self._attached is switch:
            return
        self._attached = switch
        for component in switch.walk():
            contribute = getattr(component, "monitor_probes", None)
            if contribute is not None:
                for name, fn in contribute().items():
                    self.probe(name, fn)
        switch._sim.add_time_probe(self)

    @property
    def attached(self):
        """The switch this monitor observes, if any."""
        return self._attached

    def _freeze(self) -> None:
        self._names = sorted(self._probes)
        self._columns = {name: [] for name in self._names}
        self._frozen = True

    # --- sampling ---------------------------------------------------------------

    def __call__(self, new_time_s: float) -> None:
        """Clock hook: one sample per grid boundary crossed."""
        while self._next_s <= new_time_s:
            self.sample(self._next_s)
            self._next_s += self.interval_s

    def next_deadline_s(self) -> float:
        """Next grid boundary — the kernel's probe-deadline contract.

        Clock advances strictly below this are no-ops, and any call at
        or past it moves the grid beyond the probed time, so the
        dispatcher may run uninstrumented in between (docs/KERNEL.md).
        """
        return self._next_s

    def sample(self, time_s: float) -> None:
        """Capture one row: every probe evaluated at ``time_s``."""
        if not self._frozen:
            self._freeze()
        self.times_s.append(time_s)
        columns = self._columns
        for name in self._names:
            columns[name].append(float(self._probes[name](time_s)))

    def finish(self, now_s: float) -> None:
        """Take the end-of-run sample (called by the telemetry hub).

        Guarantees at least one row even for runs shorter than the
        interval, and pins each cumulative series' final value.
        """
        if not self.times_s or self.times_s[-1] < now_s:
            self.sample(now_s)

    # --- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def names(self) -> list[str]:
        """Series names, sorted (frozen order once sampling started)."""
        return list(self._names) if self._frozen else sorted(self._probes)

    def column(self, name: str) -> list[float]:
        """The raw value column of one series."""
        if name not in self._columns:
            raise ConfigError(f"no monitored series {name!r}")
        return self._columns[name]

    def series(self, name: str) -> list[tuple[float, float]]:
        """``(time_s, value)`` pairs of one series."""
        return list(zip(self.times_s, self.column(name)))

    def summaries(self) -> dict[str, SeriesSummary]:
        """Per-series digests (peak/mean/p99/last) for the run ledger."""
        out: dict[str, SeriesSummary] = {}
        for name in self._names:
            column = self._columns[name]
            if not column:
                continue
            ordered = sorted(column)
            out[name] = SeriesSummary(
                name=name,
                samples=len(column),
                mean=fsum(column) / len(column),
                peak=ordered[-1],
                p99=_percentile(ordered, 99.0),
                last=column[-1],
            )
        return out

    # --- export -----------------------------------------------------------------

    def csv_lines(self) -> list[str]:
        """The columnar store as CSV rows: ``time_ns`` plus one column
        per series.  Float formatting is fixed (``repr``-stable ``%.10g``)
        so identical runs serialize byte-identically."""
        header = ",".join(["time_ns"] + self._names)
        lines = [header]
        for row, time_s in enumerate(self.times_s):
            cells = [format(time_s * _NS_PER_S, ".10g")]
            cells.extend(
                format(self._columns[name][row], ".10g")
                for name in self._names
            )
            lines.append(",".join(cells))
        return lines

    def write_csv(self, path: str | Path) -> Path:
        """Write the time-series as CSV; returns the path written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.csv_lines()) + "\n")
        return target

    def chrome_counter_events(self, pid: str | None = None) -> list[dict]:
        """The series as Chrome trace-event counter (``"ph": "C"``)
        tracks, mergeable into the PR 1 timeline export."""
        out: list[dict] = []
        for row, time_s in enumerate(self.times_s):
            for name in self._names:
                root, _, _ = name.partition(".")
                out.append(
                    {
                        "name": name,
                        "cat": "monitor",
                        "ph": "C",
                        "pid": pid or root,
                        "ts": time_s * 1e6,
                        "args": {"value": self._columns[name][row]},
                    }
                )
        return out


def merged_chrome_events(
    monitors: Iterable[tuple[str, "ResourceMonitor"]],
) -> list[dict]:
    """Counter events of several labelled monitors in one timeline."""
    events: list[dict] = []
    for label, monitor in monitors:
        events.extend(monitor.chrome_counter_events(pid=label))
    return events
