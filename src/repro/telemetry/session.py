"""The :class:`Telemetry` hub: one object that wires observability into a switch.

Usage::

    from repro import ADCPConfig, ADCPSwitch, Telemetry

    telemetry = Telemetry(snapshot_interval_s=5e-8)
    switch = ADCPSwitch(ADCPConfig(num_ports=8), app, telemetry=telemetry)
    result = switch.run(app.workload(...))

    telemetry.trace.count(name="packet.delivered")   # == len(result.delivered)
    telemetry.metrics.timeseries("adcp.tm1.occupancy")
    write_chrome_trace("trace.json", to_chrome_trace(telemetry.trace,
                                                     telemetry.metrics))

A hub serves **one** switch: binding it registers derived gauges over that
switch's components and installs the snapshot sampler on that switch's
event kernel.  Build one hub per switch when tracing several.

Disabling the recorder (``telemetry.trace.disable()``) *before* building
the switch skips trace wiring entirely — the switch runs on the same
``trace is None`` fast path as one built with no hub, while metric
snapshots keep working.  Toggling the recorder after construction only
affects a switch that was built with tracing enabled.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ConfigError
from .events import Category, Severity
from .metrics import MetricRegistry, PeriodicSampler
from .monitor import ResourceMonitor
from .recorder import TraceRecorder
from .sampler import SpanSampler, TelemetryLevel


class Telemetry:
    """Recorder + metrics + sampling policy for one switch.

    Args:
        capacity: Trace ring-buffer depth.
        categories: Trace categories to record (None = default set).
        min_severity: Minimum recorded severity.
        snapshot_interval_s: Simulated-time spacing of metric snapshots;
            None disables periodic sampling (a final snapshot is still
            taken when the run finishes).
        monitor: Optional :class:`~repro.telemetry.monitor.ResourceMonitor`
            to attach at bind time: it collects every component's
            ``monitor_probes()`` and samples them on the simulation clock.
        spans: Optional :class:`~repro.telemetry.spans.SpanRecorder` the
            switch exposes as ``switch.spans`` — sampled per-hop spans
            without touching the trace path (docs/SPANS.md).  Several
            hubs may share one recorder (a fabric records all switches
            into one span stream).
    """

    def __init__(
        self,
        capacity: int = 65536,
        categories: Iterable[Category] | None = None,
        min_severity: Severity = Severity.DEBUG,
        snapshot_interval_s: float | None = None,
        monitor: ResourceMonitor | None = None,
        spans=None,
    ) -> None:
        if snapshot_interval_s is not None and snapshot_interval_s <= 0:
            raise ConfigError(
                f"snapshot interval must be positive, got {snapshot_interval_s}"
            )
        self.trace = TraceRecorder(
            capacity=capacity,
            categories=categories,
            min_severity=min_severity,
        )
        self.metrics = MetricRegistry()
        self.snapshot_interval_s = snapshot_interval_s
        self.monitor = monitor
        self.spans = spans
        self._switch = None

    @classmethod
    def at_level(
        cls,
        level: "TelemetryLevel | str",
        *,
        seed: int = 0,
        sample: int = 16,
        interval_ns: float | None = None,
        capacity: int = 65536,
    ) -> "Telemetry":
        """Build a hub for one rung of the telemetry-level ladder.

        ``off``/``counters``/``sampled`` disable the trace recorder
        *before* switch construction, so the switch keeps the
        ``trace is None`` fast path (docs/KERNEL.md); ``counters`` and
        ``sampled`` add a :class:`ResourceMonitor` (deadline-aware, so
        dispatch stays on ``_run_fast_probed``), and ``sampled`` adds a
        :class:`~repro.telemetry.spans.SpanRecorder` sampling 1 in
        ``sample`` packets.  ``full`` is the PR 1 instrumented path.
        """
        from .spans import SpanRecorder

        level = TelemetryLevel.parse(level)
        monitor = None
        if level.wants_monitor:
            monitor = (
                ResourceMonitor(interval_ns=interval_ns)
                if interval_ns is not None
                else ResourceMonitor()
            )
        spans = None
        if level.wants_spans:
            spans = SpanRecorder(SpanSampler(seed=seed, sample=sample))
        hub = cls(capacity=capacity, monitor=monitor, spans=spans)
        if level.preserves_fast_path:
            hub.trace.disable()
        return hub

    # --- switch wiring ------------------------------------------------------------

    def bind(self, switch) -> None:
        """Attach this hub to a switch (called by the switch constructor).

        Registers derived gauges — per-pipeline utilization, TM occupancy,
        TM1 merge depth when the switch has a merge front-end — and hooks
        the periodic sampler into the switch's event kernel.
        """
        from ..rmt.pipeline import Pipeline
        from ..rmt.traffic_manager import TrafficManager

        if self._switch is not None and self._switch is not switch:
            raise ConfigError(
                "a Telemetry hub serves one switch; build one hub per switch"
            )
        self._switch = switch
        self.metrics.bind_stats(switch.stats)

        for component in switch.walk():
            if isinstance(component, Pipeline):
                self.metrics.gauge(
                    f"{component.path}.utilization",
                    lambda now, p=component: (
                        min(1.0, p.busy_seconds / now) if now > 0 else 0.0
                    ),
                )
            elif isinstance(component, TrafficManager):
                self.metrics.gauge(
                    f"{component.path}.occupancy",
                    lambda now, tm=component: float(tm.occupancy),
                )
                self.metrics.gauge(
                    f"{component.path}.peak_occupancy",
                    lambda now, tm=component: float(tm.peak_occupancy),
                )

        merge = getattr(switch, "_merge", None)
        if merge is not None:
            self.metrics.gauge(
                f"{switch.tm1.path}.merge_depth",
                lambda now, m=merge: float(m.pending()),
            )

        if self.snapshot_interval_s is not None:
            switch._sim.add_time_probe(
                PeriodicSampler(self.metrics, self.snapshot_interval_s)
            )
        if self.monitor is not None:
            self.monitor.attach(switch)

    def finish(self, now_s: float) -> None:
        """Take the end-of-run snapshot (called by the switch's ``run``)."""
        self.metrics.sample(now_s)
        if self.monitor is not None:
            self.monitor.finish(now_s)

    @property
    def switch(self):
        """The switch this hub is bound to, if any."""
        return self._switch
