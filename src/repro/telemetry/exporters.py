"""Exporters: Chrome trace-event JSON and plain-text run reports.

The Chrome trace-event format (the JSON ``chrome://tracing`` / Perfetto
load natively) maps cleanly onto switch telemetry:

- interval events (pipeline service, port serialization) become complete
  (``"ph": "X"``) slices with a duration;
- instant events (recirculations, drops, TM admits) become ``"ph": "i"``
  instants;
- metric snapshots become ``"ph": "C"`` counter tracks.

Timestamps are microseconds (floats are allowed, which matters at the
nanosecond scale these simulations run at).  The process id is the switch
the event came from (``rmt``/``adcp``) and the thread id is the component
within it, so the timeline groups lanes per pipeline/TM/port.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .events import TraceEvent
from .metrics import MetricRegistry
from .recorder import TraceRecorder

_US_PER_S = 1e6


def _split_component(component: str) -> tuple[str, str]:
    """Split a dotted component path into (process, thread) labels."""
    if not component:
        return "switch", "events"
    root, _, rest = component.partition(".")
    return root, rest or root


def chrome_trace_events(
    events: Iterable[TraceEvent],
    metrics: MetricRegistry | None = None,
    pid: str | None = None,
) -> list[dict]:
    """Convert telemetry into a list of Chrome trace-event dicts.

    ``pid`` overrides the process label (useful when combining several
    switches into one timeline); by default each event's component root
    names the process.
    """
    out: list[dict] = []
    for event in events:
        proc, thread = _split_component(event.component)
        entry: dict = {
            "name": event.name,
            "cat": event.category.value,
            "pid": pid or proc,
            "tid": thread,
            "ts": event.time_s * _US_PER_S,
            "args": {
                "seq": event.seq,
                "severity": event.severity.name,
                **({"packet_id": event.packet_id} if event.packet_id is not None else {}),
                **event.args,
            },
        }
        if event.duration_s is not None:
            entry["ph"] = "X"
            entry["dur"] = event.duration_s * _US_PER_S
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # instant scoped to its thread lane
        out.append(entry)

    if metrics is not None:
        for snapshot in metrics.series:
            for name in sorted(snapshot.values):
                value = snapshot.values[name]
                proc, _ = _split_component(name)
                out.append(
                    {
                        "name": name,
                        "cat": "metric",
                        "ph": "C",
                        "pid": pid or proc,
                        "ts": snapshot.time_s * _US_PER_S,
                        "args": {"value": value},
                    }
                )
    return out


def to_chrome_trace(
    recorder: TraceRecorder,
    metrics: MetricRegistry | None = None,
    pid: str | None = None,
) -> dict:
    """A complete Chrome trace document for one recorder."""
    return {
        "displayTimeUnit": "ns",
        "traceEvents": chrome_trace_events(recorder, metrics, pid=pid),
    }


def write_chrome_trace(
    path: str | Path,
    trace_events: list[dict] | dict,
) -> Path:
    """Write trace events (a list, or a full document) as JSON.

    Returns the path written.  A bare list is wrapped in the standard
    ``{"traceEvents": [...]}`` envelope.
    """
    document = (
        trace_events
        if isinstance(trace_events, dict)
        else {"displayTimeUnit": "ns", "traceEvents": trace_events}
    )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=1, sort_keys=True))
    return target


def text_report(
    recorder: TraceRecorder,
    metrics: MetricRegistry | None = None,
    title: str = "telemetry",
) -> list[str]:
    """A human-readable run summary: event totals and sampled series."""
    lines = [f"telemetry report — {title}"]
    lines.append(
        f"  events: {recorder.emitted} emitted, {len(recorder)} retained, "
        f"{recorder.overwritten} overwritten, {recorder.filtered} filtered"
    )
    for name, count in recorder.counts_by_name().items():
        lines.append(f"    {name:<28} {count:>8}")
    if metrics is not None and metrics.series:
        first, last = metrics.series[0], metrics.series[-1]
        lines.append(
            f"  snapshots: {len(metrics.series)} "
            f"({first.time_s * 1e9:.0f}..{last.time_s * 1e9:.0f} ns)"
        )
        for name in sorted(last.values):
            lines.append(f"    {name:<40} {last.values[name]:>12g}")
    return lines
