"""Structured trace events.

A :class:`TraceEvent` is one timestamped observation of switch-internal
behaviour: a packet entering a pipeline, a TM admitting or rejecting, a
recirculation pass, a merge release.  Events carry a *category* (what kind
of machinery produced them) and a *severity* (how notable they are), which
the :class:`~repro.telemetry.recorder.TraceRecorder` filters on, plus a
monotonically increasing sequence number so a seeded run always produces
the same event stream in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum


class Category(Enum):
    """What kind of switch machinery emitted an event."""

    PACKET = "packet"
    """Packet lifecycle: arrival, delivery, drop, consume."""

    PIPELINE = "pipeline"
    """One packet's service through a parser + stage ladder."""

    STAGE = "stage"
    """Per-stage execution detail (verbose; DEBUG severity)."""

    TM = "tm"
    """Traffic-manager enqueue/dequeue."""

    ADMISSION = "admission"
    """Admission rejects: TM buffer full, unreachable destinations."""

    RECIRC = "recirc"
    """RMT recirculation passes (the paper's bandwidth tax)."""

    MERGE = "merge"
    """TM1 k-way merge activity (offer, release, flush)."""

    PORT = "port"
    """TX-port serialization."""

    SIM = "sim"
    """Event-kernel dispatch (verbose; DEBUG severity)."""

    CLOCK = "clock"
    """Clock-domain advances (verbose; DEBUG severity)."""


class Severity(IntEnum):
    """How notable an event is; recorders drop below their threshold."""

    DEBUG = 10
    INFO = 20
    WARNING = 30
    ERROR = 40


#: Categories that are too chatty for default recording: per-stage,
#: per-kernel-event, and per-clock-tick detail.  Opt in explicitly.
VERBOSE_CATEGORIES = frozenset({Category.STAGE, Category.SIM, Category.CLOCK})

#: The default recording set: everything except the verbose categories.
DEFAULT_CATEGORIES = frozenset(set(Category) - VERBOSE_CATEGORIES)


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation.

    Attributes:
        seq: Recorder-assigned sequence number; total order of emission.
        time_s: Simulated time of the observation, in seconds.
        category: Machinery that produced the event.
        name: Dotted event name, e.g. ``"packet.delivered"``.
        component: Dotted path of the emitting component (``"rmt.ingress0"``).
        severity: Notability level.
        packet_id: Id of the packet involved, when there is one.
        duration_s: Span length for interval events (pipeline service,
            port serialization); None for instants.
        args: Free-form structured detail (occupancies, verdicts, ports).
    """

    seq: int
    time_s: float
    category: Category
    name: str
    component: str = ""
    severity: Severity = Severity.INFO
    packet_id: int | None = None
    duration_s: float | None = None
    args: dict = field(default_factory=dict)

    @property
    def end_time_s(self) -> float:
        """End of the event's span (== ``time_s`` for instants)."""
        return self.time_s + (self.duration_s or 0.0)
