"""Telemetry: structured tracing, metric snapshots, and timeline export.

An opt-in observability layer shared by both switch simulators.  Build a
:class:`Telemetry` hub, hand it to a switch constructor, and after the run
read the structured event stream (:class:`TraceRecorder`), the sampled
metric time-series (:class:`MetricRegistry`), or export the whole run as a
Chrome trace-event timeline (:func:`to_chrome_trace`) loadable in
``chrome://tracing`` / Perfetto.

When no hub is passed, every instrumentation site in the simulators
reduces to a single ``is None`` check — runs without telemetry behave
byte-identically to the uninstrumented code.
"""

from .events import (
    DEFAULT_CATEGORIES,
    VERBOSE_CATEGORIES,
    Category,
    Severity,
    TraceEvent,
)
from .exporters import (
    chrome_trace_events,
    text_report,
    to_chrome_trace,
    write_chrome_trace,
)
from .attribution import (
    AttributionRow,
    AttributionTable,
    BottleneckReport,
    CriticalComponent,
    LittlesLawCheck,
    analyze_bottlenecks,
    attribution_gap,
    monitor_littles_checks,
)
from .ledger import (
    DEFAULT_THRESHOLD,
    LEDGER_SCHEMA,
    SPAN_LEDGER_SCHEMA,
    STATEFUL_LEDGER_SCHEMA,
    DiffRow,
    LedgerDiff,
    build_ledger,
    diff_ledgers,
    load_ledger,
    write_ledger,
)
from .sampler import SpanSampler, TelemetryLevel
from .spans import (
    SPAN_HOPS,
    CoflowCriticalPath,
    SpanRecord,
    SpanRecorder,
    build_span_ledger,
    coflow_critical_paths,
    span_chrome_events,
    span_hop_totals,
    span_overview_series,
    write_span_ledger,
)
from .metrics import MetricRegistry, MetricSnapshot, PeriodicSampler
from .monitor import (
    DEFAULT_INTERVAL_NS,
    ResourceMonitor,
    SeriesSummary,
    merged_chrome_events,
)
from .profiler import (
    BUCKETS,
    QUEUE_BUCKETS,
    PacketProfile,
    RunProfile,
    Segment,
    profile_chrome_events,
    profile_run,
)
from .recorder import TraceRecorder
from .session import Telemetry

__all__ = [
    "AttributionRow",
    "AttributionTable",
    "BottleneckReport",
    "BUCKETS",
    "Category",
    "CoflowCriticalPath",
    "CriticalComponent",
    "DEFAULT_CATEGORIES",
    "DEFAULT_INTERVAL_NS",
    "DEFAULT_THRESHOLD",
    "DiffRow",
    "LEDGER_SCHEMA",
    "LedgerDiff",
    "LittlesLawCheck",
    "MetricRegistry",
    "MetricSnapshot",
    "PacketProfile",
    "PeriodicSampler",
    "QUEUE_BUCKETS",
    "ResourceMonitor",
    "RunProfile",
    "SPAN_HOPS",
    "SPAN_LEDGER_SCHEMA",
    "STATEFUL_LEDGER_SCHEMA",
    "Segment",
    "SeriesSummary",
    "Severity",
    "SpanRecord",
    "SpanRecorder",
    "SpanSampler",
    "Telemetry",
    "TelemetryLevel",
    "TraceEvent",
    "TraceRecorder",
    "VERBOSE_CATEGORIES",
    "analyze_bottlenecks",
    "attribution_gap",
    "build_ledger",
    "build_span_ledger",
    "chrome_trace_events",
    "coflow_critical_paths",
    "diff_ledgers",
    "load_ledger",
    "merged_chrome_events",
    "monitor_littles_checks",
    "profile_chrome_events",
    "profile_run",
    "span_chrome_events",
    "span_hop_totals",
    "span_overview_series",
    "text_report",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_ledger",
    "write_span_ledger",
]
