"""Telemetry: structured tracing, metric snapshots, and timeline export.

An opt-in observability layer shared by both switch simulators.  Build a
:class:`Telemetry` hub, hand it to a switch constructor, and after the run
read the structured event stream (:class:`TraceRecorder`), the sampled
metric time-series (:class:`MetricRegistry`), or export the whole run as a
Chrome trace-event timeline (:func:`to_chrome_trace`) loadable in
``chrome://tracing`` / Perfetto.

When no hub is passed, every instrumentation site in the simulators
reduces to a single ``is None`` check — runs without telemetry behave
byte-identically to the uninstrumented code.
"""

from .events import (
    DEFAULT_CATEGORIES,
    VERBOSE_CATEGORIES,
    Category,
    Severity,
    TraceEvent,
)
from .exporters import (
    chrome_trace_events,
    text_report,
    to_chrome_trace,
    write_chrome_trace,
)
from .metrics import MetricRegistry, MetricSnapshot, PeriodicSampler
from .recorder import TraceRecorder
from .session import Telemetry

__all__ = [
    "Category",
    "DEFAULT_CATEGORIES",
    "MetricRegistry",
    "MetricSnapshot",
    "PeriodicSampler",
    "Severity",
    "Telemetry",
    "TraceEvent",
    "TraceRecorder",
    "VERBOSE_CATEGORIES",
    "chrome_trace_events",
    "text_report",
    "to_chrome_trace",
    "write_chrome_trace",
]
