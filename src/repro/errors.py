"""Exception hierarchy for the ADCP/RMT switch simulator.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A switch, pipeline, or workload configuration is inconsistent.

    Raised at construction time, never during simulation, so that invalid
    setups fail fast rather than producing silently wrong results.
    """


class ParseError(ReproError):
    """A packet could not be parsed against the configured parse graph."""


class DeparseError(ReproError):
    """A PHV could not be serialized back into a packet."""


class TableError(ReproError):
    """A match-action table operation failed (capacity, key shape, ...)."""


class CapacityError(TableError):
    """A table or memory block has no room for the requested entries."""


class CompileError(ReproError):
    """A program cannot be mapped onto the target architecture."""


class PlacementError(ReproError):
    """A coflow or data partition cannot be placed as requested."""


class SimulationError(ReproError):
    """The simulation kernel detected an internal inconsistency."""


class FeasibilityError(ReproError):
    """A chip-feasibility model was asked for an unrealizable design point."""
