"""Declarative campaign specs: parameter axes expanded into cells.

A *campaign* is a set of independent simulation runs ("cells") produced
by expanding parameter axes over a cell *target* (a registered function
that turns one parameter assignment into a run ledger).  Specs are
declarative — a TOML or JSON document, or one of the shipped builtins —
and fully validated up front, so a bad axis fails before any cell runs.

Three expansion modes:

- ``grid`` — the cartesian product of every axis (Tables 2/3 style
  design-space sweeps).
- ``zip`` — axes advance in lockstep (all must have equal length).
- ``list`` — explicit per-cell parameter tables, no expansion.

Every cell gets a *canonical config digest*: the SHA-256 of its target
plus sorted-key parameter JSON.  The digest is the cache key (together
with the source digest, see :mod:`repro.campaign.cache`), the journal
identity for resume, and the basis of the cell's derived seed — so two
campaigns that share a cell share its cached result, and reordering axes
in the spec file changes nothing.

Seeds follow the State-Compute-Replication discipline: a cell that does
not sweep ``seed`` explicitly gets one derived deterministically from
``stable_hash64`` over the campaign base seed and the cell digest, so
parallel execution (any worker count, any completion order) is
bit-identical to serial execution.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError
from ..sim.rng import stable_hash64

#: Spec document format identifier (embedded in journals and reports).
SPEC_SCHEMA = "repro.campaign_spec/1"

_MODES = ("grid", "zip", "list")

#: Axis values must be JSON scalars so digests are canonical.
_SCALARS = (bool, int, float, str)


def canonical_json(document) -> str:
    """Key-sorted, separator-normalized JSON: the digest input form."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def config_digest(document) -> str:
    """Short stable content digest of a canonical-JSON-able document."""
    return hashlib.sha256(
        canonical_json(document).encode("utf-8")
    ).hexdigest()[:16]


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class Cell:
    """One expanded campaign cell: a parameter assignment plus identity."""

    index: int
    label: str
    target: str
    params: dict  # includes the resolved ``seed``
    digest: str

    def job_params(self) -> dict:
        """The parameters handed to the cell target (a fresh copy)."""
        return dict(self.params)


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign description.

    Attributes:
        name: Campaign name (used for default output paths).
        target: Cell-target registry key (see
            :data:`repro.campaign.cells.TARGETS`).
        mode: ``grid`` | ``zip`` | ``list``.
        axes: Axis name -> list of scalar values (grid/zip modes).
        cells: Explicit parameter tables (list mode).
        seed: Campaign base seed for derived per-cell seeds.
        fixed: Parameters shared by every cell (overridable by axes).
    """

    name: str
    target: str
    mode: str = "grid"
    axes: dict = field(default_factory=dict)
    cells: tuple = ()
    seed: int = 0
    fixed: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("campaign needs a non-empty string name")
        if not self.target or not isinstance(self.target, str):
            raise ConfigError(f"campaign {self.name!r} needs a cell target")
        if self.mode not in _MODES:
            raise ConfigError(
                f"campaign {self.name!r} mode must be one of "
                f"{', '.join(_MODES)}; got {self.mode!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(
                f"campaign {self.name!r} seed must be an integer"
            )
        if self.seed < 0:
            raise ConfigError(
                f"campaign {self.name!r} seed must be non-negative"
            )
        self._validate_params("fixed", self.fixed)
        if self.mode == "list":
            if self.axes:
                raise ConfigError(
                    f"campaign {self.name!r}: list mode takes explicit "
                    f"cells, not axes"
                )
            if not self.cells:
                raise ConfigError(
                    f"campaign {self.name!r}: list mode needs at least "
                    f"one cell"
                )
            for i, cell in enumerate(self.cells):
                if not isinstance(cell, dict) or not cell:
                    raise ConfigError(
                        f"campaign {self.name!r}: cell {i} must be a "
                        f"non-empty parameter table"
                    )
                self._validate_params(f"cell {i}", cell)
            return
        if self.cells:
            raise ConfigError(
                f"campaign {self.name!r}: explicit cells require "
                f"mode = \"list\""
            )
        if not self.axes:
            raise ConfigError(
                f"campaign {self.name!r} needs at least one axis"
            )
        for axis, values in self.axes.items():
            if not isinstance(axis, str) or not axis:
                raise ConfigError(
                    f"campaign {self.name!r}: axis names must be strings"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigError(
                    f"campaign {self.name!r}: axis {axis!r} needs a "
                    f"non-empty list of values"
                )
            for value in values:
                self._check_scalar(f"axis {axis!r}", value)
            if len(set(map(repr, values))) != len(values):
                raise ConfigError(
                    f"campaign {self.name!r}: axis {axis!r} has "
                    f"duplicate values"
                )
        if self.mode == "zip":
            lengths = {axis: len(v) for axis, v in self.axes.items()}
            if len(set(lengths.values())) > 1:
                raise ConfigError(
                    f"campaign {self.name!r}: zip axes must have equal "
                    f"lengths, got {lengths}"
                )

    def _validate_params(self, where: str, params) -> None:
        if not isinstance(params, dict):
            raise ConfigError(
                f"campaign {self.name!r}: {where} must be a table"
            )
        for key, value in params.items():
            if not isinstance(key, str) or not key:
                raise ConfigError(
                    f"campaign {self.name!r}: {where} keys must be strings"
                )
            self._check_scalar(f"{where} key {key!r}", value)

    def _check_scalar(self, where: str, value) -> None:
        if not isinstance(value, _SCALARS):
            raise ConfigError(
                f"campaign {self.name!r}: {where} value {value!r} must "
                f"be a scalar (bool/int/float/str)"
            )

    # --- identity ---------------------------------------------------------------------

    def to_document(self) -> dict:
        """The spec as a plain JSON-able document (round-trippable)."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "target": self.target,
            "mode": self.mode,
            "axes": {k: list(v) for k, v in self.axes.items()},
            "cells": [dict(c) for c in self.cells],
            "seed": self.seed,
            "fixed": dict(self.fixed),
        }

    def digest(self) -> str:
        """Identity of the whole campaign (used to guard ``--resume``)."""
        return config_digest(self.to_document())

    # --- expansion --------------------------------------------------------------------

    def _assignments(self) -> list[list[tuple[str, object]]]:
        if self.mode == "grid":
            names = list(self.axes)
            return [
                list(zip(names, combo))
                for combo in itertools.product(
                    *(self.axes[n] for n in names)
                )
            ]
        if self.mode == "zip":
            names = list(self.axes)
            length = len(self.axes[names[0]])
            return [
                [(n, self.axes[n][i]) for n in names]
                for i in range(length)
            ]
        return [sorted(cell.items()) for cell in self.cells]

    def expand(self) -> list[Cell]:
        """Expand into ordered cells with digests and resolved seeds.

        Cell order is deterministic: axis insertion order, values in
        spec order (grid = row-major cartesian product).  The digest of
        a cell covers its target and full parameter assignment — and the
        campaign base seed only when the cell's seed is *derived* from
        it — so explicitly-seeded cells cache across campaigns with
        different base seeds.
        """
        cells: list[Cell] = []
        seen: dict[str, int] = {}
        for index, assignment in enumerate(self._assignments()):
            params = dict(self.fixed)
            params.update(assignment)
            key: dict = {"target": self.target, "params": params}
            if "seed" not in params:
                key["base_seed"] = self.seed
            digest = config_digest(key)
            if digest in seen:
                raise ConfigError(
                    f"campaign {self.name!r}: cells {seen[digest]} and "
                    f"{index} have identical parameters"
                )
            seen[digest] = index
            if "seed" not in params:
                params["seed"] = stable_hash64(
                    f"{self.seed}/{digest}"
                ) & (2**63 - 1)
            label = ",".join(
                f"{name}={_format_value(value)}"
                for name, value in assignment
            )
            cells.append(Cell(index, label, self.target, params, digest))
        return cells

    # --- axis overrides ---------------------------------------------------------------

    def restrict_axes(self, overrides: dict[str, list]) -> "CampaignSpec":
        """A copy with some axes replaced (the CLI's ``--axis`` flag).

        Only meaningful for ``grid`` campaigns: restricting one zipped
        axis would desynchronize the others, and list mode has no axes.
        """
        if not overrides:
            return self
        if self.mode != "grid":
            raise ConfigError(
                f"campaign {self.name!r}: --axis overrides apply only "
                f"to grid campaigns (this one is {self.mode!r})"
            )
        axes = {k: list(v) for k, v in self.axes.items()}
        for axis, values in overrides.items():
            if axis not in axes:
                raise ConfigError(
                    f"campaign {self.name!r} has no axis {axis!r}; "
                    f"axes: {', '.join(axes)}"
                )
            axes[axis] = list(values)
        return CampaignSpec(
            name=self.name,
            target=self.target,
            mode=self.mode,
            axes=axes,
            cells=self.cells,
            seed=self.seed,
            fixed=self.fixed,
        )


# --- loading ---------------------------------------------------------------------


def spec_from_document(document: dict, default_name: str | None = None) -> CampaignSpec:
    """Build a validated spec from a parsed TOML/JSON document."""
    if not isinstance(document, dict):
        raise ConfigError("campaign spec must be a table/object")
    known = {"schema", "name", "target", "mode", "axes", "cells", "seed", "fixed"}
    unknown = sorted(set(document) - known)
    if unknown:
        raise ConfigError(
            f"campaign spec has unknown keys: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    schema = document.get("schema")
    if schema is not None and not str(schema).startswith("repro.campaign_spec"):
        raise ConfigError(
            f"not a campaign spec: schema {schema!r} "
            f"(expected {SPEC_SCHEMA!r})"
        )
    cells = document.get("cells", [])
    if not isinstance(cells, (list, tuple)):
        raise ConfigError("campaign spec 'cells' must be an array of tables")
    return CampaignSpec(
        name=document.get("name") or default_name or "campaign",
        target=document.get("target", ""),
        mode=document.get("mode", "grid"),
        axes=dict(document.get("axes", {})),
        cells=tuple(dict(c) if isinstance(c, dict) else c for c in cells),
        seed=document.get("seed", 0),
        fixed=dict(document.get("fixed", {})),
    )


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    source = Path(path)
    if not source.exists():
        raise ConfigError(f"campaign spec {source} does not exist")
    if source.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # Python 3.10: stdlib TOML landed in 3.11
            raise ConfigError(
                f"TOML campaign specs need Python 3.11+ (no tomllib "
                f"here); rewrite {source.name} as JSON"
            )
        try:
            document = tomllib.loads(source.read_text())
        except tomllib.TOMLDecodeError as error:
            raise ConfigError(f"{source} is not valid TOML: {error}")
    elif source.suffix == ".json":
        try:
            document = json.loads(source.read_text())
        except json.JSONDecodeError as error:
            raise ConfigError(f"{source} is not valid JSON: {error}")
    else:
        raise ConfigError(
            f"campaign spec {source} must be a .toml or .json file"
        )
    return spec_from_document(document, default_name=source.stem)


# --- builtins --------------------------------------------------------------------

#: Shipped campaign documents, runnable by name from the CLI.
#:
#: ``design-space`` sweeps the ADCP geometry the paper's Tables 2/3
#: explore — array width x demux factor x port speed — over the pinned
#: parameter-server workload.  ``coflow-mix`` sweeps the Table 1
#: application classes across seeds on the matched 8-port ADCP.
#: ``fabric-sweep`` crosses coflow state placement with topology on the
#: multi-switch fabric, so the axis tables show how much coflow
#: completion time placement buys at fabric scale.
BUILTIN_CAMPAIGNS: dict[str, dict] = {
    "design-space": {
        "name": "design-space",
        "target": "design-space",
        "mode": "grid",
        "seed": 1,
        "axes": {
            "array_width": [8, 16],
            "demux_factor": [1, 2],
            "port_speed_gbps": [100, 200],
        },
    },
    "coflow-mix": {
        "name": "coflow-mix",
        "target": "coflow-mix",
        "mode": "grid",
        "seed": 2,
        "axes": {
            "app": ["paramserver", "dbshuffle", "graphmining", "groupcomm"],
            "seed": [21, 42],
        },
    },
    "stateful-sweep": {
        "name": "stateful-sweep",
        "target": "stateful",
        "mode": "grid",
        "seed": 4,
        "fixed": {
            "workload": "tokenbucket",
            "packets": 240,
            "seed": 11,
        },
        "axes": {
            "flows": [16, 64],
            "skew": [1.1, 1.5],
            "target": ["rmt", "adcp"],
        },
    },
    "fabric-sweep": {
        "name": "fabric-sweep",
        "target": "fabric",
        "mode": "grid",
        "seed": 3,
        "fixed": {
            "workload": "fabric-allreduce",
            "target": "adcp",
            "routing": "ecmp",
            "seed": 7,
        },
        "axes": {
            "placement": ["ingress", "central", "hash"],
            "topology": ["leaf-spine-2x2", "fat-tree-k4"],
        },
    },
}


def resolve_spec(name_or_path: str) -> CampaignSpec:
    """A builtin campaign by name, or a spec file by path."""
    if name_or_path in BUILTIN_CAMPAIGNS:
        return spec_from_document(BUILTIN_CAMPAIGNS[name_or_path])
    if name_or_path.endswith((".toml", ".json")) or Path(name_or_path).exists():
        return load_spec(name_or_path)
    raise ConfigError(
        f"unknown campaign {name_or_path!r}; choose a builtin "
        f"({', '.join(sorted(BUILTIN_CAMPAIGNS))}) or pass a "
        f".toml/.json spec path"
    )
