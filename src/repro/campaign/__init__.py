"""Campaign engine: declarative sweeps, parallel workers, cached cells.

The orchestration layer every experiment runs on: a campaign spec
(TOML/JSON or builtin) expands into deterministic cells, a process pool
executes them with retry and timeout fault handling, a
content-addressed cache reuses results across runs, a JSONL journal
makes interrupted campaigns resumable, and the aggregate report is a
run ledger ``repro diff`` can regression-check.

See ``docs/CAMPAIGNS.md`` for the spec format and semantics.
"""

from .cache import ResultCache, source_digest
from .cells import TARGETS, run_cell
from .journal import Journal
from .pool import Job, JobResult, WorkerPool
from .runner import CampaignRun, run_campaign
from .spec import (
    BUILTIN_CAMPAIGNS,
    CampaignSpec,
    Cell,
    config_digest,
    load_spec,
    resolve_spec,
    spec_from_document,
)

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "CampaignRun",
    "CampaignSpec",
    "Cell",
    "Job",
    "JobResult",
    "Journal",
    "ResultCache",
    "TARGETS",
    "WorkerPool",
    "config_digest",
    "load_spec",
    "resolve_spec",
    "run_campaign",
    "run_cell",
    "source_digest",
    "spec_from_document",
]
