"""Cell targets: the functions a campaign schedules, one call per cell.

A target takes one validated parameter table (always including a
resolved ``seed``) and returns a **run ledger** document — the PR 4
schema (``repro.run_ledger/1``) with monitored series summaries per
section — so every cell's output plugs straight into ``repro diff`` and
the campaign aggregator.

Targets must be:

- **Deterministic.**  The same parameters produce byte-identical
  ledgers; all randomness flows from ``params["seed"]`` through
  :mod:`repro.sim.rng`.
- **Self-contained.**  They import what they need lazily and touch no
  global state, because the worker pool may run them in forked or
  spawned subprocesses.

The ``_flaky`` and ``_echo`` targets are test scaffolding for the pool
and runner suites (crash/retry/resume paths need a cell that misbehaves
on demand); they are registered but undocumented in the CLI.
"""

from __future__ import annotations

from ..errors import ConfigError


def _take(target: str, params: dict, schema: dict) -> dict:
    """Validate ``params`` against ``schema`` (key -> (types, default)).

    ``default is _REQUIRED`` marks a mandatory key.  Unknown keys are
    rejected up front so a typoed axis fails before any cell runs.
    """
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise ConfigError(
            f"cell target {target!r} got unknown parameters "
            f"{', '.join(unknown)}; accepted: {', '.join(sorted(schema))}"
        )
    taken = {}
    for key, (types, default) in schema.items():
        if key in params:
            value = params[key]
            if isinstance(value, bool) and bool not in (
                types if isinstance(types, tuple) else (types,)
            ):
                raise ConfigError(
                    f"cell target {target!r} parameter {key!r} must be "
                    f"numeric, got a bool"
                )
            if not isinstance(value, types):
                raise ConfigError(
                    f"cell target {target!r} parameter {key!r} has "
                    f"invalid value {value!r}"
                )
            taken[key] = value
        elif default is _REQUIRED:
            raise ConfigError(
                f"cell target {target!r} requires parameter {key!r}"
            )
        else:
            taken[key] = default
    return taken


_REQUIRED = object()


def _monitored_telemetry():
    """A hub carrying only the resource monitor: cells skip event
    tracing (the aggregate compares series summaries, not timelines)."""
    from ..telemetry import ResourceMonitor, Telemetry
    from ..telemetry.monitor import DEFAULT_INTERVAL_NS

    telemetry = Telemetry(
        monitor=ResourceMonitor(interval_ns=DEFAULT_INTERVAL_NS)
    )
    telemetry.trace.disable()
    return telemetry


def _section(label: str, telemetry, result) -> dict:
    """One ledger section from a monitored switch run."""
    monitor = telemetry.monitor
    return {
        "label": label,
        "duration_s": result.duration_s,
        "delivered": len(result.delivered),
        "consumed": result.consumed,
        "recirculated": result.recirculated_packets,
        "samples": len(monitor),
        "series": {
            name: summary.to_json()
            for name, summary in monitor.summaries().items()
        },
        "counters": result.counters,
    }


def _ledger(workload: str, params: dict, sections: list[dict]) -> dict:
    from ..telemetry.ledger import build_ledger
    from ..telemetry.monitor import DEFAULT_INTERVAL_NS

    return build_ledger(
        workload=workload,
        interval_ns=DEFAULT_INTERVAL_NS,
        config=dict(params),
        sections=sections,
    )


# --- real targets ----------------------------------------------------------------


def _cell_design_space(params: dict) -> dict:
    """One point of the paper's ADCP geometry sweep.

    Runs the pinned parameter-server aggregation (the Table 1 ML row) on
    an 8-port ADCP built from the cell's geometry: ``array_width`` (8 or
    16 in the paper), ``demux_factor`` (Table 3), ``port_speed_gbps``
    (Table 2's rows).  Elements per packet track the array width, since
    that is the whole point of wide arrays.
    """
    p = _take(
        "design-space",
        params,
        {
            "array_width": (int, _REQUIRED),
            "demux_factor": (int, _REQUIRED),
            "port_speed_gbps": ((int, float), _REQUIRED),
            "seed": (int, _REQUIRED),
            "num_ports": (int, 8),
            "central_pipelines": (int, 4),
            "vector": (int, 512),
        },
    )
    from ..adcp.config import ADCPConfig
    from ..adcp.switch import ADCPSwitch
    from ..apps import ParameterServerApp
    from ..units import GBPS

    config = ADCPConfig(
        num_ports=p["num_ports"],
        port_speed_bps=p["port_speed_gbps"] * GBPS,
        demux_factor=p["demux_factor"],
        central_pipelines=p["central_pipelines"],
        array_width=p["array_width"],
    )
    telemetry = _monitored_telemetry()
    app = ParameterServerApp(
        [0, 1, 4, 5],
        p["vector"],
        elements_per_packet=min(16, p["array_width"]),
    )
    switch = ADCPSwitch(config, app, telemetry=telemetry)
    result = switch.run(app.workload(config.port_speed_bps))
    return _ledger("design-space", p, [_section("adcp", telemetry, result)])


def _cell_coflow_mix(params: dict) -> dict:
    """One Table 1 application class on the matched 8-port ADCP.

    ``app`` picks the workload; stochastic generators (graph-mining
    frontiers) draw from ``make_rng(seed)``, deterministic ones accept
    the seed for interface uniformity.
    """
    p = _take(
        "coflow-mix",
        params,
        {
            "app": (str, _REQUIRED),
            "seed": (int, _REQUIRED),
            "scale": (int, 96),
        },
    )
    from ..adcp.config import ADCPConfig
    from ..adcp.switch import ADCPSwitch
    from ..sim.rng import make_rng
    from ..units import GBPS

    config = ADCPConfig(
        num_ports=8,
        port_speed_bps=100 * GBPS,
        demux_factor=2,
        central_pipelines=4,
    )
    scale = p["scale"]
    seed = p["seed"] % (2**31)
    app_name = p["app"]
    telemetry = _monitored_telemetry()
    if app_name == "paramserver":
        from ..apps import ParameterServerApp

        app = ParameterServerApp(
            [0, 1, 4, 5], scale * 2, elements_per_packet=16
        )
        switch = ADCPSwitch(config, app, telemetry=telemetry)
        result = switch.run(app.workload(config.port_speed_bps))
    elif app_name == "dbshuffle":
        from ..apps import DBShuffleApp

        app = DBShuffleApp([0, 1], [4, 5], groups=16, elements_per_packet=16)
        switch = ADCPSwitch(config, app, telemetry=telemetry)
        result = switch.run(
            app.workload(config.port_speed_bps, elements_per_mapper=scale)
        )
    elif app_name == "graphmining":
        from ..apps import GraphMiningApp

        app = GraphMiningApp([0, 1, 4, 5], 512, elements_per_packet=16)
        switch = ADCPSwitch(config, app, telemetry=telemetry)
        result = switch.run(
            app.superstep_workload(
                config.port_speed_bps, scale, 2.0, make_rng(seed)
            )
        )
    elif app_name == "groupcomm":
        from ..apps import GroupCommApp

        app = GroupCommApp({1: [2, 4, 6]}, elements_per_packet=16)
        switch = ADCPSwitch(config, app, telemetry=telemetry)
        result = switch.run(
            app.workload(
                config.port_speed_bps,
                senders={0: 1},
                transfers_per_sender=max(1, scale // 8),
            )
        )
    else:
        raise ConfigError(
            f"coflow-mix app must be one of paramserver, dbshuffle, "
            f"graphmining, groupcomm; got {app_name!r}"
        )
    return _ledger(
        f"coflow-mix:{app_name}", p, [_section("adcp", telemetry, result)]
    )


def _cell_fabric(params: dict) -> dict:
    """One multi-switch fabric run (topology x placement x routing).

    Wraps :func:`repro.fabric.run_fabric`: coflows traverse a fat-tree
    or leaf-spine of RMT/ADCP switches, and the cell's ledger carries
    one section per switch plus the fabric section (links, per-coflow
    CCT, ``max_cct_s``) — so a placement sweep's axis tables compare
    coflow completion time directly.
    """
    p = _take(
        "fabric",
        params,
        {
            "topology": (str, "leaf-spine-2x2"),
            "workload": (str, "fabric-allreduce"),
            "target": (str, "adcp"),
            "placement": (str, "ingress"),
            "routing": (str, "ecmp"),
            "coflows": (int, 2),
            "vector": (int, 64),
            "load": ((int, float), 1.0),
            "seed": (int, _REQUIRED),
        },
    )
    from ..fabric import run_fabric

    run = run_fabric(
        p["topology"],
        p["workload"],
        target=p["target"],
        placement=p["placement"],
        routing=p["routing"],
        coflows=p["coflows"],
        vector=p["vector"],
        load=float(p["load"]),
        seed=p["seed"],
    )
    return run.ledger()


def _cell_stateful(params: dict) -> dict:
    """One stateful-primitive run (workload x flow count x skew x target).

    Wraps :func:`repro.stateful.run_stateful`: the cell's ledger is the
    ``repro.stateful_ledger/1`` artifact — per-target sections with
    admission/detection verdicts and state-access counts plus the
    compile-divergence section — so a flows x skew x target sweep shows
    how access concentration moves the primitive quality metrics on each
    architecture.
    """
    p = _take(
        "stateful",
        params,
        {
            "workload": (str, "tokenbucket"),
            "topology": (str, "single"),
            "target": (str, "both"),
            "flows": (int, 64),
            "skew": ((int, float), 1.2),
            "packets": (int, 400),
            "seed": (int, _REQUIRED),
        },
    )
    from ..stateful.runner import run_stateful

    run = run_stateful(
        p["workload"],
        target=p["target"],
        topology=p["topology"],
        flows=p["flows"],
        skew=float(p["skew"]),
        packets=p["packets"],
        seed=p["seed"],
    )
    return run.ledger()


# --- test scaffolding -------------------------------------------------------------


def _cell_echo(params: dict) -> dict:
    """Deterministic no-sim cell: echoes its parameters as a ledger.

    Test scaffolding for the pool/runner/CLI suites — fast, importable
    under any multiprocessing start method, and byte-stable.
    """
    raw = params.get("value", 0)
    value = float(raw) if isinstance(raw, (int, float)) else 0.0
    sections = [
        {
            "label": "echo",
            "duration_s": value,
            "delivered": int(value),
            "consumed": 0,
            "recirculated": 0,
            "samples": 1,
            "series": {
                "echo.value": {
                    "samples": 1,
                    "mean": value,
                    "peak": value,
                    "p99": value,
                    "last": value,
                }
            },
            "counters": {},
        }
    ]
    return _ledger("echo", params, sections)


def _cell_flaky(params: dict) -> dict:
    """Misbehaving cell for crash/retry/resume tests.

    ``sentinel`` names a file; on the attempt that first creates it the
    cell misbehaves per ``mode`` (``kill-once`` SIGKILLs its own worker,
    ``fail-once`` raises, ``sleep-always`` blocks past any timeout, and
    ``ok`` never misbehaves).
    Attempts that find the sentinel already present succeed — which is
    exactly the shape of a transient infrastructure fault.
    """
    import os
    import signal
    import time
    from pathlib import Path

    sentinel = Path(params["sentinel"])
    mode = params.get("mode", "kill-once")
    first = not sentinel.exists()
    if first:
        sentinel.parent.mkdir(parents=True, exist_ok=True)
        sentinel.write_text(mode)
    if mode == "sleep-always":
        time.sleep(float(params.get("sleep_s", 30.0)))
    elif first and mode != "ok":
        if mode == "kill-once":
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "fail-once":
            raise ConfigError("flaky cell: injected failure")
        else:
            raise ConfigError(f"flaky cell: unknown mode {mode!r}")
    return _cell_echo({k: v for k, v in params.items() if k == "seed"})


#: The cell-target registry: campaign specs refer to these by name.
TARGETS: dict = {
    "design-space": _cell_design_space,
    "coflow-mix": _cell_coflow_mix,
    "fabric": _cell_fabric,
    "stateful": _cell_stateful,
    "_echo": _cell_echo,
    "_flaky": _cell_flaky,
}


def run_cell(target: str, params: dict) -> dict:
    """Execute one cell in-process and return its ledger document."""
    try:
        fn = TARGETS[target]
    except KeyError:
        raise ConfigError(
            f"unknown cell target {target!r}; registered: "
            f"{', '.join(sorted(TARGETS))}"
        )
    document = fn(params)
    if not isinstance(document, dict) or "schema" not in document:
        raise ConfigError(
            f"cell target {target!r} returned a non-ledger result"
        )
    return document
