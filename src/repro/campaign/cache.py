"""Content-addressed result cache for campaign cells.

A cell's result is a pure function of (its config digest, the simulator
source tree), so the cache key is exactly that pair: entries live at
``.repro-cache/<source_digest>/<config_digest>.json``.  Editing any
git-tracked file under ``src/`` changes the source digest and silently
invalidates every entry — no staleness heuristics, no TTLs.

Writes are atomic (temp file in the target directory, then
``os.replace``) so concurrent campaigns — or a campaign killed
mid-write — can never leave a partial JSON behind; a corrupt entry, if
one appears through external interference, reads as a miss and is
dropped.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path

from ..errors import ConfigError
from ..ioutil import atomic_write_text

#: Default cache root, relative to the working directory.
CACHE_ROOT = ".repro-cache"

#: Cache entry format identifier.
ENTRY_SCHEMA = "repro.campaign_cache/1"


def _repo_root() -> Path:
    """The repository root this package was imported from."""
    return Path(__file__).resolve().parents[3]


def source_digest(root: str | Path | None = None) -> str:
    """Digest of the git-tracked simulator source under ``src/``.

    Prefers ``git ls-files -s`` (mode + blob SHA per file — cheap and
    already content-addressed); falls back to hashing file contents when
    git is unavailable, and to ``"unknown"`` as a last resort so the
    cache degrades to per-source-state-unsafe but still functional
    behavior only when there is no way to know better.
    """
    base = Path(root) if root is not None else _repo_root()
    try:
        proc = subprocess.run(
            ["git", "ls-files", "-s", "--", "src"],
            cwd=base,
            capture_output=True,
            text=True,
            timeout=30,
        )
        if proc.returncode == 0 and proc.stdout.strip():
            return hashlib.sha256(
                proc.stdout.encode("utf-8")
            ).hexdigest()[:16]
    except (OSError, subprocess.SubprocessError):
        pass
    src = base / "src"
    if src.is_dir():
        digest = hashlib.sha256()
        for path in sorted(src.rglob("*.py")):
            digest.update(str(path.relative_to(base)).encode("utf-8"))
            digest.update(path.read_bytes())
        return digest.hexdigest()[:16]
    return "unknown"


class ResultCache:
    """Cell results keyed by (source digest, config digest).

    Hit/miss counters accumulate over the cache's lifetime so campaign
    reports can state exactly how much work was reused.
    """

    def __init__(
        self,
        root: str | Path = CACHE_ROOT,
        source: str | None = None,
    ) -> None:
        self.root = Path(root)
        self.source = source if source is not None else source_digest()
        if not self.source:
            raise ConfigError("cache source digest must be non-empty")
        self.hits = 0
        self.misses = 0

    def path_for(self, digest: str) -> Path:
        return self.root / self.source / f"{digest}.json"

    def get(self, digest: str) -> dict | None:
        """The cached result for ``digest``, or None (counted) on miss."""
        path = self.path_for(digest)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            # Corrupt or unreadable: treat as a miss and drop the entry
            # so the rerun can repopulate it.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != ENTRY_SCHEMA
            or "result" not in entry
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, digest: str, result: dict) -> Path:
        """Store ``result`` atomically; returns the entry path."""
        entry = {
            "schema": ENTRY_SCHEMA,
            "config_digest": digest,
            "source_digest": self.source,
            "result": result,
        }
        return atomic_write_text(
            self.path_for(digest),
            json.dumps(entry, indent=1, sort_keys=True) + "\n",
        )
