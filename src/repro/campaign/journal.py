"""The campaign journal: an append-only JSONL record of progress.

One line per event, flushed as it happens, so a campaign killed at any
instant leaves a readable prefix.  ``--resume`` replays the journal to
find cells that already completed (and whose results the cache still
holds) and reruns only the remainder.

The journal is *per campaign output directory* and guarded by the spec
digest: resuming with an edited spec is an error, not a silent partial
rerun of mismatched cells.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..errors import ConfigError

#: Journal format identifier (the ``campaign_start`` record carries it).
JOURNAL_SCHEMA = "repro.campaign_journal/1"


class Journal:
    """Append-only JSONL event log for one campaign directory."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: dict) -> None:
        """Append one event (a ``ts`` wall-clock stamp is added)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {**record, "ts": round(time.time(), 3)}, sort_keys=True
        )
        with self.path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()

    def read(self) -> list[dict]:
        """Every parseable record, tolerating a torn final line."""
        if not self.path.exists():
            return []
        records: list[dict] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write from a killed process
            if isinstance(record, dict):
                records.append(record)
        return records

    def reset(self) -> None:
        """Truncate the journal (a fresh, non-resumed campaign run)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")

    # --- replay helpers ---------------------------------------------------------------

    def start_record(self) -> dict | None:
        for record in self.read():
            if record.get("event") == "campaign_start":
                return record
        return None

    def completed_digests(self) -> set[str]:
        """Digests of cells that reached ``cell_done`` in any prior run."""
        return {
            record["digest"]
            for record in self.read()
            if record.get("event") == "cell_done" and "digest" in record
        }

    def check_resumable(self, spec_digest: str) -> None:
        """Refuse to resume a journal written by a different spec."""
        start = self.start_record()
        if start is None:
            raise ConfigError(
                f"cannot --resume: {self.path} has no campaign_start "
                f"record (was a campaign ever started here?)"
            )
        if start.get("spec_digest") != spec_digest:
            raise ConfigError(
                f"cannot --resume: the spec changed since this campaign "
                f"started (journal {start.get('spec_digest')!r} vs "
                f"current {spec_digest!r}); rerun without --resume"
            )
