"""Campaign orchestration: expand, schedule, cache, journal, aggregate.

:func:`run_campaign` is the one entry point: it expands a validated
spec into cells, satisfies what it can from the result cache, schedules
the rest on the worker pool, journals every terminal event, and merges
the per-cell run ledgers into **one aggregate report that is itself a
run ledger** — sections named ``<cell label>/<section label>`` — so
``python -m repro diff`` compares two campaigns exactly like two single
runs.

Determinism contract: the aggregate depends only on the spec and the
simulator — never on worker count, completion order, cache state, or
wall clock — so ``--workers 1`` and ``--workers 8`` produce
byte-identical reports, and a cached rerun reproduces the original
bytes.  Timing and reuse statistics live in the journal and the CLI
text, not in the report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..errors import ConfigError
from .cache import ResultCache
from .cells import TARGETS
from .journal import JOURNAL_SCHEMA, Journal
from .pool import (
    DEFAULT_BACKOFF_S,
    DEFAULT_MAX_RETRIES,
    DEFAULT_TIMEOUT_S,
    Job,
    JobResult,
    PoolOutcome,
    WorkerPool,
    run_serial,
)
from .spec import CampaignSpec, Cell

#: Campaign reports use the run-ledger schema family so ``repro diff``
#: loads them unchanged; the campaign-specific payload rides alongside.
REPORT_FILENAME = "report.json"
JOURNAL_FILENAME = "journal.jsonl"

#: Per-cell scalar metrics the axis tables aggregate (summed over a
#: cell's sections; lower is better for every one of them).
#: ``max_cct_s`` only appears in fabric cells' "fabric" section and
#: sums to zero elsewhere.
_TABLE_METRICS = ("duration_s", "recirculated", "max_cct_s")


@dataclass
class CellOutcome:
    """One cell's terminal state within a campaign run."""

    cell: Cell
    status: str  # ok | failed | skipped
    ledger: dict | None = None
    error: str | None = None
    cached: bool = False
    resumed: bool = False
    attempts: int = 0
    elapsed_s: float = 0.0


@dataclass
class CampaignRun:
    """Everything one campaign invocation produced."""

    spec: CampaignSpec
    outcomes: list[CellOutcome]
    report: dict | None
    report_path: Path | None
    journal_path: Path
    interrupted: bool = False
    lines: list[str] = field(default_factory=list)

    @property
    def failed(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def skipped(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def cached_count(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def executed_count(self) -> int:
        return sum(
            1
            for o in self.outcomes
            if o.status == "ok" and not o.cached and not o.resumed
        )

    @property
    def exit_code(self) -> int:
        """0 = every cell ok; 1 = failures or an interrupted campaign."""
        if self.failed or self.skipped or self.interrupted:
            return 1
        return 0

    def summary(self) -> dict:
        """JSON-friendly digest for ``--json`` output."""
        return {
            "campaign": self.spec.name,
            "spec_digest": self.spec.digest(),
            "cells": len(self.outcomes),
            "executed": self.executed_count,
            "cached": self.cached_count,
            "resumed": sum(1 for o in self.outcomes if o.resumed),
            "failed": [
                {
                    "index": o.cell.index,
                    "label": o.cell.label,
                    "error": o.error,
                }
                for o in self.failed + self.skipped
            ],
            "interrupted": self.interrupted,
            "exit_code": self.exit_code,
            "report_file": (
                str(self.report_path) if self.report_path else None
            ),
            "journal_file": str(self.journal_path),
            "report": self.report,
        }


def _aggregate_report(
    spec: CampaignSpec, outcomes: list[CellOutcome]
) -> dict:
    """Merge per-cell ledgers into one campaign run ledger.

    Only complete campaigns aggregate axis tables over every cell; a
    partial campaign still reports the sections it has, so an
    interrupted run leaves a diffable (if sparse) artifact.
    """
    from ..telemetry.ledger import build_ledger

    sections: list[dict] = []
    interval_ns = 0.0
    for outcome in outcomes:
        if outcome.ledger is None:
            continue
        interval_ns = outcome.ledger.get("interval_ns", interval_ns)
        for section in outcome.ledger.get("sections", []):
            merged = dict(section)
            merged["label"] = f"{outcome.cell.label}/{section['label']}"
            sections.append(merged)
    sections.sort(key=lambda s: s["label"])

    report = build_ledger(
        workload=f"campaign:{spec.name}",
        interval_ns=interval_ns,
        config={
            "campaign": spec.name,
            "target": spec.target,
            "mode": spec.mode,
            "axes": {k: list(v) for k, v in spec.axes.items()},
            "seed": spec.seed,
            "spec_digest": spec.digest(),
        },
        sections=sections,
    )
    report["campaign"] = {
        "cells": [
            {
                "index": o.cell.index,
                "label": o.cell.label,
                "digest": o.cell.digest,
                "params": o.cell.params,
                "status": o.status,
                "metrics": _cell_metrics(o),
            }
            for o in outcomes
        ],
        "tables": _axis_tables(spec, outcomes),
    }
    return report


def _cell_metrics(outcome: CellOutcome) -> dict | None:
    if outcome.ledger is None:
        return None
    metrics = {metric: 0.0 for metric in _TABLE_METRICS}
    metrics["delivered"] = 0.0
    for section in outcome.ledger.get("sections", []):
        for metric in _TABLE_METRICS:
            metrics[metric] += float(section.get(metric, 0.0))
        metrics["delivered"] += float(section.get("delivered", 0))
    return metrics


def _axis_tables(spec: CampaignSpec, outcomes: list[CellOutcome]) -> dict:
    """Per-axis marginal tables: metric means grouped by axis value."""
    tables: dict = {}
    for axis in spec.axes:
        groups: dict[str, list[dict]] = {}
        for outcome in outcomes:
            metrics = _cell_metrics(outcome)
            if metrics is None or axis not in outcome.cell.params:
                continue
            key = str(outcome.cell.params[axis])
            groups.setdefault(key, []).append(metrics)
        table = {}
        for key in sorted(groups):
            rows = groups[key]
            table[key] = {
                "cells": len(rows),
                **{
                    metric: sum(r[metric] for r in rows) / len(rows)
                    for metric in sorted(rows[0])
                },
            }
        if table:
            tables[axis] = table
    return tables


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    resume: bool = False,
    out_dir: str | Path | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    timeout_s: float | None = DEFAULT_TIMEOUT_S,
    max_retries: int = DEFAULT_MAX_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    progress: Callable[[str], None] | None = None,
    serial: bool | None = None,
) -> CampaignRun:
    """Run (or resume) a campaign; returns the :class:`CampaignRun`.

    ``out_dir`` (default ``campaign_<name>/``) receives the journal and
    the aggregate ``report.json``.  ``cache_dir`` overrides the result
    cache root (default ``.repro-cache/``); ``use_cache=False`` runs
    every cell and stores nothing — the knob benchmarks use to measure
    honest wall-clock scaling.

    ``serial`` picks the execution path: ``True`` runs cells in-process
    one at a time (no fork, no pipes — the right shape for one-core
    boxes and debuggers), ``False`` forces the worker pool, and the
    default ``None`` auto-selects serial when only one worker is
    requested or the machine has a single CPU.  The aggregate report
    is byte-identical either way; the journal records which path ran.
    """
    if spec.target not in TARGETS:
        raise ConfigError(
            f"campaign {spec.name!r} names unknown cell target "
            f"{spec.target!r}; registered: {', '.join(sorted(TARGETS))}"
        )
    cells = spec.expand()
    spec_digest = spec.digest()
    if serial is None:
        serial = workers == 1 or (os.cpu_count() or 2) == 1
    execution = "serial" if serial else "pool"
    directory = Path(out_dir) if out_dir is not None else Path(
        f"campaign_{spec.name}"
    )
    directory.mkdir(parents=True, exist_ok=True)
    journal = Journal(directory / JOURNAL_FILENAME)
    cache = (
        ResultCache(cache_dir) if cache_dir is not None else ResultCache()
    ) if use_cache else None

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    resumed_digests: set[str] = set()
    if resume:
        journal.check_resumable(spec_digest)
        resumed_digests = journal.completed_digests()
        journal.append(
            {
                "event": "campaign_resume",
                "spec_digest": spec_digest,
                "execution": execution,
            }
        )
    else:
        journal.reset()
        journal.append(
            {
                "event": "campaign_start",
                "schema": JOURNAL_SCHEMA,
                "campaign": spec.name,
                "target": spec.target,
                "spec_digest": spec_digest,
                "cells": len(cells),
                "workers": workers,
                "execution": execution,
                "source_digest": cache.source if cache else None,
            }
        )

    outcomes: dict[int, CellOutcome] = {}
    jobs: list[Job] = []
    for cell in cells:
        if resume and cell.digest in resumed_digests and cache is not None:
            ledger = cache.get(cell.digest)
            if ledger is not None:
                outcomes[cell.index] = CellOutcome(
                    cell, "ok", ledger=ledger, resumed=True
                )
                note(
                    f"[{len(outcomes)}/{len(cells)}] {cell.label}: "
                    f"already complete (resume)"
                )
                continue
        if cache is not None and not resume:
            ledger = cache.get(cell.digest)
            if ledger is not None:
                outcomes[cell.index] = CellOutcome(
                    cell, "ok", ledger=ledger, cached=True
                )
                journal.append(
                    {
                        "event": "cell_done",
                        "index": cell.index,
                        "digest": cell.digest,
                        "label": cell.label,
                        "cached": True,
                        "attempts": 0,
                    }
                )
                note(
                    f"[{len(outcomes)}/{len(cells)}] {cell.label}: "
                    f"cache hit"
                )
                continue
        jobs.append(
            Job(cell.index, cell.target, cell.job_params(), cell.label)
        )

    cell_by_index = {cell.index: cell for cell in cells}
    done_counter = [len(outcomes)]

    def on_done(job: Job, result: JobResult) -> None:
        cell = cell_by_index[job.index]
        if result.status == "ok":
            outcomes[cell.index] = CellOutcome(
                cell,
                "ok",
                ledger=result.value,
                attempts=result.attempts,
                elapsed_s=result.elapsed_s,
            )
            if cache is not None:
                cache.put(cell.digest, result.value)
            journal.append(
                {
                    "event": "cell_done",
                    "index": cell.index,
                    "digest": cell.digest,
                    "label": cell.label,
                    "cached": False,
                    "attempts": result.attempts,
                    "elapsed_s": round(result.elapsed_s, 4),
                }
            )
        elif result.status == "failed":
            outcomes[cell.index] = CellOutcome(
                cell,
                "failed",
                error=result.error,
                attempts=result.attempts,
                elapsed_s=result.elapsed_s,
            )
            journal.append(
                {
                    "event": "cell_failed",
                    "index": cell.index,
                    "digest": cell.digest,
                    "label": cell.label,
                    "attempts": result.attempts,
                    "error": result.error,
                }
            )
        else:  # skipped (interrupted before running)
            outcomes[cell.index] = CellOutcome(
                cell, "skipped", error=result.error
            )
        done_counter[0] += 1
        suffix = {
            "ok": f"ok ({result.elapsed_s:.2f}s, "
            f"attempt {result.attempts})",
            "failed": f"FAILED: {result.error}",
            "skipped": "skipped (interrupted)",
        }[result.status]
        note(
            f"[{done_counter[0]}/{len(cells)}] {cell.label}: {suffix}"
        )

    interrupted = False
    if jobs:
        if serial:
            outcome: PoolOutcome = run_serial(jobs, on_done=on_done)
        else:
            pool = WorkerPool(
                workers=workers,
                timeout_s=timeout_s,
                max_retries=max_retries,
                backoff_s=backoff_s,
            )
            outcome = pool.run(jobs, on_done=on_done)
        interrupted = outcome.interrupted

    ordered = [outcomes[cell.index] for cell in cells]
    journal.append(
        {
            "event": "campaign_end",
            "ok": not any(o.status != "ok" for o in ordered)
            and not interrupted,
            "interrupted": interrupted,
            "cached": sum(1 for o in ordered if o.cached),
            "executed": sum(
                1
                for o in ordered
                if o.status == "ok" and not o.cached and not o.resumed
            ),
            "failed": sum(1 for o in ordered if o.status == "failed"),
        }
    )

    report = _aggregate_report(spec, ordered)
    from ..telemetry.ledger import write_ledger

    report_path = write_ledger(directory / REPORT_FILENAME, report)

    run = CampaignRun(
        spec=spec,
        outcomes=ordered,
        report=report,
        report_path=report_path,
        journal_path=journal.path,
        interrupted=interrupted,
    )
    run.lines.extend(_text_lines(run))
    return run


def _text_lines(run: CampaignRun) -> list[str]:
    spec = run.spec
    ok = [o for o in run.outcomes if o.status == "ok"]
    lines = [
        f"campaign {spec.name!r} ({spec.mode} over "
        f"{', '.join(spec.axes) or 'explicit cells'}): "
        f"{len(ok)}/{len(run.outcomes)} cells ok, "
        f"{run.cached_count} from cache, "
        f"{sum(1 for o in run.outcomes if o.resumed)} resumed, "
        f"{run.executed_count} executed"
    ]
    if run.interrupted:
        lines.append(
            "  interrupted: in-flight cells drained, remaining cells "
            "skipped; rerun with --resume to finish"
        )
    for outcome in run.failed + run.skipped:
        lines.append(
            f"  {outcome.status}: cell {outcome.cell.index} "
            f"[{outcome.cell.label}] — {outcome.error}"
        )
    executed = [o for o in run.outcomes if o.elapsed_s > 0]
    if executed:
        total = sum(o.elapsed_s for o in executed)
        slowest = max(executed, key=lambda o: o.elapsed_s)
        lines.append(
            f"  cell wall clock: {total:.2f}s total, slowest "
            f"{slowest.elapsed_s:.2f}s [{slowest.cell.label}]"
        )
    tables = (run.report or {}).get("campaign", {}).get("tables", {})
    for axis, table in tables.items():
        lines.append(f"  by {axis}:")
        for value, row in table.items():
            metrics = ", ".join(
                f"{metric} {row[metric]:.4g}"
                for metric in sorted(row)
                if metric != "cells"
            )
            lines.append(
                f"    {value:>8}: {metrics} ({row['cells']} cells)"
            )
    if run.report_path is not None:
        lines.append(f"  aggregate report -> {run.report_path}")
    lines.append(f"  journal -> {run.journal_path}")
    return lines
