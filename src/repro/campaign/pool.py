"""The campaign worker pool: one process per in-flight cell.

Cells are independent by construction (deterministic seeds, no shared
state), so the pool is a plain fan-out: up to ``workers`` subprocesses,
each executing one cell via :func:`repro.campaign.cells.run_cell` and
shipping the result back over a pipe.  What the pool adds over
``multiprocessing.Pool`` is fault shape:

- **Crash retry with backoff.**  A worker that dies without reporting
  (SIGKILL, OOM, segfault) is retried up to ``max_retries`` times, each
  attempt delayed by an exponentially growing backoff.  A cell that
  *raises* is not retried — simulator exceptions are deterministic, so
  a second attempt would fail identically.
- **Per-cell timeout.**  A cell that exceeds ``timeout_s`` wall seconds
  is killed and handled like a crash (retried, then failed).
- **Graceful SIGINT drain.**  The first Ctrl-C stops launching new
  cells but lets in-flight cells finish and report, so the journal and
  cache keep everything already paid for; the results return with
  ``interrupted`` set so the campaign can exit accordingly.  A second
  Ctrl-C abandons in-flight cells immediately.

The start method prefers ``fork`` (cheap, inherits the warm import
state) and falls back to ``spawn`` where fork is unavailable; targets
are module-level functions, so both work.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from ..errors import ConfigError

#: Wall-clock ceiling per cell attempt (seconds); None disables.
DEFAULT_TIMEOUT_S = 600.0

#: Crash/timeout retries per cell beyond the first attempt.
DEFAULT_MAX_RETRIES = 2

#: First retry delay; doubles per subsequent attempt.
DEFAULT_BACKOFF_S = 0.25

_POLL_S = 0.005


@dataclass(frozen=True)
class Job:
    """One schedulable cell execution."""

    index: int
    target: str
    params: dict
    label: str = ""


@dataclass
class JobResult:
    """Terminal outcome of one job."""

    index: int
    status: str  # ok | failed | skipped
    value: dict | None = None
    error: str | None = None
    attempts: int = 0
    elapsed_s: float = 0.0


@dataclass
class PoolOutcome:
    """Everything one :meth:`WorkerPool.run` call produced."""

    results: list[JobResult] = field(default_factory=list)
    interrupted: bool = False

    def by_index(self) -> dict[int, JobResult]:
        return {r.index: r for r in self.results}


def _execute(conn, target: str, params: dict) -> None:
    """Worker entry point: run one cell, ship (status, payload) back."""
    try:
        from .cells import run_cell

        value = run_cell(target, params)
        conn.send(("ok", value))
    except BaseException as error:  # report, never escape the worker
        conn.send(("error", f"{type(error).__name__}: {error}"))
    finally:
        conn.close()


def run_serial(jobs: list[Job], on_done=None) -> PoolOutcome:
    """Execute every job in-process, one after another.

    The degenerate pool for single-worker boxes: no subprocess, no
    pipe, no fork — each cell runs in the caller's interpreter.  The
    fault shape narrows accordingly: there is no crash/timeout retry
    (a crash takes the campaign down with it, as it would any plain
    script), a raising cell fails permanently after one attempt, and
    the first Ctrl-C skips every cell not yet started — the finished
    ones are already journaled, so ``--resume`` picks up from there.
    """
    from .cells import run_cell

    outcome = PoolOutcome()

    def finish(job: Job, result: JobResult) -> None:
        outcome.results.append(result)
        if on_done is not None:
            on_done(job, result)

    for job in jobs:
        if outcome.interrupted:
            finish(
                job,
                JobResult(
                    job.index,
                    "skipped",
                    error="campaign interrupted before this cell ran",
                ),
            )
            continue
        started = time.monotonic()
        try:
            value = run_cell(job.target, job.params)
        except KeyboardInterrupt:
            outcome.interrupted = True
            finish(
                job,
                JobResult(
                    job.index,
                    "skipped",
                    error="campaign interrupted before this cell ran",
                    attempts=1,
                ),
            )
            continue
        except Exception as error:
            finish(
                job,
                JobResult(
                    job.index,
                    "failed",
                    error=f"{type(error).__name__}: {error}",
                    attempts=1,
                    elapsed_s=time.monotonic() - started,
                ),
            )
            continue
        finish(
            job,
            JobResult(
                job.index,
                "ok",
                value=value,
                attempts=1,
                elapsed_s=time.monotonic() - started,
            ),
        )
    outcome.results.sort(key=lambda r: r.index)
    return outcome


@dataclass
class _Running:
    job: Job
    process: object
    conn: object
    started: float
    attempt: int


class WorkerPool:
    """Bounded-parallelism executor with crash retry and SIGINT drain."""

    def __init__(
        self,
        workers: int = 1,
        timeout_s: float | None = DEFAULT_TIMEOUT_S,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"pool needs >= 1 worker, got {workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError(
                f"cell timeout must be positive, got {timeout_s}"
            )
        if max_retries < 0:
            raise ConfigError(
                f"max retries must be >= 0, got {max_retries}"
            )
        if backoff_s < 0:
            raise ConfigError(f"backoff must be >= 0, got {backoff_s}")
        self.workers = workers
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    # --- scheduling -------------------------------------------------------------------

    def _launch(self, job: Job, attempt: int) -> _Running:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_execute,
            args=(child_conn, job.target, job.params),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Running(job, process, parent_conn, time.monotonic(), attempt)

    def run(self, jobs: list[Job], on_done=None) -> PoolOutcome:
        """Execute every job; results come back ordered by job index.

        ``on_done(job, result)`` fires as each job reaches a terminal
        state (in completion order — the caller journals these).
        """
        outcome = PoolOutcome()
        pending: list[tuple[float, int, Job]] = [
            (0.0, attempt_zero, job)
            for attempt_zero, job in enumerate(jobs)
        ]
        # (not_before, tiebreak, job); attempts tracked separately.
        attempts: dict[int, int] = {job.index: 0 for job in jobs}
        running: list[_Running] = []
        tiebreak = len(pending)

        def finish(job: Job, result: JobResult) -> None:
            outcome.results.append(result)
            if on_done is not None:
                on_done(job, result)

        while pending or running:
            try:
                now = time.monotonic()
                # Launch whatever fits, respecting retry backoff.
                if not outcome.interrupted:
                    ready = [
                        entry for entry in pending if entry[0] <= now
                    ]
                    for entry in sorted(ready, key=lambda e: e[1]):
                        if len(running) >= self.workers:
                            break
                        pending.remove(entry)
                        _, _, job = entry
                        attempts[job.index] += 1
                        running.append(
                            self._launch(job, attempts[job.index])
                        )
                # Collect finished / crashed / timed-out workers.
                still: list[_Running] = []
                for slot in running:
                    outcome_kind = None  # ok | error | crash
                    payload = None
                    if slot.conn.poll():
                        try:
                            outcome_kind, payload = slot.conn.recv()
                        except (EOFError, OSError):
                            outcome_kind = "crash"
                        slot.process.join()
                    elif not slot.process.is_alive():
                        slot.process.join()
                        outcome_kind = "crash"
                    elif (
                        self.timeout_s is not None
                        and now - slot.started > self.timeout_s
                    ):
                        slot.process.kill()
                        slot.process.join()
                        outcome_kind = "timeout"
                    if outcome_kind is None:
                        still.append(slot)
                        continue
                    slot.conn.close()
                    elapsed = time.monotonic() - slot.started
                    if outcome_kind == "ok":
                        finish(
                            slot.job,
                            JobResult(
                                slot.job.index,
                                "ok",
                                value=payload,
                                attempts=slot.attempt,
                                elapsed_s=elapsed,
                            ),
                        )
                    elif outcome_kind == "error":
                        # Deterministic failure: retrying cannot help.
                        finish(
                            slot.job,
                            JobResult(
                                slot.job.index,
                                "failed",
                                error=payload,
                                attempts=slot.attempt,
                                elapsed_s=elapsed,
                            ),
                        )
                    else:  # crash | timeout
                        reason = (
                            f"worker exceeded {self.timeout_s:g}s timeout"
                            if outcome_kind == "timeout"
                            else "worker died without reporting "
                            "(killed or crashed)"
                        )
                        if (
                            slot.attempt <= self.max_retries
                            and not outcome.interrupted
                        ):
                            delay = self.backoff_s * (
                                2 ** (slot.attempt - 1)
                            )
                            tiebreak += 1
                            pending.append(
                                (now + delay, tiebreak, slot.job)
                            )
                        else:
                            finish(
                                slot.job,
                                JobResult(
                                    slot.job.index,
                                    "failed",
                                    error=f"{reason}; gave up after "
                                    f"{slot.attempt} attempt(s)",
                                    attempts=slot.attempt,
                                    elapsed_s=elapsed,
                                ),
                            )
                running = still
                if outcome.interrupted and not running:
                    break
                if running or pending:
                    time.sleep(_POLL_S)
            except KeyboardInterrupt:
                if outcome.interrupted:
                    # Second interrupt: abandon in-flight cells.
                    for slot in running:
                        slot.process.kill()
                        slot.process.join()
                        slot.conn.close()
                    running = []
                    break
                outcome.interrupted = True

        if outcome.interrupted:
            done = {r.index for r in outcome.results}
            for job in jobs:
                if job.index not in done:
                    finish(
                        job,
                        JobResult(
                            job.index,
                            "skipped",
                            error="campaign interrupted before this "
                            "cell ran",
                            attempts=attempts.get(job.index, 0),
                        ),
                    )
        outcome.results.sort(key=lambda r: r.index)
        return outcome
