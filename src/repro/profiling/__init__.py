"""Thin facade over the latency profiler and bottleneck analyzer.

``repro.profiling`` is the stable import surface for performance
analysis; the implementation lives in :mod:`repro.telemetry.profiler`
and :mod:`repro.telemetry.attribution`.  Typical use::

    from repro.profiling import profile_run, analyze_bottlenecks

    telemetry = Telemetry(capacity=1 << 20)
    switch = RMTSwitch(config, telemetry=telemetry)
    ...  # run the workload
    run = profile_run(telemetry.trace, label="rmt")
    report = analyze_bottlenecks(run, telemetry.trace, telemetry.metrics)
"""

from ..telemetry.attribution import (
    AttributionRow,
    AttributionTable,
    BottleneckReport,
    CriticalComponent,
    LittlesLawCheck,
    analyze_bottlenecks,
    attribution_gap,
)
from ..telemetry.profiler import (
    BUCKETS,
    QUEUE_BUCKETS,
    PacketProfile,
    RunProfile,
    Segment,
    profile_chrome_events,
    profile_run,
)

__all__ = [
    "AttributionRow",
    "AttributionTable",
    "BottleneckReport",
    "BUCKETS",
    "CriticalComponent",
    "LittlesLawCheck",
    "PacketProfile",
    "QUEUE_BUCKETS",
    "RunProfile",
    "Segment",
    "analyze_bottlenecks",
    "attribution_gap",
    "profile_chrome_events",
    "profile_run",
]
