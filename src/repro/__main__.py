"""Entry point: ``python -m repro [artifact ...]``."""

from __future__ import annotations

import sys

from .errors import ConfigError
from .report import run


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] in ("-h", "--help"):
        from .report import ARTIFACTS

        print("usage: python -m repro [artifact ...]")
        print("artifacts:", ", ".join(sorted(ARTIFACTS)), "(default: all)")
        return 0
    try:
        for line in run(args or None):
            print(line)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
