"""Entry point: ``python -m repro [--json] [artifact ...]``.

Also hosts the telemetry tooling:

- ``python -m repro trace <workload>`` runs a reference workload with
  tracing enabled and writes a Chrome trace-event JSON timeline (load it
  in ``chrome://tracing`` or Perfetto).
- ``python -m repro profile <workload>`` attributes every packet's
  latency and reports bottlenecks.
- ``python -m repro monitor <workload>`` samples resource time-series on
  the simulation clock and writes a run ledger.
- ``python -m repro fabric <topology> <workload>`` simulates a
  multi-switch fabric (leaf-spine or fat-tree) end to end and writes a
  diffable run ledger.
- ``python -m repro serve <topology> <workload>`` streams open-loop,
  rate-controlled traffic into a continuously-running fabric, emitting
  rolling-window records with live SLO verdicts and a diffable serve
  ledger (exit 1 on SLO violation).
- ``python -m repro spans <topology> <workload>`` head-samples 1-in-N
  packets through a fabric (fast path live) and writes per-hop span
  timelines plus a diffable span ledger.
- ``python -m repro stateful <workload>`` runs one stateful-primitive
  workload (EFSM, replicated objects, state-compute replication) on one
  or both targets and writes a diffable stateful ledger.
- ``python -m repro diff <base> <new>`` compares two run ledgers and
  exits non-zero on regression.
- ``python -m repro campaign <spec>`` expands a declarative sweep into
  cells, runs them on a worker pool with caching and a resumable
  journal, and writes one diffable aggregate report.

Subcommands live in the :data:`_SUBCOMMANDS` registry; usage text,
``--help``, and unknown-subcommand errors are all generated from it, so
they cannot drift apart.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, NamedTuple

from .errors import ConfigError, SimulationError


class _Subcommand(NamedTuple):
    """One CLI subcommand: its usage synopsis and its handler."""

    usage: str
    handler: Callable[[list[str], bool], int]


def _parse_options(
    args: list[str],
    command: str,
    value_options: dict[str, str],
) -> tuple[list[str], dict[str, str]]:
    """Split ``args`` into positionals and ``--option value`` pairs.

    ``value_options`` maps accepted option flags to the destination key;
    every flag takes exactly one value.  Unknown dashed arguments raise.
    """
    positional: list[str] = []
    options: dict[str, str] = {}
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in value_options:
            if i + 1 >= len(args):
                raise ConfigError(f"{arg} requires a value")
            options[value_options[arg]] = args[i + 1]
            i += 2
        elif arg.startswith("-"):
            raise ConfigError(f"unknown {command} option {arg!r}")
        else:
            positional.append(arg)
            i += 1
    return positional, options


def _print_run(run, json_mode: bool) -> None:
    if json_mode:
        print(json.dumps(run.summary(), indent=1))
    else:
        for line in run.lines:
            print(line)


def _parse_seed(options: dict[str, str]) -> int | None:
    """The shared ``--seed`` option: a non-negative workload seed."""
    if "seed" not in options:
        return None
    try:
        return int(options["seed"])
    except ValueError:
        raise ConfigError(
            f"--seed must be an integer, got {options['seed']!r}"
        )


def _parse_sample(options: dict[str, str]) -> int | None:
    """The shared ``--sample`` option: head-sample 1 in N packets."""
    if "sample" not in options:
        return None
    try:
        sample = int(options["sample"])
    except ValueError:
        raise ConfigError(
            f"--sample must be an integer, got {options['sample']!r}"
        )
    if sample < 1:
        raise ConfigError(f"--sample must be >= 1, got {sample}")
    return sample


def _main_trace(args: list[str], json_mode: bool) -> int:
    from .telemetry.runner import run_trace

    positional, options = _parse_options(
        args, "trace", {"--out": "out", "--seed": "seed", "--sample": "sample"}
    )
    if len(positional) != 1:
        raise ConfigError(
            "trace takes exactly one workload name; "
            "see python -m repro --help"
        )
    run = run_trace(
        positional[0],
        out=options.get("out"),
        seed=_parse_seed(options),
        sample=_parse_sample(options),
    )
    _print_run(run, json_mode)
    return 0


def _main_spans(args: list[str], json_mode: bool) -> int:
    from .telemetry.runner import DEFAULT_SAMPLE, run_spans

    positional, options = _parse_options(
        args,
        "spans",
        {
            "--target": "target",
            "--sample": "sample",
            "--seed": "seed",
            "--ledger": "ledger",
            "--out": "ledger",  # alias, parallel to trace --out
            "--chrome": "chrome",
        },
    )
    if len(positional) != 2:
        raise ConfigError(
            "spans takes a topology spec and a workload name "
            "(e.g. spans leaf-spine-2x2 fabric-allreduce); "
            "see python -m repro --help"
        )
    run = run_spans(
        positional[0],
        positional[1],
        target=options.get("target", "both"),
        sample=_parse_sample(options) or DEFAULT_SAMPLE,
        seed=_parse_seed(options) or 0,
        ledger_out=options.get("ledger"),
        chrome_out=options.get("chrome"),
    )
    _print_run(run, json_mode)
    return 0


def _main_profile(args: list[str], json_mode: bool) -> int:
    from .telemetry.runner import run_profile

    positional, options = _parse_options(
        args, "profile", {"--chrome": "chrome", "--seed": "seed"}
    )
    if len(positional) != 1:
        raise ConfigError(
            "profile takes exactly one workload name; "
            "see python -m repro --help"
        )
    run = run_profile(
        positional[0],
        chrome_out=options.get("chrome"),
        seed=_parse_seed(options),
    )
    _print_run(run, json_mode)
    return 0


def _main_monitor(args: list[str], json_mode: bool) -> int:
    from .telemetry.runner import run_monitor

    positional, options = _parse_options(
        args,
        "monitor",
        {
            "--interval": "interval",
            "--csv": "csv",
            "--chrome": "chrome",
            "--ledger": "ledger",
            "--seed": "seed",
        },
    )
    if len(positional) != 1:
        raise ConfigError(
            "monitor takes exactly one workload name; "
            "see python -m repro --help"
        )
    interval_ns: float | None = None
    if "interval" in options:
        try:
            interval_ns = float(options["interval"])
        except ValueError:
            raise ConfigError(
                f"--interval must be a number of simulated nanoseconds, "
                f"got {options['interval']!r}"
            )
    run = run_monitor(
        positional[0],
        interval_ns=interval_ns,
        ledger_out=options.get("ledger"),
        csv_out=options.get("csv"),
        chrome_out=options.get("chrome"),
        seed=_parse_seed(options),
    )
    _print_run(run, json_mode)
    return 0


def _main_fabric(args: list[str], json_mode: bool) -> int:
    from .fabric import run_fabric
    from .telemetry.ledger import write_ledger

    positional, options = _parse_options(
        args,
        "fabric",
        {
            "--target": "target",
            "--placement": "placement",
            "--routing": "routing",
            "--coflows": "coflows",
            "--vector": "vector",
            "--load": "load",
            "--ledger": "ledger",
            "--seed": "seed",
        },
    )
    if len(positional) != 2:
        raise ConfigError(
            "fabric takes a topology spec and a workload name "
            "(e.g. fabric leaf-spine-2x2 fabric-allreduce); "
            "see python -m repro --help"
        )

    def _int_option(key: str, default: int) -> int:
        if key not in options:
            return default
        try:
            return int(options[key])
        except ValueError:
            raise ConfigError(
                f"--{key} must be an integer, got {options[key]!r}"
            )

    load = 1.0
    if "load" in options:
        try:
            load = float(options["load"])
        except ValueError:
            raise ConfigError(
                f"--load must be a number in (0, 1], got {options['load']!r}"
            )
    run = run_fabric(
        positional[0],
        positional[1],
        target=options.get("target", "adcp"),
        placement=options.get("placement", "ingress"),
        routing=options.get("routing", "ecmp"),
        seed=_parse_seed(options) or 0,
        coflows=_int_option("coflows", 2),
        vector=_int_option("vector", 64),
        load=load,
    )
    if "ledger" in options:
        path = write_ledger(options["ledger"], run.ledger())
        print(f"ledger: {path}", file=sys.stderr)
    if json_mode:
        print(json.dumps(run.summary(), indent=1))
    else:
        for line in run.lines():
            print(line)
    return 0


def _main_serve(args: list[str], json_mode: bool) -> int:
    from .serve import BurstPhase, parse_duration_ns, run_serve
    from .serve.runner import (
        DEFAULT_DURATION_NS,
        DEFAULT_RATE,
        DEFAULT_WINDOW_NS,
    )
    from .telemetry.ledger import write_ledger

    # serve takes repeated --slo and --burst flags, which the shared
    # single-value parser doesn't model; parse by hand, same error style.
    positional: list[str] = []
    options: dict[str, str] = {}
    slos: list[str] = []
    bursts: list[BurstPhase] = []
    value_options = {
        "--target": "target",
        "--placement": "placement",
        "--routing": "routing",
        "--rate": "rate",
        "--arrivals": "arrivals",
        "--duration": "duration",
        "--window": "window",
        "--ramp": "ramp",
        "--coflows": "coflows",
        "--vector": "vector",
        "--interval": "interval",
        "--ledger": "ledger",
        "--stream": "stream",
        "--seed": "seed",
        "--sample": "sample",
    }
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--slo":
            if i + 1 >= len(args):
                raise ConfigError("--slo requires an expression")
            slos.append(args[i + 1])
            i += 2
        elif arg == "--burst":
            if i + 1 >= len(args):
                raise ConfigError("--burst requires FACTOR@START:END")
            bursts.append(BurstPhase.parse(args[i + 1]))
            i += 2
        elif arg in value_options:
            if i + 1 >= len(args):
                raise ConfigError(f"{arg} requires a value")
            options[value_options[arg]] = args[i + 1]
            i += 2
        elif arg.startswith("-"):
            raise ConfigError(f"unknown serve option {arg!r}")
        else:
            positional.append(arg)
            i += 1
    if len(positional) != 2:
        raise ConfigError(
            "serve takes a topology spec and a workload name "
            "(e.g. serve leaf-spine-2x2 fabric-allreduce); "
            "see python -m repro --help"
        )

    def _int_option(key: str, default: int) -> int:
        if key not in options:
            return default
        try:
            return int(options[key])
        except ValueError:
            raise ConfigError(
                f"--{key} must be an integer, got {options[key]!r}"
            )

    def _duration_option(key: str, default_ns: float) -> float:
        if key not in options:
            return default_ns
        return parse_duration_ns(options[key])

    rate = DEFAULT_RATE
    if "rate" in options:
        try:
            rate = float(options["rate"])
        except ValueError:
            raise ConfigError(
                f"--rate must be a number, got {options['rate']!r}"
            )
    interval_ns: float | None = None
    if "interval" in options:
        try:
            interval_ns = float(options["interval"])
        except ValueError:
            raise ConfigError(
                f"--interval must be a number of ns, "
                f"got {options['interval']!r}"
            )

    stream_file = None
    if "stream" in options:
        stream_file = open(options["stream"], "w")

    def emit_window(record: dict) -> None:
        if json_mode:
            print(
                json.dumps({"type": "window", **record}, sort_keys=True),
                flush=True,
            )
        else:
            from .serve.runner import _window_line

            print(_window_line(record), flush=True)
        if stream_file is not None:
            stream_file.write(json.dumps(record, sort_keys=True) + "\n")
            stream_file.flush()

    try:
        run = run_serve(
            positional[0],
            positional[1],
            target=options.get("target", "adcp"),
            placement=options.get("placement", "ingress"),
            routing=options.get("routing", "ecmp"),
            seed=_parse_seed(options) or 0,
            rate=rate,
            arrivals=options.get("arrivals", "poisson"),
            duration_ns=_duration_option("duration", DEFAULT_DURATION_NS),
            window_ns=_duration_option("window", DEFAULT_WINDOW_NS),
            ramp_ns=_duration_option("ramp", 0.0) if "ramp" in options else 0.0,
            bursts=tuple(bursts),
            coflows=_int_option("coflows", 2),
            vector=_int_option("vector", 64),
            slos=slos,
            interval_ns=interval_ns,
            on_window=emit_window,
            sample=_parse_sample(options),
        )
        # Sampled span hops join the same JSONL stream as the windows,
        # tagged with their own record type.
        for record in run.span_records():
            line = json.dumps({"type": "span", **record}, sort_keys=True)
            if json_mode:
                print(line, flush=True)
            if stream_file is not None:
                stream_file.write(line + "\n")
    finally:
        if stream_file is not None:
            stream_file.close()
    if "ledger" in options:
        path = write_ledger(options["ledger"], run.ledger())
        print(f"ledger: {path}", file=sys.stderr)
    if json_mode:
        print(json.dumps(run.summary(), sort_keys=True))
    else:
        for line in run.lines():
            print(line)
    return run.exit_code


def _main_diff(args: list[str], json_mode: bool) -> int:
    from .telemetry.ledger import (
        DEFAULT_THRESHOLD,
        diff_ledgers,
        load_ledger,
    )

    positional, options = _parse_options(
        args, "diff", {"--threshold": "threshold"}
    )
    if len(positional) != 2:
        raise ConfigError(
            "diff takes exactly two ledger paths (base, new); "
            "see python -m repro --help"
        )
    threshold = DEFAULT_THRESHOLD
    if "threshold" in options:
        try:
            threshold = float(options["threshold"]) / 100.0
        except ValueError:
            raise ConfigError(
                f"--threshold must be a percentage, "
                f"got {options['threshold']!r}"
            )
    diff = diff_ledgers(
        load_ledger(positional[0]),
        load_ledger(positional[1]),
        threshold=threshold,
    )
    if json_mode:
        print(json.dumps(diff.to_json(), indent=1))
    else:
        for line in diff.lines():
            print(line)
    return diff.exit_code


def _main_campaign(args: list[str], json_mode: bool) -> int:
    from .campaign import resolve_spec, run_campaign
    from .campaign.pool import (
        DEFAULT_MAX_RETRIES,
        DEFAULT_TIMEOUT_S,
    )

    # campaign takes repeated --axis and boolean flags, which the shared
    # single-value parser doesn't model; parse by hand, same error style.
    positional: list[str] = []
    options: dict[str, str] = {}
    axes: dict[str, list] = {}
    resume = False
    use_cache = True
    value_options = {
        "--workers": "workers",
        "--out": "out",
        "--cache-dir": "cache_dir",
        "--timeout": "timeout",
        "--retries": "retries",
    }
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--resume":
            resume = True
            i += 1
        elif arg == "--no-cache":
            use_cache = False
            i += 1
        elif arg == "--axis":
            if i + 1 >= len(args):
                raise ConfigError("--axis requires name=v1,v2,...")
            axis, values = _parse_axis_override(args[i + 1])
            axes[axis] = values
            i += 2
        elif arg in value_options:
            if i + 1 >= len(args):
                raise ConfigError(f"{arg} requires a value")
            options[value_options[arg]] = args[i + 1]
            i += 2
        elif arg.startswith("-"):
            raise ConfigError(f"unknown campaign option {arg!r}")
        else:
            positional.append(arg)
            i += 1
    if len(positional) != 1:
        raise ConfigError(
            "campaign takes exactly one spec (a builtin name or a "
            ".toml/.json path); see python -m repro --help"
        )

    def _int_option(key: str, default: int, minimum: int) -> int:
        if key not in options:
            return default
        try:
            value = int(options[key])
        except ValueError:
            raise ConfigError(
                f"--{key} must be an integer, got {options[key]!r}"
            )
        if value < minimum:
            raise ConfigError(f"--{key} must be >= {minimum}")
        return value

    timeout_s: float | None = DEFAULT_TIMEOUT_S
    if "timeout" in options:
        try:
            timeout_s = float(options["timeout"])
        except ValueError:
            raise ConfigError(
                f"--timeout must be a number of seconds, "
                f"got {options['timeout']!r}"
            )
        if timeout_s <= 0:
            timeout_s = None  # 0 or negative disables the timeout

    spec = resolve_spec(positional[0]).restrict_axes(axes)
    run = run_campaign(
        spec,
        workers=_int_option("workers", 1, 1),
        resume=resume,
        out_dir=options.get("out"),
        cache_dir=options.get("cache_dir"),
        use_cache=use_cache,
        timeout_s=timeout_s,
        max_retries=_int_option("retries", DEFAULT_MAX_RETRIES, 0),
        progress=lambda message: print(message, file=sys.stderr, flush=True),
    )
    _print_run(run, json_mode)
    return run.exit_code


def _parse_axis_override(text: str) -> tuple[str, list]:
    """Parse ``name=v1,v2`` into an axis override, coercing scalars."""
    if "=" not in text:
        raise ConfigError(
            f"--axis expects name=v1,v2,..., got {text!r}"
        )
    axis, _, raw = text.partition("=")
    if not axis or not raw:
        raise ConfigError(
            f"--axis expects name=v1,v2,..., got {text!r}"
        )
    values: list = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        if token in ("true", "false"):
            values.append(token == "true")
            continue
        try:
            values.append(int(token))
            continue
        except ValueError:
            pass
        try:
            values.append(float(token))
            continue
        except ValueError:
            pass
        values.append(token)
    if not values:
        raise ConfigError(f"--axis {axis} needs at least one value")
    return axis, values


def _main_stateful(args: list[str], json_mode: bool) -> int:
    from .stateful.runner import run_stateful

    positional, options = _parse_options(
        args,
        "stateful",
        {
            "--target": "target",
            "--topology": "topology",
            "--flows": "flows",
            "--skew": "skew",
            "--packets": "packets",
            "--ledger": "ledger",
            "--seed": "seed",
        },
    )
    if len(positional) != 1:
        raise ConfigError(
            "stateful takes exactly one workload name "
            "(tokenbucket, synflood, heavyhitter, keycache); "
            "see python -m repro --help"
        )

    def _int_option(key: str, default: int) -> int:
        if key not in options:
            return default
        try:
            return int(options[key])
        except ValueError:
            raise ConfigError(
                f"--{key} must be an integer, got {options[key]!r}"
            )

    try:
        skew = float(options.get("skew", 1.2))
    except ValueError:
        raise ConfigError(f"--skew must be a number, got {options['skew']!r}")
    run = run_stateful(
        positional[0],
        target=options.get("target", "both"),
        topology=options.get("topology", "single"),
        flows=_int_option("flows", 64),
        skew=skew,
        packets=_int_option("packets", 400),
        seed=_parse_seed(options),
        ledger_out=options.get("ledger"),
    )
    _print_run(run, json_mode)
    return 0


#: The single source of truth for subcommands: usage text, ``--help``,
#: dispatch, and unknown-subcommand hints all derive from this table.
_SUBCOMMANDS: dict[str, _Subcommand] = {
    "trace": _Subcommand(
        "trace <workload> [--out PATH] [--sample N] [--seed N] [--json]",
        _main_trace,
    ),
    "profile": _Subcommand(
        "profile <workload> [--chrome PATH] [--seed N] [--json]",
        _main_profile,
    ),
    "monitor": _Subcommand(
        "monitor <workload> [--interval NS] [--ledger PATH] "
        "[--csv PATH] [--chrome PATH] [--seed N] [--json]",
        _main_monitor,
    ),
    "fabric": _Subcommand(
        "fabric <topology> <workload> [--target rmt|adcp] "
        "[--placement ingress|central|hash] [--routing ecmp|flowlet] "
        "[--coflows N] [--vector N] [--load F] [--ledger PATH] "
        "[--seed N] [--json]",
        _main_fabric,
    ),
    "serve": _Subcommand(
        "serve <topology> <workload> [--target rmt|adcp] "
        "[--placement ingress|central|hash] [--routing ecmp|flowlet] "
        "[--rate F] [--arrivals poisson|periodic] [--duration DUR] "
        "[--window DUR] [--ramp DUR] [--burst FACTOR@START:END] "
        "[--slo METRIC<=BOUND ...] [--coflows N] [--vector N] "
        "[--interval NS] [--sample N] [--ledger PATH] [--stream PATH] "
        "[--seed N] [--json]",
        _main_serve,
    ),
    "spans": _Subcommand(
        "spans <topology> <workload> [--target rmt|adcp|both] "
        "[--sample N] [--ledger PATH] [--chrome PATH] [--seed N] [--json]",
        _main_spans,
    ),
    "stateful": _Subcommand(
        "stateful <workload> [--target rmt|adcp|both] "
        "[--topology single|<fabric>] [--flows N] [--skew F] "
        "[--packets N] [--ledger PATH] [--seed N] [--json]",
        _main_stateful,
    ),
    "diff": _Subcommand(
        "diff <base_ledger> <new_ledger> [--threshold PCT] [--json]",
        _main_diff,
    ),
    "campaign": _Subcommand(
        "campaign <spec.toml|spec.json|builtin> [--workers N] "
        "[--resume] [--out DIR] [--axis name=v1,v2] [--timeout S] "
        "[--retries N] [--cache-dir DIR] [--no-cache] [--json]",
        _main_campaign,
    ),
}


def _usage_lines() -> list[str]:
    from .report import ARTIFACTS
    from .telemetry.runner import TRACEABLE

    lines = ["usage: python -m repro [--json] [artifact ...]"]
    lines.extend(
        f"       python -m repro {sub.usage}"
        for sub in _SUBCOMMANDS.values()
    )
    lines.append(
        f"artifacts: {', '.join(sorted(ARTIFACTS))} (default: all)"
    )
    lines.append(
        f"trace/profile/monitor workloads: {', '.join(sorted(TRACEABLE))}"
    )
    from .fabric.workloads import FABRIC_WORKLOADS

    from .stateful.workloads import (
        FABRIC_STATEFUL_WORKLOADS,
        STATEFUL_WORKLOADS,
    )

    lines.append(
        f"fabric/serve workloads: "
        f"{', '.join(FABRIC_WORKLOADS + FABRIC_STATEFUL_WORKLOADS)} on "
        f"leaf-spine-LxS[xH], fat-tree-kK, or single-N topologies"
    )
    lines.append(
        f"stateful workloads: {', '.join(STATEFUL_WORKLOADS)} "
        f"(EFSM/replicated/SCR primitives; see docs/PRIMITIVES.md)"
    )
    lines.append(
        "serve streams rolling-window records live (JSONL with --json); "
        "exit codes: 0 SLOs met, 1 SLO violated, 2 usage error "
        "(durations accept ns/us/ms/s suffixes, e.g. --window 1us)"
    )
    lines.append(
        "spans head-samples 1 in N packets (default 16) through a fabric "
        "with the fast path live and writes a diffable span ledger; "
        "trace --sample N merges span slices into the full timeline"
    )
    lines.append(
        "diff compares two run ledgers written by monitor; it exits 1 "
        "when any series regressed past the threshold (default 5%)"
    )
    from .campaign.spec import BUILTIN_CAMPAIGNS

    lines.append(
        f"campaign builtins: {', '.join(sorted(BUILTIN_CAMPAIGNS))}; "
        f"exit codes: 0 ok, 1 cell failure/interrupt, 2 bad spec"
    )
    return lines


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    json_mode = "--json" in args
    args = [a for a in args if a != "--json"]
    if args and args[0] in ("-h", "--help"):
        for line in _usage_lines():
            print(line)
        return 0
    try:
        if args and args[0] in _SUBCOMMANDS:
            return _SUBCOMMANDS[args[0]].handler(args[1:], json_mode)
        from .report import run_structured

        sections = run_structured(args or None)
        if json_mode:
            print(json.dumps(sections, indent=1))
        else:
            for report in sections.values():
                for line in report:
                    print(line)
                print()
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        if args and args[0] not in _SUBCOMMANDS:
            print(
                f"subcommands: {', '.join(_SUBCOMMANDS)}",
                file=sys.stderr,
            )
        return 2
    except SimulationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
