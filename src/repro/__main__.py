"""Entry point: ``python -m repro [--json] [artifact ...]``.

Also hosts the telemetry runner: ``python -m repro trace <workload>``
runs a reference workload with tracing enabled and writes a Chrome
trace-event JSON timeline (load it in ``chrome://tracing`` or Perfetto).
"""

from __future__ import annotations

import json
import sys

from .errors import ConfigError, SimulationError


def _usage_lines() -> list[str]:
    from .report import ARTIFACTS
    from .telemetry.runner import TRACEABLE

    return [
        "usage: python -m repro [--json] [artifact ...]",
        "       python -m repro trace <workload> [--out PATH] [--json]",
        "       python -m repro profile <workload> [--chrome PATH] [--json]",
        f"artifacts: {', '.join(sorted(ARTIFACTS))} (default: all)",
        f"trace/profile workloads: {', '.join(sorted(TRACEABLE))}",
    ]


def _main_trace(args: list[str], json_mode: bool) -> int:
    from .telemetry.runner import run_trace

    out: str | None = None
    positional: list[str] = []
    i = 0
    while i < len(args):
        if args[i] == "--out":
            if i + 1 >= len(args):
                raise ConfigError("--out requires a path")
            out = args[i + 1]
            i += 2
        elif args[i].startswith("-"):
            raise ConfigError(f"unknown trace option {args[i]!r}")
        else:
            positional.append(args[i])
            i += 1
    if len(positional) != 1:
        raise ConfigError(
            "trace takes exactly one workload name; "
            "see python -m repro --help"
        )
    run = run_trace(positional[0], out=out)
    if json_mode:
        print(json.dumps(run.summary(), indent=1))
    else:
        for line in run.lines:
            print(line)
    return 0


def _main_profile(args: list[str], json_mode: bool) -> int:
    from .telemetry.runner import run_profile

    chrome: str | None = None
    positional: list[str] = []
    i = 0
    while i < len(args):
        if args[i] == "--chrome":
            if i + 1 >= len(args):
                raise ConfigError("--chrome requires a path")
            chrome = args[i + 1]
            i += 2
        elif args[i].startswith("-"):
            raise ConfigError(f"unknown profile option {args[i]!r}")
        else:
            positional.append(args[i])
            i += 1
    if len(positional) != 1:
        raise ConfigError(
            "profile takes exactly one workload name; "
            "see python -m repro --help"
        )
    run = run_profile(positional[0], chrome_out=chrome)
    if json_mode:
        print(json.dumps(run.summary(), indent=1))
    else:
        for line in run.lines:
            print(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    json_mode = "--json" in args
    args = [a for a in args if a != "--json"]
    if args and args[0] in ("-h", "--help"):
        for line in _usage_lines():
            print(line)
        return 0
    try:
        if args and args[0] == "trace":
            return _main_trace(args[1:], json_mode)
        if args and args[0] == "profile":
            return _main_profile(args[1:], json_mode)
        from .report import run_structured

        sections = run_structured(args or None)
        if json_mode:
            print(json.dumps(sections, indent=1))
        else:
            for report in sections.values():
                for line in report:
                    print(line)
                print()
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SimulationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
