"""Entry point: ``python -m repro [--json] [artifact ...]``.

Also hosts the telemetry tooling:

- ``python -m repro trace <workload>`` runs a reference workload with
  tracing enabled and writes a Chrome trace-event JSON timeline (load it
  in ``chrome://tracing`` or Perfetto).
- ``python -m repro profile <workload>`` attributes every packet's
  latency and reports bottlenecks.
- ``python -m repro monitor <workload>`` samples resource time-series on
  the simulation clock and writes a run ledger.
- ``python -m repro diff <base> <new>`` compares two run ledgers and
  exits non-zero on regression.

Subcommands live in the :data:`_SUBCOMMANDS` registry; usage text,
``--help``, and unknown-subcommand errors are all generated from it, so
they cannot drift apart.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, NamedTuple

from .errors import ConfigError, SimulationError


class _Subcommand(NamedTuple):
    """One CLI subcommand: its usage synopsis and its handler."""

    usage: str
    handler: Callable[[list[str], bool], int]


def _parse_options(
    args: list[str],
    command: str,
    value_options: dict[str, str],
) -> tuple[list[str], dict[str, str]]:
    """Split ``args`` into positionals and ``--option value`` pairs.

    ``value_options`` maps accepted option flags to the destination key;
    every flag takes exactly one value.  Unknown dashed arguments raise.
    """
    positional: list[str] = []
    options: dict[str, str] = {}
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in value_options:
            if i + 1 >= len(args):
                raise ConfigError(f"{arg} requires a value")
            options[value_options[arg]] = args[i + 1]
            i += 2
        elif arg.startswith("-"):
            raise ConfigError(f"unknown {command} option {arg!r}")
        else:
            positional.append(arg)
            i += 1
    return positional, options


def _print_run(run, json_mode: bool) -> None:
    if json_mode:
        print(json.dumps(run.summary(), indent=1))
    else:
        for line in run.lines:
            print(line)


def _main_trace(args: list[str], json_mode: bool) -> int:
    from .telemetry.runner import run_trace

    positional, options = _parse_options(args, "trace", {"--out": "out"})
    if len(positional) != 1:
        raise ConfigError(
            "trace takes exactly one workload name; "
            "see python -m repro --help"
        )
    run = run_trace(positional[0], out=options.get("out"))
    _print_run(run, json_mode)
    return 0


def _main_profile(args: list[str], json_mode: bool) -> int:
    from .telemetry.runner import run_profile

    positional, options = _parse_options(
        args, "profile", {"--chrome": "chrome"}
    )
    if len(positional) != 1:
        raise ConfigError(
            "profile takes exactly one workload name; "
            "see python -m repro --help"
        )
    run = run_profile(positional[0], chrome_out=options.get("chrome"))
    _print_run(run, json_mode)
    return 0


def _main_monitor(args: list[str], json_mode: bool) -> int:
    from .telemetry.runner import run_monitor

    positional, options = _parse_options(
        args,
        "monitor",
        {
            "--interval": "interval",
            "--csv": "csv",
            "--chrome": "chrome",
            "--ledger": "ledger",
        },
    )
    if len(positional) != 1:
        raise ConfigError(
            "monitor takes exactly one workload name; "
            "see python -m repro --help"
        )
    interval_ns: float | None = None
    if "interval" in options:
        try:
            interval_ns = float(options["interval"])
        except ValueError:
            raise ConfigError(
                f"--interval must be a number of simulated nanoseconds, "
                f"got {options['interval']!r}"
            )
    run = run_monitor(
        positional[0],
        interval_ns=interval_ns,
        ledger_out=options.get("ledger"),
        csv_out=options.get("csv"),
        chrome_out=options.get("chrome"),
    )
    _print_run(run, json_mode)
    return 0


def _main_diff(args: list[str], json_mode: bool) -> int:
    from .telemetry.ledger import (
        DEFAULT_THRESHOLD,
        diff_ledgers,
        load_ledger,
    )

    positional, options = _parse_options(
        args, "diff", {"--threshold": "threshold"}
    )
    if len(positional) != 2:
        raise ConfigError(
            "diff takes exactly two ledger paths (base, new); "
            "see python -m repro --help"
        )
    threshold = DEFAULT_THRESHOLD
    if "threshold" in options:
        try:
            threshold = float(options["threshold"]) / 100.0
        except ValueError:
            raise ConfigError(
                f"--threshold must be a percentage, "
                f"got {options['threshold']!r}"
            )
    diff = diff_ledgers(
        load_ledger(positional[0]),
        load_ledger(positional[1]),
        threshold=threshold,
    )
    if json_mode:
        print(json.dumps(diff.to_json(), indent=1))
    else:
        for line in diff.lines():
            print(line)
    return diff.exit_code


#: The single source of truth for subcommands: usage text, ``--help``,
#: dispatch, and unknown-subcommand hints all derive from this table.
_SUBCOMMANDS: dict[str, _Subcommand] = {
    "trace": _Subcommand(
        "trace <workload> [--out PATH] [--json]", _main_trace
    ),
    "profile": _Subcommand(
        "profile <workload> [--chrome PATH] [--json]", _main_profile
    ),
    "monitor": _Subcommand(
        "monitor <workload> [--interval NS] [--ledger PATH] "
        "[--csv PATH] [--chrome PATH] [--json]",
        _main_monitor,
    ),
    "diff": _Subcommand(
        "diff <base_ledger> <new_ledger> [--threshold PCT] [--json]",
        _main_diff,
    ),
}


def _usage_lines() -> list[str]:
    from .report import ARTIFACTS
    from .telemetry.runner import TRACEABLE

    lines = ["usage: python -m repro [--json] [artifact ...]"]
    lines.extend(
        f"       python -m repro {sub.usage}"
        for sub in _SUBCOMMANDS.values()
    )
    lines.append(
        f"artifacts: {', '.join(sorted(ARTIFACTS))} (default: all)"
    )
    lines.append(
        f"trace/profile/monitor workloads: {', '.join(sorted(TRACEABLE))}"
    )
    lines.append(
        "diff compares two run ledgers written by monitor; it exits 1 "
        "when any series regressed past the threshold (default 5%)"
    )
    return lines


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    json_mode = "--json" in args
    args = [a for a in args if a != "--json"]
    if args and args[0] in ("-h", "--help"):
        for line in _usage_lines():
            print(line)
        return 0
    try:
        if args and args[0] in _SUBCOMMANDS:
            return _SUBCOMMANDS[args[0]].handler(args[1:], json_mode)
        from .report import run_structured

        sections = run_structured(args or None)
        if json_mode:
            print(json.dumps(sections, indent=1))
        else:
            for report in sections.values():
                for line in report:
                    print(line)
                print()
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        if args and args[0] not in _SUBCOMMANDS:
            print(
                f"subcommands: {', '.join(_SUBCOMMANDS)}",
                file=sys.stderr,
            )
        return 2
    except SimulationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
