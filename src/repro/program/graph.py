"""The program dependency graph.

Tables have ordering constraints: a *match* dependency means table B reads
a field table A's actions write (B must be in a strictly later stage); an
*action* dependency means both write the same field (B may share A's stage
only if the hardware sequences actions, which RMT does not — we treat it as
a later-stage constraint too, the conservative reading).  The graph's
longest path therefore lower-bounds the stages a program needs, which is
why "delaying computations until the egress pipeline ... reduc[es] the
total stages involved in the flow's computation by half" matters.
"""

from __future__ import annotations

from enum import Enum

import networkx as nx

from ..errors import CompileError, ConfigError
from .spec import TableSpec


class DependencyKind(Enum):
    """Why one table must follow another."""

    MATCH = "match"    # successor matches on a field the predecessor writes
    ACTION = "action"  # both write the same field
    CONTROL = "control"  # successor's applicability depends on predecessor's result


class ProgramGraph:
    """Tables plus dependencies, with stage-level scheduling queries."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._graph = nx.DiGraph()

    # --- construction ---------------------------------------------------------

    def add_table(self, spec: TableSpec) -> None:
        if spec.name in self._graph:
            raise ConfigError(f"duplicate table {spec.name!r}")
        self._graph.add_node(spec.name, spec=spec)

    def add_dependency(
        self, before: str, after: str, kind: DependencyKind = DependencyKind.MATCH
    ) -> None:
        for name in (before, after):
            if name not in self._graph:
                raise ConfigError(f"unknown table {name!r}")
        if before == after:
            raise ConfigError(f"table {before!r} cannot depend on itself")
        self._graph.add_edge(before, after, kind=kind)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(before, after)
            raise CompileError(
                f"dependency {before!r} -> {after!r} creates a cycle"
            )

    # --- queries ----------------------------------------------------------------

    def tables(self) -> list[TableSpec]:
        return [self._graph.nodes[n]["spec"] for n in self._graph.nodes]

    def table(self, name: str) -> TableSpec:
        if name not in self._graph:
            raise ConfigError(f"unknown table {name!r}")
        return self._graph.nodes[name]["spec"]

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return len(self._graph)

    def dependencies(self, name: str) -> list[tuple[str, DependencyKind]]:
        """Tables that must precede ``name``."""
        return [
            (pred, self._graph.edges[pred, name]["kind"])
            for pred in self._graph.predecessors(name)
        ]

    def levels(self) -> list[list[TableSpec]]:
        """Stage levels: tables in level i depend only on levels < i.

        This is the minimal-stage schedule ignoring resource limits; the
        compiler then packs levels into physical stages subject to MAU and
        memory constraints.
        """
        order: list[list[TableSpec]] = []
        for generation in nx.topological_generations(self._graph):
            order.append(
                sorted(
                    (self._graph.nodes[n]["spec"] for n in generation),
                    key=lambda s: s.name,
                )
            )
        return order

    @property
    def depth(self) -> int:
        """Length of the longest dependency chain (minimum stages needed)."""
        if len(self._graph) == 0:
            return 0
        return nx.dag_longest_path_length(self._graph) + 1

    def critical_path(self) -> list[str]:
        """Table names along the longest dependency chain."""
        if len(self._graph) == 0:
            return []
        return list(nx.dag_longest_path(self._graph))
