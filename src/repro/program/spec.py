"""Table and action specifications — the program's declarative surface."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..tables.mat import MatchKind


@dataclass(frozen=True)
class ActionSpec:
    """Declared action: a name and how many VLIW slots it needs."""

    name: str
    primitive_count: int = 1

    def __post_init__(self) -> None:
        if self.primitive_count < 0:
            raise ConfigError(
                f"action {self.name!r} primitive count must be >= 0"
            )


@dataclass(frozen=True)
class TableSpec:
    """Declared match-action table.

    Attributes:
        name: Unique table name within the program.
        kind: Match semantics (exact/ternary/LPM) — selects SRAM vs TCAM.
        key_width_bits: Width of the lookup key.
        capacity: Entries the table must hold.
        keys_per_packet: Parallel lookups one packet performs against this
            table — the quantity that forces replication on scalar targets.
        actions: Actions entries may invoke.
        stateful_bits: Register storage attached to the table (0 for pure
            lookup tables).
    """

    name: str
    kind: MatchKind
    key_width_bits: int
    capacity: int
    keys_per_packet: int = 1
    actions: tuple[ActionSpec, ...] = field(default_factory=tuple)
    stateful_bits: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("table name must be non-empty")
        if self.key_width_bits <= 0:
            raise ConfigError(f"table {self.name!r}: key width must be positive")
        if self.capacity <= 0:
            raise ConfigError(f"table {self.name!r}: capacity must be positive")
        if self.keys_per_packet < 1:
            raise ConfigError(
                f"table {self.name!r}: keys per packet must be >= 1"
            )
        if self.stateful_bits < 0:
            raise ConfigError(f"table {self.name!r}: stateful bits must be >= 0")

    @property
    def max_action_slots(self) -> int:
        """Widest action attached to the table."""
        if not self.actions:
            return 0
        return max(a.primitive_count for a in self.actions)
