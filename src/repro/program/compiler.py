"""Stage allocation: mapping a program onto a physical pipeline.

The compiler performs level-by-level list scheduling: tables become
eligible once all their dependencies are placed in earlier stages, and each
stage packs eligible tables greedily subject to three budgets — match-action
units, SRAM blocks, and TCAM blocks.

The scalar-vs-array difference is concentrated in
:meth:`Compiler._instances_for`: a scalar target must *replicate* a table
``keys_per_packet`` times (one copy per parallel key, each with its own MAU
and its own full set of memory blocks), while an array target places one
copy and charges ``keys_per_packet`` MAUs sharing that copy's memory —
Figure 3 versus Figure 6 in one function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompileError, ConfigError
from ..tables.memory import (
    DEFAULT_SRAM_BLOCK,
    DEFAULT_TCAM_BLOCK,
    MemoryBlock,
    MemoryKind,
)
from .graph import ProgramGraph
from .spec import TableSpec


@dataclass(frozen=True)
class TargetModel:
    """Resource envelope of one pipeline (the compiler's view of a chip).

    Attributes:
        name: Label for reports.
        stages: Physical match-action stages.
        maus_per_stage: Match-action units per stage (16 in the paper).
        sram_blocks_per_stage / tcam_blocks_per_stage: Memory pools.
        array_width: Maximum parallel lookups one table instance supports
            (1 = scalar/RMT; 8 or 16 = ADCP array mode).
        action_slots: VLIW instruction slots per MAU.
    """

    name: str
    stages: int = 12
    maus_per_stage: int = 16
    sram_blocks_per_stage: int = 80
    tcam_blocks_per_stage: int = 24
    array_width: int = 1
    action_slots: int = 8
    sram_geometry: MemoryBlock = DEFAULT_SRAM_BLOCK
    tcam_geometry: MemoryBlock = DEFAULT_TCAM_BLOCK

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ConfigError(f"target {self.name!r} needs at least one stage")
        if self.maus_per_stage < 1:
            raise ConfigError(f"target {self.name!r} needs at least one MAU")
        if self.array_width < 1:
            raise ConfigError(
                f"target {self.name!r} array width must be >= 1"
            )

    @property
    def is_array_capable(self) -> bool:
        return self.array_width > 1

    def blocks_for(self, spec: TableSpec) -> tuple[MemoryKind, int]:
        """Blocks one *copy* of ``spec`` consumes (match memory + state)."""
        kind = spec.kind.memory_kind
        geometry = (
            self.sram_geometry if kind is MemoryKind.SRAM else self.tcam_geometry
        )
        wide = (spec.key_width_bits + geometry.width_bits - 1) // geometry.width_bits
        deep = (spec.capacity + geometry.entries - 1) // geometry.entries
        blocks = wide * deep
        if spec.stateful_bits > 0:
            state_blocks = (
                spec.stateful_bits + self.sram_geometry.bits - 1
            ) // self.sram_geometry.bits
            if kind is MemoryKind.SRAM:
                blocks += state_blocks
            else:
                # Stateful memory is always SRAM; report it separately below.
                pass
        return kind, blocks

    def stateful_sram_blocks(self, spec: TableSpec) -> int:
        if spec.stateful_bits <= 0:
            return 0
        return (spec.stateful_bits + self.sram_geometry.bits - 1) // self.sram_geometry.bits


@dataclass
class TableInstance:
    """One placed copy of a table (replica index > 0 means a scalar copy)."""

    spec: TableSpec
    replica: int
    maus: int
    sram_blocks: int
    tcam_blocks: int


@dataclass
class StagePlacement:
    """What one physical stage ended up holding."""

    stage: int
    instances: list[TableInstance] = field(default_factory=list)

    @property
    def maus_used(self) -> int:
        return sum(i.maus for i in self.instances)

    @property
    def sram_used(self) -> int:
        return sum(i.sram_blocks for i in self.instances)

    @property
    def tcam_used(self) -> int:
        return sum(i.tcam_blocks for i in self.instances)


@dataclass
class Allocation:
    """Result of compiling a program onto a target."""

    target: TargetModel
    placements: list[StagePlacement]
    replication: dict[str, int]

    @property
    def stages_used(self) -> int:
        return sum(1 for p in self.placements if p.instances)

    @property
    def total_sram_blocks(self) -> int:
        return sum(p.sram_used for p in self.placements)

    @property
    def total_tcam_blocks(self) -> int:
        return sum(p.tcam_used for p in self.placements)

    @property
    def total_maus(self) -> int:
        return sum(p.maus_used for p in self.placements)

    def replication_factor(self, table: str) -> int:
        """Copies placed for ``table`` (1 on array targets)."""
        if table not in self.replication:
            raise ConfigError(f"table {table!r} was not allocated")
        return self.replication[table]

    def effective_capacity(self, table: str) -> int:
        """Distinct entries the program can actually hold for ``table``.

        Replicated copies hold the *same* entries, so capacity does not
        multiply — this is the "using it poorly" of Figure 3.
        """
        for placement in self.placements:
            for instance in placement.instances:
                if instance.spec.name == table:
                    return instance.spec.capacity
        raise ConfigError(f"table {table!r} was not allocated")

    def stage_of(self, table: str, replica: int = 0) -> int:
        for placement in self.placements:
            for instance in placement.instances:
                if instance.spec.name == table and instance.replica == replica:
                    return placement.stage
        raise ConfigError(f"table {table!r} replica {replica} was not allocated")


class Compiler:
    """Maps :class:`ProgramGraph` programs onto :class:`TargetModel` targets."""

    def __init__(self, target: TargetModel) -> None:
        self.target = target

    def _instances_for(self, spec: TableSpec) -> list[TableInstance]:
        """Expand one spec into placed instances per the target's discipline."""
        target = self.target
        if spec.max_action_slots > target.action_slots:
            raise CompileError(
                f"table {spec.name!r} needs {spec.max_action_slots} action "
                f"slots, target {target.name!r} has {target.action_slots}"
            )
        kind, blocks = target.blocks_for(spec)
        sram = blocks if kind is MemoryKind.SRAM else target.stateful_sram_blocks(spec)
        tcam = blocks if kind is MemoryKind.TCAM else 0

        if spec.keys_per_packet <= target.array_width:
            if spec.keys_per_packet == 1:
                # Plain scalar table: one MAU, one copy.
                return [TableInstance(spec, 0, 1, sram, tcam)]
            # Array mode: one copy, a group of MAUs sharing its memory.
            return [TableInstance(spec, 0, spec.keys_per_packet, sram, tcam)]

        if target.is_array_capable:
            raise CompileError(
                f"table {spec.name!r} needs {spec.keys_per_packet} parallel "
                f"keys, target {target.name!r} arrays are at most "
                f"{target.array_width} wide"
            )
        # Scalar target with k keys per packet: k full replicas (Figure 3).
        return [
            TableInstance(spec, replica, 1, sram, tcam)
            for replica in range(spec.keys_per_packet)
        ]

    def allocate(self, program: ProgramGraph) -> Allocation:
        """Compile ``program``; raises :class:`CompileError` if it cannot fit."""
        target = self.target
        placements = [StagePlacement(i) for i in range(target.stages)]
        replication: dict[str, int] = {}
        next_free_stage = 0

        for level in program.levels():
            level_start = next_free_stage
            level_end = level_start  # last stage this level touched
            stage_cursor = level_start
            for spec in level:
                instances = self._instances_for(spec)
                replication[spec.name] = len(instances)
                for instance in instances:
                    stage = self._place_instance(
                        placements, instance, stage_cursor
                    )
                    stage_cursor = stage  # later replicas may share the stage
                    level_end = max(level_end, stage)
            next_free_stage = level_end + 1

        return Allocation(target, placements, replication)

    def _place_instance(
        self,
        placements: list[StagePlacement],
        instance: TableInstance,
        earliest: int,
    ) -> int:
        target = self.target
        for stage in range(earliest, target.stages):
            placement = placements[stage]
            if placement.maus_used + instance.maus > target.maus_per_stage:
                continue
            if placement.sram_used + instance.sram_blocks > target.sram_blocks_per_stage:
                continue
            if placement.tcam_used + instance.tcam_blocks > target.tcam_blocks_per_stage:
                continue
            placement.instances.append(instance)
            return stage
        raise CompileError(
            f"table {instance.spec.name!r} (replica {instance.replica}) does "
            f"not fit: needs {instance.maus} MAUs, {instance.sram_blocks} "
            f"SRAM and {instance.tcam_blocks} TCAM blocks in stages "
            f">= {earliest} of target {target.name!r}"
        )


def rmt_target(name: str = "rmt", stages: int = 12, **overrides) -> TargetModel:
    """Convenience: a classic scalar RMT pipeline model."""
    return TargetModel(name=name, stages=stages, array_width=1, **overrides)


def adcp_target(
    name: str = "adcp", stages: int = 12, array_width: int = 16, **overrides
) -> TargetModel:
    """Convenience: an ADCP pipeline model with array support."""
    return TargetModel(name=name, stages=stages, array_width=array_width, **overrides)
