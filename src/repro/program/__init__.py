"""P4-like program abstraction and stage allocation.

A switch *program* is a set of table specifications with dependencies; a
*compiler* maps it onto a target's stages, match-action units, and memory
pool.  The interesting architectural difference shows up here:

- On a **scalar target** (RMT), a table looked up with ``k`` keys from the
  same packet must be **replicated k times** ("if we need to match many
  keys against the same table and those keys came from the same packet,
  that table must be replicated", Figure 3), multiplying its block cost.
- On an **array target** (ADCP), one copy suffices: a group of MAUs shares
  the table memory and retires ``k`` lookups at once (Figure 6).

:class:`~repro.program.compiler.Compiler` implements both disciplines and
reports block usage, replication factors, and effective table capacity, so
experiments can quote the exact cost of going scalar.
"""

from .compiler import (
    Allocation,
    Compiler,
    StagePlacement,
    TargetModel,
    adcp_target,
    rmt_target,
)
from .graph import DependencyKind, ProgramGraph
from .spec import ActionSpec, TableSpec

__all__ = [
    "ActionSpec",
    "Allocation",
    "Compiler",
    "DependencyKind",
    "ProgramGraph",
    "StagePlacement",
    "TableSpec",
    "TargetModel",
    "adcp_target",
    "rmt_target",
]
