"""repro — a reproduction of "Rethinking the Switch Architecture for
Stateful In-network Computing" (HotNets '24).

The library models both the classic RMT switch architecture and the
paper's proposed ADCP (Application-Defined Coflow Processor), along with
the analytical scaling models, coflow workloads, in-network applications,
and chip-feasibility estimators needed to reproduce every table, figure,
and inline claim of the paper.

Quickstart::

    from repro import ADCPConfig, ADCPSwitch, aggregation_coflow
    from repro.apps import ParameterServerApp

    coflow = aggregation_coflow(1, worker_ports=[0, 1, 2, 3],
                                vector_elements=1024)
    app = ParameterServerApp(num_workers=4, elements_per_packet=16)
    switch = ADCPSwitch(ADCPConfig(num_ports=8), app)
    result = switch.run(app.workload(coflow))

Sub-packages:

- :mod:`repro.sim` — discrete-event kernel, clocks, stats.
- :mod:`repro.net` — packets, headers, parsing, PHVs, traffic.
- :mod:`repro.coflow` — the coflow model, workloads, metrics, placement.
- :mod:`repro.tables` — match tables, memories, actions, registers.
- :mod:`repro.program` — program graphs and the stage allocator.
- :mod:`repro.rmt` / :mod:`repro.adcp` — the two switch models.
- :mod:`repro.analytical` — Tables 2/3 and key-rate math.
- :mod:`repro.feasibility` — area, power, floorplan, routing congestion.
- :mod:`repro.apps` — the Table 1 applications.
- :mod:`repro.telemetry` — structured tracing, metric snapshots, export.
"""

from .adcp import ADCPConfig, ADCPSwitch
from .arch import Decision, SwitchApp, Verdict
from .coflow import (
    Coflow,
    Flow,
    aggregation_coflow,
    bsp_round_coflow,
    multicast_coflow,
    shuffle_coflow,
    synthesize_workload,
)
from .errors import ReproError
from .rmt import RMTConfig, RMTSwitch, StateMode
from .telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "ADCPConfig",
    "ADCPSwitch",
    "Coflow",
    "Decision",
    "Flow",
    "RMTConfig",
    "RMTSwitch",
    "ReproError",
    "StateMode",
    "SwitchApp",
    "Telemetry",
    "Verdict",
    "__version__",
    "aggregation_coflow",
    "bsp_round_coflow",
    "multicast_coflow",
    "shuffle_coflow",
    "synthesize_workload",
]
