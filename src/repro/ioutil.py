"""Filesystem helpers shared across subsystems.

One invariant lives here: artifact writes are **atomic**.  Run ledgers,
campaign cache entries, and benchmark artifacts are all written through
:func:`atomic_write_text`, so a reader never observes a torn file and
parallel writers resolve to one complete version or the other — the
property the campaign engine's parallel cells depend on.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via temp-file-then-``os.replace``.

    The temp file is created in the destination directory (which is
    created if missing) so the final rename is a same-filesystem atomic
    operation; on any failure the temp file is removed.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target
