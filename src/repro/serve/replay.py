"""Open-loop replay schedules: rate-controlled, seed-deterministic load.

The replay frontend generates the same coflow traffic the fabric
workloads define (:func:`~repro.fabric.workloads.build_workload`), but
instead of injecting every flow back-to-back at t=0 it spaces packets
with an *open-loop* arrival process per host NIC: each packet's
departure gap is drawn from the offered-load target (``rate`` as a
fraction of the host link rate), independent of how the fabric is
coping — the standard way to expose queueing and drops under overload.

Two arrival processes are supported (:data:`ARRIVAL_KINDS`):

- ``periodic`` — deterministic gaps of exactly ``wire_time / rate``.
- ``poisson``  — exponential gaps with that mean, drawn from a per-host
  PCG64 stream seeded by ``stable_hash64("serve/<seed>/h<host>")``, so
  schedules are byte-stable across runs and queue backends.

A :class:`RateProfile` modulates the target rate over time: an optional
linear warm-up ramp and any number of multiplicative :class:`BurstPhase`
overlays (a factor > 1/rate models transient overload).  Workload rounds
are generated on demand with disjoint coflow-id ranges (``coflow_base``)
until every active host's clock passes the horizon; packets scheduled
past the horizon are cut, so coflows in flight at the end may stay
incomplete — serve mode reports them as such rather than failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError, SimulationError
from ..fabric.topology import Topology
from ..fabric.workloads import FabricCoflowSpec, build_workload
from ..net.packet import Packet
from ..sim.rng import make_rng, stable_hash64
from ..units import BITS_PER_BYTE

ARRIVAL_KINDS = ("poisson", "periodic")

#: Hard cap on generated workload rounds: a backstop against a profile
#: whose effective rate is so low that the horizon is never reached.
MAX_ROUNDS = 4096

#: The warm-up ramp never scales the rate below this floor (keeps gap
#: draws finite at t=0).
RAMP_FLOOR = 0.1

_NS = 1e-9

_DURATION_UNITS = {
    "ns": 1.0,
    "us": 1e3,
    "ms": 1e6,
    "s": 1e9,
}


def parse_duration_ns(text: str) -> float:
    """Parse ``"20us"`` / ``"500ns"`` / ``"1ms"`` / bare ns into ns."""
    raw = str(text).strip()
    for suffix in ("ns", "us", "ms", "s"):
        if raw.endswith(suffix):
            number = raw[: -len(suffix)]
            break
    else:
        suffix, number = "ns", raw
    try:
        value = float(number)
    except ValueError:
        raise ConfigError(
            f"bad duration {text!r}; expected <number>[ns|us|ms|s]"
        )
    if value <= 0:
        raise ConfigError(f"duration must be positive, got {text!r}")
    return value * _DURATION_UNITS[suffix]


@dataclass(frozen=True)
class BurstPhase:
    """One transient load multiplier: ``rate *= factor`` on [start, end)."""

    factor: float
    start_ns: float
    end_ns: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ConfigError(f"burst factor must be positive, got {self.factor}")
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ConfigError(
                f"burst phase needs 0 <= start < end, got "
                f"[{self.start_ns}, {self.end_ns})"
            )

    @classmethod
    def parse(cls, text: str) -> "BurstPhase":
        """Parse the CLI form ``FACTOR@START:END`` (durations per
        :func:`parse_duration_ns`), e.g. ``2.0@5us:8us``."""
        raw = str(text).strip()
        if "@" not in raw or ":" not in raw.split("@", 1)[1]:
            raise ConfigError(
                f"bad burst {text!r}; expected FACTOR@START:END "
                f"(e.g. 2.0@5us:8us)"
            )
        factor_text, span = raw.split("@", 1)
        start_text, end_text = span.split(":", 1)
        try:
            factor = float(factor_text)
        except ValueError:
            raise ConfigError(f"bad burst factor in {text!r}")
        return cls(
            factor,
            parse_duration_ns(start_text),
            parse_duration_ns(end_text),
        )


@dataclass(frozen=True)
class RateProfile:
    """Offered load over time, as a fraction of the host link rate."""

    rate: float
    ramp_ns: float = 0.0
    bursts: tuple[BurstPhase, ...] = ()

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")
        if self.ramp_ns < 0:
            raise ConfigError(f"ramp must be >= 0, got {self.ramp_ns}")

    def at(self, t_ns: float) -> float:
        """Effective rate at ``t_ns``: ramp floor, then burst overlays."""
        rate = self.rate
        if self.ramp_ns > 0 and t_ns < self.ramp_ns:
            rate *= max(RAMP_FLOOR, t_ns / self.ramp_ns)
        for burst in self.bursts:
            if burst.start_ns <= t_ns < burst.end_ns:
                rate *= burst.factor
        return rate


@dataclass
class ServeSchedule:
    """A fully-materialized replay: per-host streams plus bookkeeping."""

    workload: str
    duration_s: float
    #: host id -> time-ordered (departure_s, packet) at the host NIC.
    arrivals: dict[int, list[tuple[float, Packet]]]
    #: Every host-departure time, sorted, across all hosts (offered load).
    departure_times_s: list[float]
    #: Coflows with at least one scheduled packet (later rounds included).
    coflows: list[FabricCoflowSpec]
    #: (coflow_id, host_id) -> expected terminal packets, scheduled only.
    expected: dict[tuple[int, int], int]
    terminal_opcode: int
    aggregated: bool
    #: coflow id -> first host-departure time (CCT clock start).
    first_departure_s: dict[int, float]
    rounds: int
    coflows_per_round: int = 0
    params: dict = field(default_factory=dict)
    #: Per-switch app factory for stateful workloads (first round's —
    #: instances persist across rounds, claiming by opcode).
    app_factory: object = None

    @property
    def injected(self) -> int:
        return sum(len(stream) for stream in self.arrivals.values())


def build_schedule(
    workload: str,
    topology: Topology,
    *,
    profile: RateProfile,
    arrivals: str = "poisson",
    duration_ns: float,
    coflows: int = 2,
    vector: int = 64,
    elements_per_packet: int,
    link_bps: float,
    seed: int = 0,
) -> ServeSchedule:
    """Materialize the open-loop replay for one serve run.

    Rounds of ``workload`` (each ``coflows`` wide, coflow ids offset by
    ``coflow_base``) are generated until every host with pending traffic
    has a NIC clock past ``duration_ns``.  Worker selection inside each
    round is the workload's own seeded draw, so round *r* of seed *s* is
    the same traffic whatever the rate profile does.
    """
    if arrivals not in ARRIVAL_KINDS:
        raise ConfigError(
            f"unknown arrival process {arrivals!r}; choose from "
            f"{', '.join(ARRIVAL_KINDS)}"
        )
    if duration_ns <= 0:
        raise ConfigError(f"duration must be positive, got {duration_ns}")
    duration_s = duration_ns * _NS
    poisson = arrivals == "poisson"

    host_ids = topology.host_ids
    rngs = {
        host: make_rng(stable_hash64(f"serve/{seed}/h{host}") % (2**32))
        for host in host_ids
    }
    clocks = {host: 0.0 for host in host_ids}
    streams: dict[int, list[tuple[float, Packet]]] = {h: [] for h in host_ids}
    all_specs: list[FabricCoflowSpec] = []
    all_expected: dict[tuple[int, int], int] = {}
    first_departure: dict[int, float] = {}
    terminal_opcode = 0
    aggregated = False
    app_factory = None

    rounds = 0
    while True:
        if rounds >= MAX_ROUNDS:
            raise SimulationError(
                f"serve schedule exceeded {MAX_ROUNDS} workload rounds "
                f"before reaching the horizon; raise the rate or shorten "
                f"the duration"
            )
        work = build_workload(
            workload,
            topology,
            coflows=coflows,
            vector=vector,
            elements_per_packet=elements_per_packet,
            link_bps=link_bps,
            load=1.0,
            seed=seed,
            coflow_base=rounds * coflows,
        )
        terminal_opcode = work.terminal_opcode
        aggregated = work.aggregated
        if app_factory is None:
            app_factory = work.app_factory
        scheduled_any = False
        for host in sorted(work.arrivals):
            rng = rngs[host]
            clock = clocks[host]
            if clock > duration_s:
                continue
            for _, packet in work.arrivals[host]:
                wire_s = packet.wire_bytes * BITS_PER_BYTE / link_bps
                mean_gap = wire_s / profile.at(clock / _NS)
                gap = (
                    float(rng.exponential(mean_gap)) if poisson else mean_gap
                )
                clock += gap
                if clock > duration_s:
                    break
                streams[host].append((clock, packet))
                scheduled_any = True
                coflow_id = packet.header("coflow")["coflow_id"]
                seen = first_departure.get(coflow_id)
                if seen is None or clock < seen:
                    first_departure[coflow_id] = clock
            clocks[host] = clock
        all_specs.extend(work.coflows)
        all_expected.update(work.expected)
        rounds += 1
        if not scheduled_any:
            break

    # Only coflows that actually put a packet on a wire participate in
    # hosting/completion accounting; a final empty round is expected.
    live_specs = [s for s in all_specs if s.coflow_id in first_departure]
    live_expected = {
        key: count
        for key, count in all_expected.items()
        if key[0] in first_departure
    }
    departures = sorted(
        time for stream in streams.values() for time, _ in stream
    )
    return ServeSchedule(
        workload=workload,
        duration_s=duration_s,
        arrivals={h: streams[h] for h in sorted(streams) if streams[h]},
        departure_times_s=departures,
        coflows=live_specs,
        expected=live_expected,
        terminal_opcode=terminal_opcode,
        aggregated=aggregated,
        first_departure_s=first_departure,
        rounds=rounds,
        coflows_per_round=coflows,
        app_factory=app_factory,
    )
