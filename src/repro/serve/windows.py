"""Tumbling-window aggregation on the kernel's probe-deadline contract.

A :class:`RollingWindowMonitor` is a deadline-aware time probe (the same
protocol :class:`~repro.telemetry.monitor.ResourceMonitor` speaks, see
docs/KERNEL.md): the dispatcher calls it before any event that advances
the clock to or past the current window boundary, so every window closes
*before* the first event at or after its end executes.  Window ``i``
therefore covers ``[i*W, (i+1)*W)`` exactly — a delivery on the boundary
tick lands in window ``i+1``, and gauges sampled at close read switch
state after all events strictly before the boundary.

Three kinds of inputs feed each window record:

- **observations** — :meth:`record_delivery` (per-packet, with optional
  end-to-end latency) and :meth:`record_cct` (per-coflow completion),
  pushed by the serve runner's host-delivery hook;
- **counters** — cumulative functions (drops, recirculations) sampled at
  every close; the record carries the per-window delta;
- **gauges** — instantaneous functions (TM occupancy, recirculation
  backlog) sampled at the closing boundary.

Records are flat dicts so SLO objectives address metrics by name
(docs/SERVING.md lists them all).
"""

from __future__ import annotations

from math import fsum
from typing import Callable

from ..errors import ConfigError
from ..telemetry.monitor import _percentile

_NS = 1e-9

#: Window metrics always present in a record (gauge/counter names are
#: appended per registration).  SLO parsing validates against the union.
BASE_METRICS = (
    "delivered",
    "offered",
    "dropped",
    "drop_rate",
    "throughput_pps",
    "offered_pps",
    "p50_latency_ns",
    "p99_latency_ns",
    "mean_latency_ns",
    "max_latency_ns",
    "latency_samples",
    "coflows_completed",
    "mean_cct_ns",
    "max_cct_ns",
)


class RollingWindowMonitor:
    """Folds a serve run into fixed-width tumbling window records."""

    def __init__(
        self,
        window_ns: float,
        *,
        on_window: Callable[[dict], None] | None = None,
    ) -> None:
        if window_ns <= 0:
            raise ConfigError(
                f"window width must be positive, got {window_ns}"
            )
        self.window_ns = float(window_ns)
        self.window_s = float(window_ns) * _NS
        self.on_window = on_window
        self.records: list[dict] = []
        self._index = 0
        self._gauges: dict[str, Callable[[float], float]] = {}
        self._counters: dict[str, Callable[[float], float]] = {}
        self._counter_last: dict[str, float] = {}
        self._gauge_names: list[str] = []
        self._counter_names: list[str] = []
        self._frozen = False
        self._dropped_fn: Callable[[float], float] | None = None
        self._dropped_last = 0.0
        # Per-window accumulators.
        self._delivered = 0
        self._latencies_ns: list[float] = []
        self._ccts_ns: list[float] = []
        # Offered-load schedule (sorted departure times) and its cursor.
        self._offered_times: list[float] = []
        self._offered_cursor = 0

    # --- registration -------------------------------------------------------------

    def gauge(self, name: str, fn: Callable[[float], float]) -> None:
        """Register an instantaneous probe, sampled at each window close."""
        self._register(self._gauges, name, fn)

    def counter(self, name: str, fn: Callable[[float], float]) -> None:
        """Register a cumulative probe; records carry per-window deltas."""
        self._register(self._counters, name, fn)
        self._counter_last[name] = 0.0

    def set_drop_counter(self, fn: Callable[[float], float]) -> None:
        """Cumulative drop count feeding the ``dropped``/``drop_rate``
        base metrics (a dedicated slot, not a named counter, because
        both metric names are part of every record)."""
        if self._frozen:
            raise ConfigError(
                "cannot register the drop counter after the first "
                "window closed"
            )
        self._dropped_fn = fn

    def _register(self, table, name: str, fn) -> None:
        if self._frozen:
            raise ConfigError(
                f"cannot register {name!r} after the first window closed"
            )
        if name in self._gauges or name in self._counters or name in BASE_METRICS:
            raise ConfigError(f"duplicate window metric {name!r}")
        table[name] = fn

    def set_offered_schedule(self, departure_times_s: list[float]) -> None:
        """Sorted host-departure times; each window counts its slice."""
        self._offered_times = departure_times_s
        self._offered_cursor = 0

    def metric_names(self) -> list[str]:
        """Every metric a window record will carry (for SLO validation)."""
        return (
            list(BASE_METRICS)
            + sorted(self._gauges)
            + sorted(self._counters)
        )

    # --- kernel probe protocol ----------------------------------------------------

    @property
    def _end_s(self) -> float:
        # Boundary from the integer index (not +=) so long runs don't
        # accumulate float drift against the SLO-visible start/end stamps.
        return (self._index + 1) * self.window_s

    def next_deadline_s(self) -> float:
        """Current window end (kernel probe-deadline contract)."""
        return self._end_s

    def __call__(self, new_time_s: float) -> None:
        """Clock hook: close every window the advance crosses."""
        while self._end_s <= new_time_s:
            self._close()

    # --- observations -------------------------------------------------------------

    def record_delivery(
        self, time_s: float, latency_ns: float | None = None
    ) -> None:
        """One packet reached a host NIC inside the current window."""
        self._delivered += 1
        if latency_ns is not None:
            self._latencies_ns.append(latency_ns)

    def record_cct(self, time_s: float, cct_ns: float) -> None:
        """One coflow fully completed inside the current window."""
        self._ccts_ns.append(cct_ns)

    # --- window close -------------------------------------------------------------

    def _close(self) -> None:
        if not self._frozen:
            self._gauge_names = sorted(self._gauges)
            self._counter_names = sorted(self._counters)
            self._frozen = True
        end_s = self._end_s

        offered = 0
        times = self._offered_times
        cursor = self._offered_cursor
        while cursor < len(times) and times[cursor] < end_s:
            offered += 1
            cursor += 1
        self._offered_cursor = cursor

        delivered = self._delivered
        record: dict = {
            "window": self._index,
            # Stamped from the ns width directly, so boundaries print as
            # exact multiples rather than round-tripped floats.
            "start_ns": self._index * self.window_ns,
            "end_ns": (self._index + 1) * self.window_ns,
            "delivered": delivered,
            "offered": offered,
            "throughput_pps": delivered / self.window_s,
            "offered_pps": offered / self.window_s,
        }

        for name in self._counter_names:
            value = float(self._counters[name](end_s))
            record[name] = value - self._counter_last[name]
            self._counter_last[name] = value

        dropped = 0.0
        if self._dropped_fn is not None:
            total = float(self._dropped_fn(end_s))
            dropped = total - self._dropped_last
            self._dropped_last = total
        record["dropped"] = dropped
        attempts = dropped + delivered
        record["drop_rate"] = dropped / attempts if attempts else 0.0

        latencies = sorted(self._latencies_ns)
        record["latency_samples"] = len(latencies)
        if latencies:
            record["p50_latency_ns"] = _percentile(latencies, 50.0)
            record["p99_latency_ns"] = _percentile(latencies, 99.0)
            record["mean_latency_ns"] = fsum(latencies) / len(latencies)
            record["max_latency_ns"] = latencies[-1]
        else:
            record["p50_latency_ns"] = None
            record["p99_latency_ns"] = None
            record["mean_latency_ns"] = None
            record["max_latency_ns"] = None

        ccts = sorted(self._ccts_ns)
        record["coflows_completed"] = len(ccts)
        if ccts:
            record["mean_cct_ns"] = fsum(ccts) / len(ccts)
            record["max_cct_ns"] = ccts[-1]
        else:
            record["mean_cct_ns"] = None
            record["max_cct_ns"] = None

        for name in self._gauge_names:
            record[name] = float(self._gauges[name](end_s))

        self.records.append(record)
        self._delivered = 0
        self._latencies_ns = []
        self._ccts_ns = []
        self._index += 1
        if self.on_window is not None:
            self.on_window(record)

    def finish(self, horizon_s: float) -> None:
        """Close every window that starts before ``horizon_s``.

        Called once after the kernel drains: a run that ends mid-window
        still emits that window (covering its full nominal width), and a
        horizon landing exactly on a boundary emits nothing extra.
        """
        while self._index * self.window_s < horizon_s:
            self._close()
