"""Declarative SLO objectives over window records, with live verdicts.

An objective is a comparison against one window metric, written the way
it reads: ``p99_latency_ns<=1500``, ``drop_rate<=0.01``,
``throughput_pps>=2e9``.  A :class:`SloPolicy` holds any number of
objectives and evaluates every closed window: a window is *compliant*
when no objective is violated.  Metrics that are ``None`` in a window
(no latency samples in an empty window, say) are vacuously compliant —
an SLO on p99 latency cannot fail when nothing was delivered.

The roll-up (:meth:`SloPolicy.summarize`) reports per-objective
violation counts, the compliant-window fraction, and a pass/fail
verdict; serve's CLI exit code is 1 exactly when a non-empty policy
failed (docs/SERVING.md).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

from ..errors import ConfigError

_OPERATORS = {
    "<=": operator.le,
    ">=": operator.ge,
    "<": operator.lt,
    ">": operator.gt,
}


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective: ``metric OP bound``."""

    metric: str
    op: str
    bound: float

    @property
    def spec(self) -> str:
        return f"{self.metric}{self.op}{self.bound:g}"

    def check(self, value: float) -> bool:
        return _OPERATORS[self.op](value, self.bound)

    @classmethod
    def parse(cls, text: str) -> "SloObjective":
        raw = str(text).strip().replace(" ", "")
        # Two-character operators first, so "<=" never parses as "<".
        for op in ("<=", ">=", "<", ">"):
            if op in raw:
                metric, _, bound_text = raw.partition(op)
                break
        else:
            raise ConfigError(
                f"bad SLO {text!r}; expected METRIC<=BOUND or "
                f"METRIC>=BOUND (e.g. p99_latency_ns<=1500)"
            )
        if not metric:
            raise ConfigError(f"bad SLO {text!r}: missing metric name")
        try:
            bound = float(bound_text)
        except ValueError:
            raise ConfigError(
                f"bad SLO {text!r}: bound {bound_text!r} is not a number"
            )
        return cls(metric, op, bound)


@dataclass(frozen=True)
class SloPolicy:
    """An ordered set of objectives evaluated against every window."""

    objectives: tuple[SloObjective, ...] = ()

    @classmethod
    def parse(cls, specs) -> "SloPolicy":
        return cls(tuple(SloObjective.parse(spec) for spec in specs))

    def __bool__(self) -> bool:
        return bool(self.objectives)

    def validate_metrics(self, known: list[str]) -> None:
        """Fail fast (usage error) on objectives naming unknown metrics."""
        known_set = set(known)
        for objective in self.objectives:
            if objective.metric not in known_set:
                raise ConfigError(
                    f"SLO metric {objective.metric!r} is not a window "
                    f"metric; choose from {', '.join(sorted(known_set))}"
                )

    def evaluate(self, record: dict) -> list[str]:
        """Specs of the objectives this window violates (empty = ok)."""
        violated = []
        for objective in self.objectives:
            value = record.get(objective.metric)
            if value is None:
                continue
            if not objective.check(float(value)):
                violated.append(objective.spec)
        return violated

    def summarize(self, windows: list[dict]) -> dict:
        """Compliance roll-up over annotated windows (see runner).

        Each window must carry the ``slo`` entry the serve runner
        attaches at close ({"compliant": bool, "violations": [...]}).
        """
        total = len(windows)
        by_objective = {obj.spec: 0 for obj in self.objectives}
        compliant = 0
        for record in windows:
            verdict = record.get("slo", {})
            if verdict.get("compliant", True):
                compliant += 1
            for spec in verdict.get("violations", ()):
                if spec in by_objective:
                    by_objective[spec] += 1
        violations = total - compliant
        return {
            "objectives": [obj.spec for obj in self.objectives],
            "windows": total,
            "compliant_windows": compliant,
            "compliance": compliant / total if total else 1.0,
            "violations_by_objective": by_objective,
            "verdict": (
                "pass" if (not self.objectives or violations == 0) else "fail"
            ),
        }
