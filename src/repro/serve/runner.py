"""The serve runner: drive an open-loop replay and ledger the windows.

:func:`run_serve` reuses the fabric construction path
(:func:`~repro.fabric.runner.build_fabric`), so a given (topology,
target, seed) wires bit-identically in batch and serve mode; what
changes is the drive: a rate-controlled :class:`~repro.serve.replay.
ServeSchedule` instead of back-to-back flows, a
:class:`~repro.serve.windows.RollingWindowMonitor` on the kernel clock,
a host-delivery hook recording end-to-end latency and per-coflow CCT,
and an :class:`~repro.serve.slo.SloPolicy` annotating every window as
it closes.  The result is a ``repro.serve_ledger/1`` document: the full
window series, the SLO compliance summary, run totals, and diffable
sections (a ``serve`` section summarizing each window metric with its
direction, plus the usual per-switch monitor sections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import fsum

from ..errors import ConfigError
from ..fabric.app import HostedCoflow
from ..fabric.link import HostEndpoint
from ..fabric.placement import make_placement
from ..fabric.runner import (
    DEFAULT_FLOWLET_GAP_NS,
    DEFAULT_LINK_LATENCY_NS,
    PORT_SPEED_BPS,
    build_fabric,
    inject_arrivals,
    switch_section_json,
)
from ..fabric.topology import Topology, parse_topology
from ..sim.event import Simulator
from ..telemetry.ledger import SERVE_LEDGER_SCHEMA, git_sha
from ..telemetry.monitor import _percentile
from .replay import RateProfile, ServeSchedule, build_schedule
from .slo import SloPolicy
from .windows import RollingWindowMonitor

_NS = 1e-9

DEFAULT_RATE = 0.8
DEFAULT_DURATION_NS = 20_000.0
DEFAULT_WINDOW_NS = 1_000.0

#: Window metrics that are higher-is-better in the serve section's
#: series summaries; everything else keeps the pressure default.
_HIGHER_METRICS = {
    "delivered",
    "offered",
    "throughput_pps",
    "offered_pps",
    "coflows_completed",
    "latency_samples",
}

#: Window metrics excluded from the diffable serve section (identity or
#: bookkeeping, not service quality).
_SKIP_SERIES = {"window", "start_ns", "end_ns"}


@dataclass
class ServeRun:
    """Everything one serve run produced, plus its reporting helpers."""

    topology: Topology
    workload: str
    target: str
    placement: str
    routing: str
    seed: int
    params: dict
    windows: list[dict]
    slo: dict
    schedule: ServeSchedule
    hosts: dict[int, HostEndpoint]
    sections: list = field(default_factory=list)
    duration_s: float = 0.0
    events: int = 0
    events_coalesced: int = 0
    window_ns: float = DEFAULT_WINDOW_NS
    spans: object | None = None  # SpanRecorder when sampling was on
    span_coflows: dict = field(default_factory=dict)

    # --- derived ------------------------------------------------------------------

    @property
    def delivered_to_hosts(self) -> int:
        return sum(len(h.received) for h in self.hosts.values())

    @property
    def dropped(self) -> int:
        return int(sum(w.get("dropped", 0.0) for w in self.windows))

    @property
    def coflows_completed(self) -> int:
        return sum(w["coflows_completed"] for w in self.windows)

    @property
    def exit_code(self) -> int:
        """1 exactly when a declared SLO failed; 0 otherwise."""
        return 1 if self.slo.get("verdict") == "fail" else 0

    def totals(self) -> dict:
        return {
            "injected": self.schedule.injected,
            "delivered_to_hosts": self.delivered_to_hosts,
            "dropped": self.dropped,
            "coflows_scheduled": len(self.schedule.coflows),
            "coflows_completed": self.coflows_completed,
            "rounds": self.schedule.rounds,
            "windows": len(self.windows),
            "duration_s": self.duration_s,
            "events": self.events,
            "events_coalesced": self.events_coalesced,
        }

    # --- reporting ----------------------------------------------------------------

    def _serve_section(self) -> dict:
        """The window series as diffable summaries, direction-tagged."""
        series: dict[str, dict] = {}
        names = sorted(
            {
                name
                for window in self.windows
                for name in window
                if name not in _SKIP_SERIES and name != "slo"
            }
        )
        for name in names:
            values = [
                float(window[name])
                for window in self.windows
                if isinstance(window.get(name), (int, float))
            ]
            if not values:
                continue
            ordered = sorted(values)
            series[name] = {
                "samples": len(values),
                "mean": fsum(values) / len(values),
                "peak": ordered[-1],
                "p99": _percentile(ordered, 99.0),
                "last": values[-1],
                "direction": (
                    "higher" if name in _HIGHER_METRICS else "lower"
                ),
            }
        compliance = float(self.slo.get("compliance", 1.0))
        series["slo.compliance"] = {
            "samples": len(self.windows),
            "mean": compliance,
            "peak": compliance,
            "p99": compliance,
            "last": compliance,
            "direction": "higher",
        }
        return {
            "label": "serve",
            "duration_s": self.duration_s,
            "delivered": self.delivered_to_hosts,
            "consumed": 0,
            "recirculated": 0,
            "samples": len(self.windows),
            "series": series,
            "counters": {},
        }

    def span_records(self) -> list[dict]:
        """Sampled span hops as JSON records (empty without sampling)."""
        if self.spans is None:
            return []
        return [record.to_json() for record in self.spans.records]

    def ledger(self) -> dict:
        """The run as a ``repro.serve_ledger/1`` document (diffable)."""
        sections = [self._serve_section()]
        if self.spans is not None:
            from ..telemetry.spans import span_overview_series

            sections.append(
                {
                    "label": "spans",
                    "series": span_overview_series(self.spans),
                }
            )
        sections.extend(switch_section_json(s) for s in self.sections)
        label = (
            f"serve:{self.workload}@{self.topology.name}:{self.target}"
        )
        return {
            "schema": SERVE_LEDGER_SCHEMA,
            "workload": label,
            "git_sha": git_sha(),
            "window_ns": self.window_ns,
            "config": dict(self.params),
            "windows": self.windows,
            "slo": self.slo,
            "totals": self.totals(),
            "sections": sections,
        }

    def summary(self) -> dict:
        """Flat JSON summary (the CLI's final ``--json`` line)."""
        out = {
            "type": "summary",
            "topology": self.topology.name,
            "workload": self.workload,
            "target": self.target,
            "placement": self.placement,
            "routing": self.routing,
            "seed": self.seed,
            "window_ns": self.window_ns,
            "slo": self.slo,
            **self.totals(),
        }
        if self.spans is not None:
            sampler = self.spans.sampler
            out["spans"] = {
                "sample": sampler.sample,
                "packets_offered": sampler.offered,
                "packets_sampled": sampler.admitted,
                "coverage": sampler.coverage,
                "records": len(self.spans.records),
            }
        return out

    def lines(self) -> list[str]:
        totals = self.totals()
        out = [
            f"serve {self.topology.name} [{self.target}] — "
            f"{self.workload}, rate={self.params['rate']}, "
            f"arrivals={self.params['arrivals']}, seed={self.seed}",
            f"  {totals['windows']} windows x {self.window_ns:g} ns, "
            f"{totals['injected']} packets offered, "
            f"{totals['delivered_to_hosts']} delivered, "
            f"{totals['dropped']} dropped, "
            f"{totals['coflows_completed']}/{totals['coflows_scheduled']} "
            f"coflows completed",
        ]
        if self.slo["objectives"]:
            out.append(
                f"  SLO {self.slo['verdict']}: "
                f"{self.slo['compliant_windows']}/{self.slo['windows']} "
                f"windows compliant "
                f"({', '.join(self.slo['objectives'])})"
            )
        if self.spans is not None:
            sampler = self.spans.sampler
            out.append(
                f"  spans: {sampler.admitted}/{sampler.offered} packets "
                f"sampled (1 in {sampler.sample}), "
                f"{len(self.spans.records)} hop records"
            )
        out.append(
            f"  duration {self.duration_s * 1e9:.1f} ns, "
            f"{self.events} events dispatched"
        )
        return out


def _window_line(record: dict) -> str:
    """One human-readable live line per closed window."""
    p99 = record["p99_latency_ns"]
    p99_text = "-" if p99 is None else f"{p99:.0f}ns"
    verdict = record.get("slo", {})
    status = "ok"
    if verdict.get("violations"):
        status = "VIOLATION " + ",".join(verdict["violations"])
    return (
        f"window {record['window']:>3} "
        f"[{record['start_ns']:.0f}..{record['end_ns']:.0f}ns) "
        f"delivered={record['delivered']} offered={record['offered']} "
        f"p99={p99_text} drop_rate={record['drop_rate']:.3f} "
        f"cct={record['coflows_completed']} {status}"
    )


def run_serve(
    topology: str | Topology,
    workload: str = "fabric-allreduce",
    *,
    target: str = "adcp",
    placement: str = "ingress",
    routing: str = "ecmp",
    seed: int = 0,
    rate: float = DEFAULT_RATE,
    arrivals: str = "poisson",
    duration_ns: float = DEFAULT_DURATION_NS,
    window_ns: float = DEFAULT_WINDOW_NS,
    ramp_ns: float = 0.0,
    bursts: tuple = (),
    coflows: int = 2,
    vector: int = 64,
    slos=(),
    link_latency_ns: float = DEFAULT_LINK_LATENCY_NS,
    flowlet_gap_ns: float = DEFAULT_FLOWLET_GAP_NS,
    interval_ns: float | None = None,
    queue_backend: str | None = None,
    make_telemetry=None,
    on_window=None,
    sample: int | None = None,
) -> ServeRun:
    """Serve ``workload`` on ``topology`` under open-loop load.

    ``on_window`` (when given) receives each window record as it closes,
    already annotated with its SLO verdict — the CLI streams these as
    JSONL.  ``interval_ns`` sets the per-switch ResourceMonitor grid and
    defaults to the window width, so switch series align with windows.
    ``sample`` head-samples 1-in-``sample`` injected packets for per-hop
    span tracing (:mod:`repro.telemetry.spans`) without leaving the fast
    path; the records land in ``ServeRun.spans``, the JSONL stream, and
    a ``spans`` ledger section.
    """
    if window_ns <= 0:
        raise ConfigError(f"window width must be positive, got {window_ns}")
    if duration_ns < window_ns:
        raise ConfigError(
            f"duration ({duration_ns} ns) must cover at least one "
            f"window ({window_ns} ns)"
        )
    policy = slos if isinstance(slos, SloPolicy) else SloPolicy.parse(slos)
    topo = parse_topology(topology) if isinstance(topology, str) else topology
    # RMT's scalar stateful constraint forces one element per packet;
    # ADCP packs up to its array width (same split as run_fabric).
    epp = 1 if target == "rmt" else min(16, vector)
    profile = RateProfile(rate, ramp_ns=ramp_ns, bursts=tuple(bursts))
    schedule = build_schedule(
        workload,
        topo,
        profile=profile,
        arrivals=arrivals,
        duration_ns=duration_ns,
        coflows=coflows,
        vector=vector,
        elements_per_packet=epp,
        link_bps=PORT_SPEED_BPS,
        seed=seed,
    )

    placement_map: dict[int, str] = {}
    hosted_by_switch: dict[str, list[HostedCoflow]] = {}
    if schedule.aggregated:
        chooser = make_placement(placement)
        for spec in schedule.coflows:
            where = chooser.choose(spec.coflow_id, spec.worker_hosts, topo)
            placement_map[spec.coflow_id] = where
            hosted_by_switch.setdefault(where, []).append(
                HostedCoflow(
                    spec.coflow_id, spec.worker_hosts, spec.vector_elements
                )
            )

    monitor = RollingWindowMonitor(window_ns)

    # Annotate each window with its SLO verdict before any listener
    # sees it, then forward to the caller's live stream.
    def close_hook(record: dict) -> None:
        violations = policy.evaluate(record)
        record["slo"] = {
            "compliant": not violations,
            "violations": violations,
        }
        if on_window is not None:
            on_window(record)

    monitor.on_window = close_hook

    # Host-delivery hook: per-window delivery/latency accounting plus
    # coflow completion against the schedule's expected counts.
    remaining = dict(schedule.expected)
    open_hosts: dict[int, set[int]] = {}
    for coflow_id, host_id in schedule.expected:
        open_hosts.setdefault(coflow_id, set()).add(host_id)
    first_departure = schedule.first_departure_s
    terminal_opcode = schedule.terminal_opcode

    def host_sink(endpoint: HostEndpoint):
        def deliver(packet, arrival_s: float) -> None:
            origin = packet.meta.origin_time
            monitor.record_delivery(
                arrival_s,
                None if origin is None else (arrival_s - origin) / _NS,
            )
            if packet.has_header("coflow"):
                header = packet.header("coflow")
                if header["opcode"] == terminal_opcode:
                    key = (header["coflow_id"], endpoint.host_id)
                    left = remaining.get(key, 0)
                    if left > 0:
                        remaining[key] = left - 1
                        if left == 1:
                            coflow_id = key[0]
                            pending = open_hosts[coflow_id]
                            pending.discard(endpoint.host_id)
                            if not pending:
                                monitor.record_cct(
                                    arrival_s,
                                    (
                                        arrival_s
                                        - first_departure[coflow_id]
                                    )
                                    / _NS,
                                )
            endpoint.deliver(packet, arrival_s)

        return deliver

    spans = None
    if sample is not None:
        from ..telemetry.sampler import SpanSampler
        from ..telemetry.spans import SpanRecorder

        spans = SpanRecorder(SpanSampler(seed=seed, sample=sample))

    sim = Simulator(queue_backend)
    fabric = build_fabric(
        topo,
        target=target,
        routing=routing,
        placement_map=placement_map,
        hosted_by_switch=hosted_by_switch,
        app_factory=schedule.app_factory,
        elements_per_packet=epp,
        link_latency_ns=link_latency_ns,
        flowlet_gap_ns=flowlet_gap_ns,
        interval_ns=window_ns if interval_ns is None else interval_ns,
        make_telemetry=make_telemetry,
        sim=sim,
        host_sink=host_sink,
        spans=spans,
    )

    # Fabric-wide gauges and counters for the window records, summed
    # over every switch's monitor probes (name patterns per PR 4).
    occupancy_fns = []
    backlog_fns = []
    recirc_fns = []
    for name in topo.switch_names:
        switch = fabric.switches[name]
        for component in switch.walk():
            contribute = getattr(component, "monitor_probes", None)
            if contribute is None:
                continue
            for probe_name, fn in contribute().items():
                if probe_name.endswith(".occupancy"):
                    occupancy_fns.append(fn)
                elif probe_name.endswith(".recirc_backlog_s"):
                    backlog_fns.append(fn)
                elif probe_name.endswith(".recirculations"):
                    recirc_fns.append(fn)
    switches = [fabric.switches[name] for name in topo.switch_names]
    monitor.gauge(
        "tm_occupancy",
        lambda now_s: sum(fn(now_s) for fn in occupancy_fns),
    )
    monitor.gauge(
        "recirc_backlog_s",
        lambda now_s: sum(fn(now_s) for fn in backlog_fns),
    )
    monitor.counter(
        "recirculations",
        lambda now_s: sum(fn(now_s) for fn in recirc_fns),
    )
    monitor.set_drop_counter(
        lambda now_s: float(
            sum(len(switch._result.dropped) for switch in switches)
        ),
    )
    monitor.set_offered_schedule(schedule.departure_times_s)
    policy.validate_metrics(monitor.metric_names())
    sim.add_time_probe(monitor)

    span_coflows = inject_arrivals(
        fabric, schedule.arrivals, stamp_origin=True, spans=spans
    )
    sim.run()
    monitor.finish(max(sim.now, schedule.duration_s))
    sections = fabric.finalize_sections()

    params = {
        "topology": topo.name,
        "workload": workload,
        "target": target,
        "placement": placement if schedule.aggregated else "",
        "routing": routing,
        "seed": seed,
        "rate": rate,
        "arrivals": arrivals,
        "duration_ns": duration_ns,
        "window_ns": window_ns,
        "ramp_ns": ramp_ns,
        "bursts": [
            {"factor": b.factor, "start_ns": b.start_ns, "end_ns": b.end_ns}
            for b in profile.bursts
        ],
        "coflows": coflows,
        "vector": vector,
        "link_latency_ns": link_latency_ns,
        "slos": [objective.spec for objective in policy.objectives],
        "sample": sample,
    }
    return ServeRun(
        topology=topo,
        workload=workload,
        target=target,
        placement=placement if schedule.aggregated else "",
        routing=routing,
        seed=seed,
        params=params,
        windows=monitor.records,
        slo=policy.summarize(monitor.records),
        schedule=schedule,
        hosts=fabric.hosts,
        sections=sections,
        duration_s=sim.now,
        events=sim.events_dispatched,
        events_coalesced=sim.events_coalesced,
        window_ns=window_ns,
        spans=spans,
        span_coflows=span_coflows,
    )
