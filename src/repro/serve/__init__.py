"""Serve mode: open-loop traffic replay with rolling-window SLO ledgers.

Batch runs (``repro fabric``, ``repro monitor``) answer "what did this
workload do, end to end"; serve mode answers "how does this fabric
behave *under sustained load*" — the way the paper's §4 frames ADCP vs
RMT as a deployment decision.  A seed-deterministic replay schedule
(:mod:`repro.serve.replay`) streams rate-controlled coflow traffic into
a continuously-running fabric, a :class:`~repro.serve.windows.
RollingWindowMonitor` folds deliveries into tumbling fixed-width
windows (p50/p99 latency, drop rate, throughput, TM occupancy,
recirculation depth, per-coflow CCT), and an
:class:`~repro.serve.slo.SloPolicy` turns each window into a live
verdict.  The run ends as a ``repro.serve_ledger/1`` artifact —
byte-identical per seed, diffable with ``repro diff``.

See docs/SERVING.md for the replay model, window semantics, the SLO
expression format, and the ledger schema.
"""

from .replay import (  # noqa: F401
    ARRIVAL_KINDS,
    BurstPhase,
    RateProfile,
    ServeSchedule,
    build_schedule,
    parse_duration_ns,
)
from .slo import SloObjective, SloPolicy  # noqa: F401
from .windows import RollingWindowMonitor  # noqa: F401
from .runner import ServeRun, run_serve  # noqa: F401
