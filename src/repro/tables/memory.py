"""Table memory: SRAM and TCAM block pools.

RMT stages own fixed pools of memory blocks; tables claim whole blocks.
"Match-action table memory is scarce and having replicated data would be
using it poorly" (paper, section 2, issue 2) — the Figure 3 experiment
depends on this model charging one full set of blocks per table copy.

Block geometry follows the published RMT figures: SRAM blocks of 1K
entries x 112 bits, TCAM blocks of 2K x 40 bits (the exact numbers are
configurable; the *accounting discipline* is what matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import CapacityError, ConfigError


class MemoryKind(Enum):
    """The two physical memory technologies in a stage."""

    SRAM = "sram"
    TCAM = "tcam"


@dataclass(frozen=True)
class MemoryBlock:
    """Geometry of one memory block."""

    kind: MemoryKind
    entries: int
    width_bits: int

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError(f"block entries must be positive, got {self.entries}")
        if self.width_bits <= 0:
            raise ConfigError(f"block width must be positive, got {self.width_bits}")

    @property
    def bits(self) -> int:
        return self.entries * self.width_bits


DEFAULT_SRAM_BLOCK = MemoryBlock(MemoryKind.SRAM, entries=1024, width_bits=112)
DEFAULT_TCAM_BLOCK = MemoryBlock(MemoryKind.TCAM, entries=2048, width_bits=40)


class StageMemory:
    """The block pool of one pipeline stage.

    Tables call :meth:`claim` with a kind, an entry count, and a key width;
    the pool computes how many blocks that needs (wide keys span multiple
    blocks horizontally; deep tables span vertically) and either reserves
    them or raises :class:`CapacityError`.
    """

    def __init__(
        self,
        sram_blocks: int = 80,
        tcam_blocks: int = 24,
        sram_geometry: MemoryBlock = DEFAULT_SRAM_BLOCK,
        tcam_geometry: MemoryBlock = DEFAULT_TCAM_BLOCK,
    ) -> None:
        if sram_blocks < 0 or tcam_blocks < 0:
            raise ConfigError("block counts must be non-negative")
        self._totals = {
            MemoryKind.SRAM: sram_blocks,
            MemoryKind.TCAM: tcam_blocks,
        }
        self._geometry = {
            MemoryKind.SRAM: sram_geometry,
            MemoryKind.TCAM: tcam_geometry,
        }
        self._claimed: dict[str, tuple[MemoryKind, int]] = {}

    def geometry(self, kind: MemoryKind) -> MemoryBlock:
        return self._geometry[kind]

    def total_blocks(self, kind: MemoryKind) -> int:
        return self._totals[kind]

    def claimed_blocks(self, kind: MemoryKind) -> int:
        return sum(n for k, n in self._claimed.values() if k is kind)

    def free_blocks(self, kind: MemoryKind) -> int:
        return self._totals[kind] - self.claimed_blocks(kind)

    def claimed_total(self) -> int:
        """Claimed blocks across both technologies (SRAM plus TCAM).

        Sampled by the resource monitor as per-stage memory occupancy.
        """
        return sum(n for _, n in self._claimed.values())

    def blocks_needed(self, kind: MemoryKind, entries: int, key_width_bits: int) -> int:
        """Blocks required for a table of ``entries`` x ``key_width_bits``.

        A key wider than one block's width occupies ``ceil(width/block)``
        blocks side by side; depth beyond one block's entries stacks more
        rows of blocks.
        """
        if entries <= 0:
            raise ConfigError(f"entries must be positive, got {entries}")
        if key_width_bits <= 0:
            raise ConfigError(
                f"key width must be positive, got {key_width_bits}"
            )
        geo = self._geometry[kind]
        wide = (key_width_bits + geo.width_bits - 1) // geo.width_bits
        deep = (entries + geo.entries - 1) // geo.entries
        return wide * deep

    def claim(
        self, owner: str, kind: MemoryKind, entries: int, key_width_bits: int
    ) -> int:
        """Reserve blocks for ``owner``; returns the block count claimed."""
        if owner in self._claimed:
            raise ConfigError(f"owner {owner!r} already claimed memory")
        needed = self.blocks_needed(kind, entries, key_width_bits)
        if needed > self.free_blocks(kind):
            raise CapacityError(
                f"{owner!r} needs {needed} {kind.value} blocks, only "
                f"{self.free_blocks(kind)} of {self._totals[kind]} free"
            )
        self._claimed[owner] = (kind, needed)
        return needed

    def release(self, owner: str) -> None:
        """Return ``owner``'s blocks to the pool."""
        if owner not in self._claimed:
            raise ConfigError(f"owner {owner!r} holds no memory")
        del self._claimed[owner]

    def max_entries(self, kind: MemoryKind, key_width_bits: int) -> int:
        """Largest table (entries) the *free* pool could hold for a key width."""
        geo = self._geometry[kind]
        wide = (key_width_bits + geo.width_bits - 1) // geo.width_bits
        rows = self.free_blocks(kind) // wide
        return rows * geo.entries

    def utilization(self, kind: MemoryKind) -> float:
        """Fraction of blocks of ``kind`` currently claimed."""
        total = self._totals[kind]
        if total == 0:
            return 0.0
        return self.claimed_blocks(kind) / total
