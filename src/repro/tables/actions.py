"""Action primitives executed on a table match.

An :class:`Action` is an ordered list of :class:`ActionPrimitive`, each a
single ALU-grade operation: move a constant or field into a PHV field,
arithmetic between fields, or a read-modify-write on a stateful register.
This mirrors the VLIW action engines of RMT match-action units — each
primitive is one instruction slot.

Actions run against an :class:`ActionContext` so the same primitives work
in scalar MAUs (RMT), array MAUs (ADCP), and unit tests without any of them
knowing about pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from ..errors import ConfigError, TableError
from ..net.phv import PHV
from .registers import RegisterArray


class ActionOp(Enum):
    """Operation kinds available to one primitive (one VLIW slot)."""

    SET_CONST = "set_const"  # dst = imm
    COPY = "copy"            # dst = src
    ADD = "add"              # dst = src + operand(field or imm)
    SUB = "sub"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    REG_READ = "reg_read"    # dst = reg[index]
    REG_WRITE = "reg_write"  # reg[index] = src
    REG_ADD = "reg_add"      # reg[index] += src; dst = new value
    REG_MIN = "reg_min"
    REG_MAX = "reg_max"


_BINARY_OPS = {
    ActionOp.ADD: lambda a, b: a + b,
    ActionOp.SUB: lambda a, b: a - b,
    ActionOp.MIN: min,
    ActionOp.MAX: max,
    ActionOp.AND: lambda a, b: a & b,
    ActionOp.OR: lambda a, b: a | b,
    ActionOp.XOR: lambda a, b: a ^ b,
}

_REGISTER_OPS = (
    ActionOp.REG_READ,
    ActionOp.REG_WRITE,
    ActionOp.REG_ADD,
    ActionOp.REG_MIN,
    ActionOp.REG_MAX,
)


@dataclass
class ActionContext:
    """Everything a primitive may touch: the PHV and the stage's registers."""

    phv: PHV
    registers: dict[str, RegisterArray] = field(default_factory=dict)

    def register(self, name: str) -> RegisterArray:
        if name not in self.registers:
            raise TableError(f"stage has no register array {name!r}")
        return self.registers[name]


@dataclass(frozen=True)
class ActionPrimitive:
    """One instruction slot.

    Fields are interpreted per op:
        dst: PHV field written (ops that produce a value).
        src: PHV field read, or None when ``immediate`` is used.
        immediate: Constant operand.
        register: Register array name (register ops).
        index_field: PHV field giving the register index; ``immediate``
            gives a constant index when this is None.
    """

    op: ActionOp
    dst: str | None = None
    src: str | None = None
    immediate: int = 0
    register: str | None = None
    index_field: str | None = None

    def __post_init__(self) -> None:
        if self.op in _REGISTER_OPS and self.register is None:
            raise ConfigError(f"{self.op.value} requires a register name")
        if self.op is ActionOp.SET_CONST and self.dst is None:
            raise ConfigError("set_const requires a destination field")
        if self.op is ActionOp.COPY and (self.dst is None or self.src is None):
            raise ConfigError("copy requires src and dst fields")

    def _operand(self, ctx: ActionContext) -> int:
        if self.src is not None:
            return ctx.phv[self.src]
        return self.immediate

    def _register_index(self, ctx: ActionContext) -> int:
        if self.index_field is not None:
            return ctx.phv[self.index_field]
        return self.immediate

    def execute(self, ctx: ActionContext) -> None:
        """Run the primitive against ``ctx``."""
        if self.op is ActionOp.SET_CONST:
            assert self.dst is not None
            ctx.phv[self.dst] = self.immediate
        elif self.op is ActionOp.COPY:
            assert self.dst is not None and self.src is not None
            ctx.phv[self.dst] = ctx.phv[self.src]
        elif self.op in _BINARY_OPS:
            if self.dst is None:
                raise TableError(f"{self.op.value} requires a destination")
            base = ctx.phv[self.dst]
            ctx.phv[self.dst] = _BINARY_OPS[self.op](base, self._operand(ctx))
        elif self.op is ActionOp.REG_READ:
            if self.dst is None:
                raise TableError("reg_read requires a destination")
            reg = ctx.register(self.register or "")
            ctx.phv[self.dst] = reg.read(self._register_index(ctx))
        elif self.op is ActionOp.REG_WRITE:
            reg = ctx.register(self.register or "")
            reg.write(self._register_index(ctx), self._operand(ctx))
        elif self.op in (ActionOp.REG_ADD, ActionOp.REG_MIN, ActionOp.REG_MAX):
            reg = ctx.register(self.register or "")
            index = self._register_index(ctx)
            operand = self._operand(ctx)
            if self.op is ActionOp.REG_ADD:
                result = reg.add(index, operand)
            elif self.op is ActionOp.REG_MIN:
                result = reg.merge_min(index, operand)
            else:
                result = reg.merge_max(index, operand)
            if self.dst is not None:
                ctx.phv[self.dst] = result
        else:  # pragma: no cover - enum is exhaustive
            raise TableError(f"unknown action op {self.op}")


class Action:
    """A named, ordered bundle of primitives (one table entry's action).

    ``slots`` bounds the VLIW width: an action with more primitives than
    the MAU has instruction slots cannot be compiled, which is one of the
    expressiveness walls the paper attributes to RMT.
    """

    def __init__(
        self,
        name: str,
        primitives: Sequence[ActionPrimitive] = (),
        slots: int | None = None,
    ) -> None:
        if slots is not None and len(primitives) > slots:
            raise ConfigError(
                f"action {name!r} uses {len(primitives)} primitives, "
                f"MAU has {slots} slots"
            )
        self.name = name
        self.primitives = list(primitives)

    def execute(self, ctx: ActionContext) -> None:
        for primitive in self.primitives:
            primitive.execute(ctx)

    def __len__(self) -> int:
        return len(self.primitives)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Action {self.name} [{len(self.primitives)} prims]>"


class NoAction(Action):
    """The identity action (a match that only counts)."""

    def __init__(self) -> None:
        super().__init__("no_action", ())


class DropAction(Action):
    """Marks the packet dropped via a reserved metadata write."""

    def __init__(self, reason: str = "dropped_by_table") -> None:
        super().__init__("drop", ())
        self.reason = reason

    def execute(self, ctx: ActionContext) -> None:
        # The pipeline interprets this flag after the stage completes.
        ctx.phv.set_meta("drop", 1)
        ctx.phv.set_meta("drop_reason", self.reason)


class ForwardAction(Action):
    """Sets the packet's egress port through reserved metadata."""

    def __init__(self, egress_port: int) -> None:
        if egress_port < 0:
            raise ConfigError(f"egress port must be >= 0, got {egress_port}")
        super().__init__(f"forward_to_{egress_port}", ())
        self.egress_port = egress_port

    def execute(self, ctx: ActionContext) -> None:
        ctx.phv.set_meta("egress_port", self.egress_port)
