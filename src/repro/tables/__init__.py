"""Match-action substrate: table memories, match tables, actions, registers.

This package models the stateful resources inside a pipeline stage:

- :class:`~repro.tables.memory.MemoryBlock` /
  :class:`~repro.tables.memory.StageMemory` — SRAM/TCAM block pools;
  capacity accounting is what makes the Figure 3 replication experiment
  honest (replicated tables consume real blocks).
- :class:`~repro.tables.mat.MatchTable` — exact/ternary/LPM matching with
  entry storage backed by memory blocks.
- :mod:`~repro.tables.actions` — the per-entry action primitives (ALU ops
  over PHV fields and register state).
- :class:`~repro.tables.registers.RegisterArray` — stateful memory that
  survives across packets, the paper's "data lifted from prior-forwarded
  packets".
"""

from .actions import (
    Action,
    ActionOp,
    ActionPrimitive,
    DropAction,
    ForwardAction,
    NoAction,
)
from .mat import MatchEntry, MatchKind, MatchTable, TernaryPattern
from .memory import MemoryBlock, MemoryKind, StageMemory
from .registers import RegisterArray

__all__ = [
    "Action",
    "ActionOp",
    "ActionPrimitive",
    "DropAction",
    "ForwardAction",
    "MatchEntry",
    "MatchKind",
    "MatchTable",
    "MemoryBlock",
    "MemoryKind",
    "NoAction",
    "RegisterArray",
    "StageMemory",
    "TernaryPattern",
]
