"""Stateful registers: data that survives across packets.

"Limited amounts of data lifted from prior-forwarded packets could be kept
on the switch ... known as stateful processing" (paper, section 1).  A
:class:`RegisterArray` is an indexed array of fixed-width cells supporting
the read-modify-write operations hardware register ALUs provide (add, min,
max, overwrite).  Values wrap at the cell width, as silicon does.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, TableError


class RegisterArray:
    """A fixed-size array of fixed-width stateful cells.

    Backed by a numpy array for bulk operations (the array MAU reads and
    writes many cells per cycle).  All single-cell mutators return the
    post-operation value, matching the "read the new value into the PHV"
    semantics of register ALUs.
    """

    def __init__(self, name: str, size: int, width_bits: int = 32) -> None:
        if size <= 0:
            raise ConfigError(f"register {name!r} size must be positive, got {size}")
        if not 1 <= width_bits <= 64:
            raise ConfigError(
                f"register {name!r} width must be in [1, 64], got {width_bits}"
            )
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._cells = np.zeros(size, dtype=np.uint64)
        self.reads = 0
        self.writes = 0

    @property
    def access_count(self) -> int:
        """Total state accesses (reads plus writes) since construction.

        The resource monitor samples this per pipeline to expose how
        central-bank / register pressure evolves over a run.
        """
        return self.reads + self.writes

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise TableError(
                f"register {self.name!r} index {index} out of range "
                f"[0, {self.size})"
            )

    def read(self, index: int) -> int:
        self._check_index(index)
        self.reads += 1
        return int(self._cells[index])

    def write(self, index: int, value: int) -> int:
        self._check_index(index)
        self.writes += 1
        self._cells[index] = np.uint64(value & self._mask)
        return int(self._cells[index])

    def add(self, index: int, value: int) -> int:
        """Wrapping add; returns the new value."""
        self._check_index(index)
        self.reads += 1
        self.writes += 1
        new = (int(self._cells[index]) + value) & self._mask
        self._cells[index] = np.uint64(new)
        return new

    def merge_min(self, index: int, value: int) -> int:
        self._check_index(index)
        self.reads += 1
        self.writes += 1
        new = min(int(self._cells[index]), value & self._mask)
        self._cells[index] = np.uint64(new)
        return new

    def merge_max(self, index: int, value: int) -> int:
        self._check_index(index)
        self.reads += 1
        self.writes += 1
        new = max(int(self._cells[index]), value & self._mask)
        self._cells[index] = np.uint64(new)
        return new

    # --- bulk operations (array MAU path) ------------------------------------

    def read_many(self, indices: list[int]) -> list[int]:
        for index in indices:
            self._check_index(index)
        self.reads += len(indices)
        return [int(self._cells[i]) for i in indices]

    def add_many(self, indices: list[int], values: list[int]) -> list[int]:
        """Element-wise wrapping adds; duplicate indices accumulate in order."""
        if len(indices) != len(values):
            raise TableError(
                f"register {self.name!r}: {len(indices)} indices vs "
                f"{len(values)} values"
            )
        return [self.add(i, v) for i, v in zip(indices, values)]

    def snapshot(self) -> np.ndarray:
        """Copy of the raw cell contents."""
        return self._cells.copy()

    def load(self, values: np.ndarray | list[int]) -> None:
        """Bulk-initialize cells (control-plane download)."""
        array = np.asarray(values, dtype=np.uint64)
        if array.shape != (self.size,):
            raise ConfigError(
                f"register {self.name!r} expects {self.size} values, "
                f"got shape {array.shape}"
            )
        self._cells = array & np.uint64(self._mask)

    def reset(self) -> None:
        self._cells.fill(0)

    @property
    def bits(self) -> int:
        """Total storage the array occupies."""
        return self.size * self.width_bits

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RegisterArray {self.name} {self.size}x{self.width_bits}b>"
