"""Match tables: exact, ternary, and longest-prefix matching.

A :class:`MatchTable` owns entries, claims blocks from a
:class:`~repro.tables.memory.StageMemory` on installation, and resolves
lookups to an :class:`~repro.tables.actions.Action`.  Exact tables live in
SRAM; ternary and LPM tables live in TCAM with priority resolution, exactly
as the RMT memory split dictates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import CapacityError, ConfigError, TableError
from .actions import Action, NoAction
from .memory import MemoryKind, StageMemory


class MatchKind(Enum):
    """Match semantics of a table."""

    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"

    @property
    def memory_kind(self) -> MemoryKind:
        return MemoryKind.SRAM if self is MatchKind.EXACT else MemoryKind.TCAM


@dataclass(frozen=True)
class TernaryPattern:
    """A value/mask pair: bit positions where mask=1 must equal value."""

    value: int
    mask: int

    def matches(self, key: int) -> bool:
        return (key & self.mask) == (self.value & self.mask)

    @classmethod
    def exact(cls, value: int, width_bits: int) -> "TernaryPattern":
        return cls(value, (1 << width_bits) - 1)

    @classmethod
    def prefix(cls, value: int, prefix_len: int, width_bits: int) -> "TernaryPattern":
        if not 0 <= prefix_len <= width_bits:
            raise ConfigError(
                f"prefix length {prefix_len} out of range [0, {width_bits}]"
            )
        if prefix_len == 0:
            return cls(0, 0)
        mask = ((1 << prefix_len) - 1) << (width_bits - prefix_len)
        return cls(value & mask, mask)

    @property
    def prefix_length(self) -> int:
        """Number of leading set bits (meaningful for LPM patterns)."""
        return bin(self.mask).count("1")


@dataclass
class MatchEntry:
    """One installed entry: pattern, action, priority, hit counter."""

    pattern: TernaryPattern
    action: Action
    priority: int = 0
    hits: int = 0


@dataclass
class LookupResult:
    """Outcome of one key lookup."""

    hit: bool
    action: Action
    entry: MatchEntry | None = None


class MatchTable:
    """A match-action table backed by stage memory.

    ``capacity`` is the provisioned entry count; memory blocks for the full
    capacity are claimed up front (hardware reserves, it does not grow).
    ``default_action`` runs on a miss.
    """

    def __init__(
        self,
        name: str,
        kind: MatchKind,
        key_width_bits: int,
        capacity: int,
        memory: StageMemory | None = None,
        default_action: Action | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigError(f"table {name!r} capacity must be positive")
        if key_width_bits <= 0:
            raise ConfigError(f"table {name!r} key width must be positive")
        self.name = name
        self.kind = kind
        self.key_width_bits = key_width_bits
        self.capacity = capacity
        self.default_action = default_action or NoAction()
        self.memory = memory
        self.blocks_claimed = 0
        if memory is not None:
            self.blocks_claimed = memory.claim(
                name, kind.memory_kind, capacity, key_width_bits
            )
        self._exact_index: dict[int, MatchEntry] = {}
        self._entries: list[MatchEntry] = []
        self.lookups = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def fill(self) -> float:
        """Installed entries as a fraction of provisioned capacity.

        Sampled by the resource monitor as MAT bank occupancy.
        """
        return len(self._entries) / self.capacity

    @property
    def access_count(self) -> int:
        """Total lookups served, the monitor's MAT access-count series."""
        return self.lookups

    def install(
        self,
        pattern: TernaryPattern | int,
        action: Action | None = None,
        priority: int = 0,
    ) -> MatchEntry:
        """Install an entry; ints are promoted to exact patterns."""
        if self.is_full:
            raise CapacityError(
                f"table {self.name!r} is full ({self.capacity} entries)"
            )
        if isinstance(pattern, int):
            pattern = TernaryPattern.exact(pattern, self.key_width_bits)
        if self.kind is MatchKind.EXACT:
            full_mask = (1 << self.key_width_bits) - 1
            if pattern.mask != full_mask:
                raise TableError(
                    f"exact table {self.name!r} requires full masks"
                )
            if pattern.value in self._exact_index:
                raise TableError(
                    f"duplicate exact key {pattern.value} in {self.name!r}"
                )
        entry = MatchEntry(pattern, action or NoAction(), priority)
        self._entries.append(entry)
        if self.kind is MatchKind.EXACT:
            self._exact_index[pattern.value] = entry
        return entry

    def remove(self, entry: MatchEntry) -> None:
        try:
            self._entries.remove(entry)
        except ValueError:
            raise TableError(f"entry not present in table {self.name!r}")
        if self.kind is MatchKind.EXACT:
            del self._exact_index[entry.pattern.value]

    def lookup(self, key: int) -> LookupResult:
        """Resolve ``key``: exact via hash index, ternary by priority,
        LPM by longest prefix."""
        self.lookups += 1
        if self.kind is MatchKind.EXACT:
            entry = self._exact_index.get(key)
            if entry is not None:
                entry.hits += 1
                return LookupResult(True, entry.action, entry)
            self.misses += 1
            return LookupResult(False, self.default_action)

        best: MatchEntry | None = None
        for entry in self._entries:
            if not entry.pattern.matches(key):
                continue
            if best is None:
                best = entry
            elif self.kind is MatchKind.LPM:
                if entry.pattern.prefix_length > best.pattern.prefix_length:
                    best = entry
            elif entry.priority > best.priority:
                best = entry
        if best is None:
            self.misses += 1
            return LookupResult(False, self.default_action)
        best.hits += 1
        return LookupResult(True, best.action, best)

    def lookup_many(self, keys: list[int]) -> list[LookupResult]:
        """Batch lookup: the array-MAU entry point.

        Semantically identical to sequential lookups; the *timing* of batch
        lookups is modeled by the MAUs, not here.
        """
        return [self.lookup(key) for key in keys]

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return (self.lookups - self.misses) / self.lookups

    def release(self) -> None:
        """Return claimed memory blocks (table teardown)."""
        if self.memory is not None and self.blocks_claimed:
            self.memory.release(self.name)
            self.blocks_claimed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MatchTable {self.name} {self.kind.value} "
            f"{len(self._entries)}/{self.capacity}>"
        )
