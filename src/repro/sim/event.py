"""Discrete-event simulation core.

The kernel is deliberately small: a priority queue of timestamped events
with deterministic FIFO tie-breaking, plus a :class:`Simulator` facade that
owns the clock, dispatches events, and enforces time monotonicity.

Time is a float in **seconds**.  Cycle-level models convert cycles to
seconds through :class:`repro.sim.clock.Clock`, which lets components in
different clock domains (e.g. a pipeline at 0.6 GHz and a MAT memory at
9.6 GHz) share one event queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError

Action = Callable[[], Any]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, sequence)``.  ``sequence`` is a
    monotonically increasing tie-breaker so two events at the same time and
    priority always fire in the order they were scheduled, which keeps runs
    bit-for-bit reproducible.
    """

    time: float
    priority: int
    sequence: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when its time arrives."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, action: Action, priority: int = 0) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        event = Event(time, priority, next(self._sequence), action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the timestamp of the earliest live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time


class Simulator:
    """Owns simulated time and dispatches events in order.

    Components schedule work with :meth:`at` (absolute time) or :meth:`after`
    (relative delay).  :meth:`run` drains the queue, optionally bounded by
    ``until`` (a time) or ``max_events`` (a safety valve for models that
    generate events forever).
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self.events_dispatched = 0
        self.trace = None
        """Optional :class:`~repro.telemetry.recorder.TraceRecorder`.

        When set, each dispatched event is recorded under the verbose
        ``SIM`` category (opt-in; filtered out by default recorders).
        """
        self.time_probe: Callable[[float], None] | None = None
        """Optional callback fired whenever simulated time is about to
        advance, with the new time.  Used by telemetry's periodic metric
        sampler and the resource monitor: because probes never schedule
        events, observing a run cannot change its event order or final
        duration."""

    def add_time_probe(self, probe: Callable[[float], None]) -> None:
        """Install ``probe`` on the clock, chaining after any existing one.

        The dispatch loop keeps its single ``time_probe is None`` check —
        attaching several observers (metric snapshots plus a resource
        monitor) costs the uninstrumented fast path nothing.  Probes fire
        in installation order with the same new-time argument.
        """
        current = self.time_probe
        if current is None:
            self.time_probe = probe
            return

        def chained(new_time_s: float, _first=current, _second=probe) -> None:
            _first(new_time_s)
            _second(new_time_s)

        self.time_probe = chained

    def at(self, time: float, action: Action, priority: int = 0) -> Event:
        """Schedule ``action`` at absolute time ``time`` (seconds)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        return self.queue.push(time, action, priority)

    def after(self, delay: float, action: Action, priority: int = 0) -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.push(self.now + delay, action, priority)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Dispatch events until the queue drains or a bound is hit.

        Returns the number of events dispatched by this call.  When
        ``until`` is given, events at exactly ``until`` still fire; later
        ones stay queued and ``now`` advances to ``until``.
        """
        dispatched = 0
        while True:
            if max_events is not None and dispatched >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                if self.time_probe is not None and until > self.now:
                    self.time_probe(until)
                self.now = until
                break
            event = self.queue.pop()
            assert event is not None  # peek_time said there was one
            if event.time < self.now:
                raise SimulationError(
                    f"event time {event.time} precedes current time {self.now}"
                )
            if self.time_probe is not None and event.time > self.now:
                self.time_probe(event.time)
            self.now = event.time
            event.action()
            dispatched += 1
            if self.trace is not None:
                self._trace_dispatch(event)
        self.events_dispatched += dispatched
        return dispatched

    def _trace_dispatch(self, event: Event) -> None:
        from ..telemetry.events import Category, Severity

        self.trace.emit(
            Category.SIM,
            "sim.dispatch",
            event.time,
            component="sim.kernel",
            severity=Severity.DEBUG,
            sequence=event.sequence,
            priority=event.priority,
        )

    def step(self) -> bool:
        """Dispatch exactly one event; return False if the queue was empty."""
        return self.run(max_events=1) == 1
