"""Discrete-event simulation core.

The kernel is deliberately small: a priority queue of timestamped events
with deterministic FIFO tie-breaking, plus a :class:`Simulator` facade that
owns the clock, dispatches events, and enforces time monotonicity.

Time is a float in **seconds**.  Cycle-level models convert cycles to
seconds through :class:`repro.sim.clock.Clock`, which lets components in
different clock domains (e.g. a pipeline at 0.6 GHz and a MAT memory at
9.6 GHz) share one event queue.

Two queue backends implement the same total order ``(time, priority,
sequence)`` — see docs/KERNEL.md for the backend contract:

``heap``
    A binary min-heap of packed ``(time, priority, sequence, event)``
    tuples (:class:`EventQueue`).  O(log n) everywhere, no tuning knobs,
    and the reference implementation every other backend must match
    pop-for-pop.

``calendar``
    A calendar queue (:class:`CalendarQueue`): an array of time buckets
    covering one "year" of simulated time plus an overflow heap for
    events beyond the year.  Amortised O(1) push/pop when the schedule
    horizon is dense.  It bootstraps in heap mode and migrates to
    buckets once it has seen enough events to size the buckets from the
    observed schedule horizon.

``auto``
    A :class:`CalendarQueue` that only migrates to buckets when the live
    event population crosses :data:`AUTO_CALENDAR_THRESHOLD`; below that
    the C-accelerated heap wins and the queue simply stays in heap mode.

Because every backend agrees on the same strict total order (``sequence``
is unique), the dispatch sequence — and therefore every trace, ledger and
result — is bit-for-bit identical across backends.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, Callable

from ..errors import SimulationError

Action = Callable[[], Any]

#: Pushes a CalendarQueue observes before sizing buckets from the
#: schedule horizon (min/max pending time) seen so far.
CALENDAR_BOOTSTRAP_PUSHES = 64

#: Number of buckets in one calendar "year".
CALENDAR_BUCKETS = 256

#: Live-event population at which the ``auto`` backend migrates from
#: heap mode to calendar buckets.  Below this the stdlib heap (C code)
#: is faster than Python-level bucket bookkeeping.
AUTO_CALENDAR_THRESHOLD = 4096

#: Environment variable consulted when ``Simulator(queue_backend=None)``;
#: lets CI pin the fallback backend without touching call sites.
QUEUE_BACKEND_ENV = "REPRO_QUEUE_BACKEND"

QUEUE_BACKENDS = ("auto", "heap", "calendar")


class Event:
    """A scheduled callback.

    Events order by ``(time, priority, sequence)``.  ``sequence`` is a
    monotonically increasing tie-breaker so two events at the same time and
    priority always fire in the order they were scheduled, which keeps runs
    bit-for-bit reproducible.  Queue internals store packed
    ``(time, priority, sequence, event)`` tuples so the comparisons heapq
    performs never enter Python-level rich comparison on ``Event``.
    """

    __slots__ = ("time", "priority", "sequence", "action", "cancelled",
                 "_queue")

    def __init__(self, time: float, priority: int, sequence: int,
                 action: Action, queue: "EventQueue | None" = None) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.action = action
        self.cancelled = False
        self._queue = queue

    def __lt__(self, other: "Event") -> bool:
        return ((self.time, self.priority, self.sequence)
                < (other.time, other.priority, other.sequence))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return (f"Event(time={self.time!r}, priority={self.priority!r}, "
                f"sequence={self.sequence!r}{state})")

    def cancel(self) -> None:
        """Mark the event so the queue skips it when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._live -= 1
                self._queue = None


class EventQueue:
    """A min-heap of events with lazy cancellation (``heap`` backend).

    ``__len__`` is O(1): a live-event counter is maintained on push and
    decremented by :meth:`Event.cancel` / :meth:`pop`, so fabric-scale
    queues don't pay a linear scan in TM credit checks.
    """

    backend = "heap"

    __slots__ = ("_heap", "_live", "_next_sequence")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._live = 0
        self._next_sequence = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, action: Action, priority: int = 0) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = Event(time, priority, sequence, action, self)
        heappush(self._heap, (time, priority, sequence, event))
        self._live += 1
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)[3]
            if not event.cancelled:
                self._live -= 1
                event._queue = None
                return event
        return None

    def pop_due(self, until: float) -> Event | None:
        """Pop the earliest live event iff its time is <= ``until``.

        Leaves the head untouched (and returns None) when it is beyond
        ``until``; the uninstrumented dispatch loop uses this to combine
        peek and pop into one call per event.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[3]
            if event.cancelled:
                heappop(heap)
                continue
            if head[0] > until:
                return None
            heappop(heap)
            self._live -= 1
            event._queue = None
            return event
        return None

    def peek_time(self) -> float | None:
        """Return the timestamp of the earliest live event without popping."""
        heap = self._heap
        while heap:
            head = heap[0]
            if not head[3].cancelled:
                return head[0]
            heappop(heap)
        return None


class CalendarQueue:
    """Calendar-queue backend: bucketed by time with an overflow heap.

    Implements the exact :class:`EventQueue` contract.  The queue starts
    in *heap mode* and watches the schedule horizon (min/max pending
    timestamp).  After :data:`CALENDAR_BOOTSTRAP_PUSHES` pushes — or, for
    the ``auto`` backend, once the live population also crosses
    ``migrate_at`` — it sizes :data:`CALENDAR_BUCKETS` buckets over the
    observed horizon and migrates.  Each bucket is itself a small heap of
    packed tuples, so within-bucket order is the same strict
    ``(time, priority, sequence)`` total order as the heap backend; the
    bucket cursor only ever consumes the bucket containing the global
    minimum, so pops come out in exactly the heap backend's order.

    Events beyond the current calendar year land in an overflow heap;
    when a year drains, the calendar re-bases on the earliest overflow
    event, so sparse stretches are skipped in O(overflow) rather than
    scanning empty buckets.
    """

    backend = "calendar"

    __slots__ = ("_heap", "_live", "_next_sequence", "_buckets", "_width",
                 "_base", "_cursor", "_year_end", "_overflow", "_in_year",
                 "_pushes", "_min_seen", "_max_seen", "_migrate_at")

    def __init__(self, migrate_at: int = 0) -> None:
        self._heap: list[tuple[float, int, int, Event]] | None = []
        self._live = 0
        self._next_sequence = 0
        self._pushes = 0
        self._min_seen = float("inf")
        self._max_seen = float("-inf")
        self._migrate_at = migrate_at
        # Bucket state (unused until migration).
        self._buckets: list[list[tuple[float, int, int, Event]]] = []
        self._width = 0.0
        self._base = 0.0
        self._cursor = 0
        self._year_end = 0.0
        self._in_year = 0
        self._overflow: list[tuple[float, int, int, Event]] = []

    def __len__(self) -> int:
        return self._live

    # -- heap-mode bootstrap ------------------------------------------------

    def _maybe_migrate(self) -> None:
        heap = self._heap
        assert heap is not None
        if self._pushes < CALENDAR_BOOTSTRAP_PUSHES:
            return
        if self._live < self._migrate_at:
            return
        horizon = self._max_seen - self._min_seen
        if horizon <= 0.0:
            # Degenerate schedule (all events at one instant): buckets
            # cannot discriminate, so stay in heap mode a while longer.
            self._pushes = 0
            return
        self._width = horizon / CALENDAR_BUCKETS
        base = min((entry[0] for entry in heap), default=self._min_seen)
        self._base = base
        self._cursor = 0
        self._year_end = base + self._width * CALENDAR_BUCKETS
        self._buckets = [[] for _ in range(CALENDAR_BUCKETS)]
        self._in_year = 0
        self._overflow = []
        entries = heap
        self._heap = None  # bucket mode from here on
        for entry in entries:
            if not entry[3].cancelled:
                self._place(entry)

    def _place(self, entry: tuple[float, int, int, Event]) -> None:
        """File one live entry into its bucket or the overflow heap."""
        time = entry[0]
        if time >= self._year_end:
            heappush(self._overflow, entry)
            return
        index = int((time - self._base) / self._width)
        if index < self._cursor:
            # A push at the current instant can land numerically behind
            # the cursor; clamping keeps it poppable.  Within-bucket heap
            # order still yields the global (time, priority, sequence)
            # minimum because every earlier bucket is empty.
            index = self._cursor
        elif index >= CALENDAR_BUCKETS:
            index = CALENDAR_BUCKETS - 1
        heappush(self._buckets[index], entry)
        self._in_year += 1

    def _advance_year(self) -> bool:
        """Re-base the calendar on the earliest overflow event.

        Returns False when nothing is pending anywhere.
        """
        overflow = self._overflow
        while overflow and overflow[0][3].cancelled:
            heappop(overflow)
        if not overflow:
            return False
        self._base = overflow[0][0]
        self._cursor = 0
        self._year_end = self._base + self._width * CALENDAR_BUCKETS
        self._in_year = 0
        keep: list[tuple[float, int, int, Event]] = []
        for entry in overflow:
            if entry[3].cancelled:
                continue
            if entry[0] < self._year_end:
                self._place(entry)
            else:
                keep.append(entry)
        keep.sort()
        self._overflow = keep
        return True

    def _head_bucket(self) -> list[tuple[float, int, int, Event]] | None:
        """Advance the cursor to the bucket holding the earliest live
        event, discarding cancelled entries, and return that bucket."""
        while True:
            while self._cursor < CALENDAR_BUCKETS:
                bucket = self._buckets[self._cursor]
                while bucket:
                    if bucket[0][3].cancelled:
                        heappop(bucket)
                        self._in_year -= 1
                        continue
                    return bucket
                self._cursor += 1
            if not self._advance_year():
                return None

    # -- EventQueue contract ------------------------------------------------

    def push(self, time: float, action: Action, priority: int = 0) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = Event(time, priority, sequence, action, self)
        entry = (time, priority, sequence, event)
        self._live += 1
        heap = self._heap
        if heap is not None:
            heappush(heap, entry)
            self._pushes += 1
            if time < self._min_seen:
                self._min_seen = time
            if time > self._max_seen:
                self._max_seen = time
            self._maybe_migrate()
        else:
            self._place(entry)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        if heap is not None:
            while heap:
                event = heappop(heap)[3]
                if not event.cancelled:
                    self._live -= 1
                    event._queue = None
                    return event
            return None
        bucket = self._head_bucket()
        if bucket is None:
            return None
        event = heappop(bucket)[3]
        self._in_year -= 1
        self._live -= 1
        event._queue = None
        return event

    def pop_due(self, until: float) -> Event | None:
        """Pop the earliest live event iff its time is <= ``until``."""
        heap = self._heap
        if heap is not None:
            while heap:
                head = heap[0]
                event = head[3]
                if event.cancelled:
                    heappop(heap)
                    continue
                if head[0] > until:
                    return None
                heappop(heap)
                self._live -= 1
                event._queue = None
                return event
            return None
        bucket = self._head_bucket()
        if bucket is None or bucket[0][0] > until:
            return None
        event = heappop(bucket)[3]
        self._in_year -= 1
        self._live -= 1
        event._queue = None
        return event

    def peek_time(self) -> float | None:
        """Return the timestamp of the earliest live event without popping."""
        heap = self._heap
        if heap is not None:
            while heap:
                head = heap[0]
                if not head[3].cancelled:
                    return head[0]
                heappop(heap)
            return None
        bucket = self._head_bucket()
        if bucket is None:
            return None
        return bucket[0][0]


def make_event_queue(backend: str) -> EventQueue | CalendarQueue:
    """Instantiate a queue backend by name (``auto``/``heap``/``calendar``).

    ``auto`` is a calendar queue that only leaves heap mode once the live
    population crosses :data:`AUTO_CALENDAR_THRESHOLD` — schedule-horizon
    statistics (bucket width from observed min/max pending time) are
    gathered either way, so migration is cheap when it happens.
    """
    if backend == "heap":
        return EventQueue()
    if backend == "calendar":
        return CalendarQueue(migrate_at=0)
    if backend == "auto":
        return CalendarQueue(migrate_at=AUTO_CALENDAR_THRESHOLD)
    raise SimulationError(
        f"unknown queue backend {backend!r} "
        f"(expected one of {', '.join(QUEUE_BACKENDS)})"
    )


def _resolve_backend(requested: str | None) -> str:
    if requested is not None:
        return requested
    return os.environ.get(QUEUE_BACKEND_ENV, "auto")


class Simulator:
    """Owns simulated time and dispatches events in order.

    Components schedule work with :meth:`at` (absolute time) or :meth:`after`
    (relative delay).  :meth:`run` drains the queue, optionally bounded by
    ``until`` (a time) or ``max_events`` (a safety valve for models that
    generate events forever).

    ``queue_backend`` selects the event-queue implementation ("auto",
    "heap" or "calendar"); when omitted, the ``REPRO_QUEUE_BACKEND``
    environment variable is consulted, defaulting to "auto".  All
    backends dispatch in the identical (time, priority, sequence) order,
    so the choice never affects results — only wall-clock speed.
    """

    def __init__(self, queue_backend: str | None = None) -> None:
        backend = _resolve_backend(queue_backend)
        self.queue = make_event_queue(backend)
        self.queue_backend = backend
        self.now = 0.0
        self.events_dispatched = 0
        self.events_coalesced = 0
        """Per-packet transactions folded into burst events by batched
        admission.  ``events_dispatched + events_coalesced`` is the
        logical event count — what ``events_dispatched`` would read if
        every same-timestamp burst were scheduled packet-by-packet —
        and is the unit throughput benchmarks report as events/s."""
        self.trace = None
        """Optional :class:`~repro.telemetry.recorder.TraceRecorder`.

        When set, each dispatched event is recorded under the verbose
        ``SIM`` category (opt-in; filtered out by default recorders).
        """
        self.time_probe: Callable[[float], None] | None = None
        """Optional callback fired whenever simulated time is about to
        advance, with the new time.  Used by telemetry's periodic metric
        sampler and the resource monitor: because probes never schedule
        events, observing a run cannot change its event order or final
        duration."""
        self._time_probes: list[Callable[[float], None]] = []
        self._probe_chain: Callable[[float], None] | None = None

    @property
    def logical_events(self) -> int:
        """Dispatched plus coalesced events: the backend- and
        batching-independent work count.  Two runs of one workload agree
        on this number whether admission was batched (``counters``/
        ``sampled`` telemetry, ``trace is None``) or per-packet
        (``full``), which is what makes telemetry-level overhead
        comparisons in events/s meaningful."""
        return self.events_dispatched + self.events_coalesced

    def add_time_probe(self, probe: Callable[[float], None]) -> None:
        """Install ``probe`` on the clock, chaining after any existing one.

        The dispatch loop keeps its single ``time_probe is None`` check —
        attaching several observers (metric snapshots plus a resource
        monitor) costs the uninstrumented fast path nothing.  Probes fire
        in installation order with the same new-time argument.

        Probes registered here are also tracked individually so the
        dispatcher can consult their ``next_deadline_s()`` (when every
        probe offers one) and keep dispatching on the uninstrumented
        fast path between deadlines — see :meth:`_probe_deadline`.
        """
        current = self.time_probe
        if current is None:
            self.time_probe = probe
            self._time_probes = [probe]
            self._probe_chain = probe
            return
        if current is not self._probe_chain:
            # A probe was installed by direct assignment, bypassing this
            # method.  Keep chaining it, but record it as an opaque
            # member: it carries no deadline contract, so the probed
            # fast path stands down (``_probe_deadline`` returns None).
            self._time_probes = [current]

        def chained(new_time_s: float, _first=current, _second=probe) -> None:
            _first(new_time_s)
            _second(new_time_s)

        self._time_probes.append(probe)
        self.time_probe = chained
        self._probe_chain = chained

    def _probe_deadline(self) -> float | None:
        """Earliest ``next_deadline_s()`` across registered time probes.

        Returns None when any probe lacks the deadline protocol (or when
        ``time_probe`` was assigned directly, hiding its members), which
        sends :meth:`run` to the instrumented reference loop.

        The protocol (docs/KERNEL.md): a probe exposing
        ``next_deadline_s() -> float`` promises that calls with
        ``new_time < deadline`` are no-ops, and that after a call with
        ``new_time >= deadline`` the reported deadline strictly exceeds
        that ``new_time``.  Grid samplers (ResourceMonitor,
        PeriodicSampler, RollingWindowMonitor) satisfy this naturally.
        """
        if self.time_probe is not self._probe_chain or not self._time_probes:
            return None
        deadline = float("inf")
        for probe in self._time_probes:
            next_deadline = getattr(probe, "next_deadline_s", None)
            if next_deadline is None:
                return None
            deadline_s = next_deadline()
            if deadline_s < deadline:
                deadline = deadline_s
        return deadline

    def at(self, time: float, action: Action, priority: int = 0) -> Event:
        """Schedule ``action`` at absolute time ``time`` (seconds)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        return self.queue.push(time, action, priority)

    def after(self, delay: float, action: Action, priority: int = 0) -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.push(self.now + delay, action, priority)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Dispatch events until the queue drains or a bound is hit.

        Returns the number of events dispatched by this call.  When
        ``until`` is given, events at exactly ``until`` still fire; later
        ones stay queued and ``now`` advances to ``until``.

        Dispatch is split into specialized loops with identical
        semantics: the uninstrumented one (no trace, no time probe, no
        ``max_events``) does no per-event feature branching; when every
        registered time probe publishes a ``next_deadline_s()`` the
        probed fast path dispatches uninstrumented *between* deadlines —
        see docs/KERNEL.md for the fast-path discipline.
        """
        if self.trace is None and max_events is None:
            if self.time_probe is None:
                return self._run_fast(until)
            deadline = self._probe_deadline()
            if deadline is not None:
                return self._run_fast_probed(until, deadline)
        return self._run_instrumented(until, max_events)

    def _run_fast(self, until: float | None) -> int:
        """Uninstrumented dispatch: one combined pop-if-due per event."""
        queue = self.queue
        pop_due = queue.pop_due
        bound = float("inf") if until is None else until
        dispatched = 0
        now = self.now
        while True:
            event = pop_due(bound)
            if event is None:
                break
            time = event.time
            if time < now:
                raise SimulationError(
                    f"event time {time} precedes current time {now}"
                )
            now = self.now = time
            event.action()
            dispatched += 1
        if until is not None and queue.peek_time() is not None:
            # Later events stay queued; the clock still advances to the
            # bound, matching the instrumented loop.
            self.now = until
        self.events_dispatched += dispatched
        return dispatched

    def _run_fast_probed(self, until: float | None, deadline: float) -> int:
        """Uninstrumented dispatch with deadline-aware time probes.

        Events strictly before the earliest probe deadline dispatch with
        the same one-pop-per-event loop as :meth:`_run_fast`; the probe
        chain only fires when an advance reaches a deadline — exactly
        the calls the instrumented loop would make that are not no-ops
        under the probe contract (see :meth:`_probe_deadline`).  Probes
        must all be registered before ``run``; installing one from
        inside an event action is not supported on this path.
        """
        queue = self.queue
        pop_due = queue.pop_due
        peek_time = queue.peek_time
        probe = self.time_probe
        bound = float("inf") if until is None else until
        dispatched = 0
        now = self.now
        while True:
            inner = bound if bound < deadline else deadline
            event = pop_due(inner)
            if event is None:
                next_time = peek_time()
                if next_time is None or next_time > bound:
                    break
                # deadline < next_time <= bound: the coming advance
                # crosses at least one probe deadline.  Fire the chain
                # with the advance target, as the instrumented loop
                # would, then re-read the horizon.
                probe(next_time)
                refreshed = self._probe_deadline()
                deadline = float("inf") if refreshed is None else refreshed
                if deadline <= next_time:
                    raise SimulationError(
                        "time probe violated the deadline contract: "
                        f"next_deadline_s() {deadline} did not advance "
                        f"past probed time {next_time}"
                    )
                continue
            time = event.time
            if time < now:
                raise SimulationError(
                    f"event time {time} precedes current time {now}"
                )
            if time > now:
                if time >= deadline:
                    probe(time)
                    refreshed = self._probe_deadline()
                    deadline = float("inf") if refreshed is None else refreshed
                    if deadline <= time:
                        raise SimulationError(
                            "time probe violated the deadline contract: "
                            f"next_deadline_s() {deadline} did not advance "
                            f"past probed time {time}"
                        )
                now = self.now = time
            event.action()
            dispatched += 1
        if until is not None and peek_time() is not None:
            if until > now:
                probe(until)
            self.now = until
        self.events_dispatched += dispatched
        return dispatched

    def _run_instrumented(
        self,
        until: float | None,
        max_events: int | None,
    ) -> int:
        """Reference dispatch loop: trace/probe/max_events all honoured."""
        dispatched = 0
        while True:
            if max_events is not None and dispatched >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                if self.time_probe is not None and until > self.now:
                    self.time_probe(until)
                self.now = until
                break
            event = self.queue.pop()
            assert event is not None  # peek_time said there was one
            if event.time < self.now:
                raise SimulationError(
                    f"event time {event.time} precedes current time {self.now}"
                )
            if self.time_probe is not None and event.time > self.now:
                self.time_probe(event.time)
            self.now = event.time
            event.action()
            dispatched += 1
            if self.trace is not None:
                self._trace_dispatch(event)
        self.events_dispatched += dispatched
        return dispatched

    def _trace_dispatch(self, event: Event) -> None:
        from ..telemetry.events import Category, Severity

        self.trace.emit(
            Category.SIM,
            "sim.dispatch",
            event.time,
            component="sim.kernel",
            severity=Severity.DEBUG,
            sequence=event.sequence,
            priority=event.priority,
        )

    def step(self) -> bool:
        """Dispatch exactly one event; return False if the queue was empty."""
        return self.run(max_events=1) == 1
