"""Measurement primitives: counters, histograms, and a registry.

Every structural component (port, pipeline, stage, traffic manager) owns a
handful of counters; experiments read them after a run.  Histograms keep raw
samples (the simulations here are small enough) so percentile queries are
exact rather than bucketed approximations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import SimulationError


@dataclass
class Counter:
    """A named monotonic (by convention) counter."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount``."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0.0


class Histogram:
    """Exact histogram over raw float samples.

    Supports mean/percentile/min/max queries.  Samples are kept unsorted and
    sorted lazily on first query after a mutation.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: list[float] = []
        self._sorted = True

    def __len__(self) -> int:
        return len(self._samples)

    def observe(self, value: float) -> None:
        """Record one sample.  NaN is rejected: it has no order, so a
        single NaN would silently corrupt every later percentile query."""
        if math.isnan(value):
            raise SimulationError(
                f"histogram {self.name!r} cannot observe NaN"
            )
        self._samples.append(value)
        self._sorted = False

    def observe_many(self, values: Iterable[float]) -> None:
        """Record several samples."""
        for value in values:
            self.observe(value)

    def _ensure_sorted(self) -> list[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise SimulationError(f"histogram {self.name!r} has no samples")
        return self.total / len(self._samples)

    @property
    def minimum(self) -> float:
        if not self._samples:
            raise SimulationError(f"histogram {self.name!r} has no samples")
        return self._ensure_sorted()[0]

    @property
    def maximum(self) -> float:
        if not self._samples:
            raise SimulationError(f"histogram {self.name!r} has no samples")
        return self._ensure_sorted()[-1]

    def percentile(self, p: float) -> float:
        """Exact percentile by linear interpolation, ``p`` in [0, 100].

        The contract, pinned by property tests against
        :func:`statistics.quantiles` (``method="inclusive"``):

        - no samples -> :class:`SimulationError` (never a silent 0.0)
        - ``p`` outside [0, 100], or NaN -> :class:`SimulationError`
        - one sample -> that sample, for every ``p``
        - ``p=0`` -> :attr:`minimum`; ``p=100`` -> :attr:`maximum`
        - otherwise linear interpolation at rank ``p/100 * (n-1)``,
          monotone non-decreasing in ``p`` and always within
          ``[minimum, maximum]``.
        """
        if not 0.0 <= p <= 100.0:  # NaN fails this check too
            raise SimulationError(f"percentile must be in [0, 100], got {p}")
        samples = self._ensure_sorted()
        if not samples:
            raise SimulationError(f"histogram {self.name!r} has no samples")
        if len(samples) == 1:
            return samples[0]
        rank = (p / 100.0) * (len(samples) - 1)
        low = int(rank)
        high = min(low + 1, len(samples) - 1)
        fraction = rank - low
        # delta form: exact when neighbours are equal, monotone in p.
        return samples[low] + fraction * (samples[high] - samples[low])

    def merge(self, *others: "Histogram") -> "Histogram":
        """Absorb every sample of ``others`` into this histogram, in place.

        Returns ``self`` so aggregations chain
        (``total.merge(a).merge(b)``).  The merged histogram is
        order-insensitive: count, total, and every percentile depend only
        on the multiset of samples, so merging per-section or per-switch
        histograms yields the same answers as observing the union
        directly.  Merging a histogram into itself is rejected — it would
        silently double every sample.
        """
        for other in others:
            if other is self:
                raise SimulationError(
                    f"histogram {self.name!r} cannot merge with itself"
                )
            if other._samples:
                self._samples.extend(other._samples)
                self._sorted = False
        return self

    @classmethod
    def merged(cls, name: str, histograms: Iterable["Histogram"]) -> "Histogram":
        """A new histogram holding the union of ``histograms``' samples."""
        out = cls(name)
        out.merge(*histograms)
        return out

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = True


class StatsRegistry:
    """Hierarchical namespace of counters and histograms.

    Components register stats under dotted paths (``"pipeline0.stage3.hits"``)
    so experiments can enumerate them without knowing each component's
    internals.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter at ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        """Return (creating if needed) the histogram at ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counters(self, prefix: str = "") -> Iterator[Counter]:
        """Iterate counters whose names start with ``prefix``."""
        for name in sorted(self._counters):
            if name.startswith(prefix):
                yield self._counters[name]

    def histograms(self, prefix: str = "") -> Iterator[Histogram]:
        """Iterate histograms whose names start with ``prefix``."""
        for name in sorted(self._histograms):
            if name.startswith(prefix):
                yield self._histograms[name]

    def value(self, name: str) -> float:
        """Current value of the counter at ``name`` (0 if never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter else 0.0

    def snapshot(self) -> dict[str, float]:
        """All counter values, keyed by name."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def reset(self) -> None:
        """Reset every counter and histogram in place."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
