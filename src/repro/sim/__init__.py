"""Discrete-event / cycle-level simulation kernel.

The switch models in :mod:`repro.rmt` and :mod:`repro.adcp` are built from
clocked components that exchange items through bounded channels.  This
package provides the kernel underneath them:

- :class:`~repro.sim.event.EventQueue` and
  :class:`~repro.sim.event.Simulator` — a classic discrete-event core with
  deterministic tie-breaking.
- :class:`~repro.sim.clock.Clock` and
  :class:`~repro.sim.clock.ClockDomain` — cycle arithmetic for components
  running at different frequencies (the ADCP's multi-clock MAT memories
  need this).
- :class:`~repro.sim.component.Component` and
  :class:`~repro.sim.component.Channel` — the structural building blocks.
- :class:`~repro.sim.stats.Counter`, :class:`~repro.sim.stats.Histogram`,
  :class:`~repro.sim.stats.StatsRegistry` — measurement.
- :func:`~repro.sim.rng.make_rng` — seeded, stream-split randomness so every
  experiment is reproducible.
"""

from .clock import Clock, ClockDomain
from .component import Channel, Component
from .event import Event, EventQueue, Simulator
from .rng import make_rng, split_rng
from .stats import Counter, Histogram, StatsRegistry

__all__ = [
    "Channel",
    "Clock",
    "ClockDomain",
    "Component",
    "Counter",
    "Event",
    "EventQueue",
    "Histogram",
    "Simulator",
    "StatsRegistry",
    "make_rng",
    "split_rng",
]
