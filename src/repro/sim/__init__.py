"""Discrete-event / cycle-level simulation kernel.

The switch models in :mod:`repro.rmt` and :mod:`repro.adcp` are built from
clocked components that exchange items through bounded channels.  This
package provides the kernel underneath them:

- :class:`~repro.sim.event.EventQueue`,
  :class:`~repro.sim.event.CalendarQueue` and
  :class:`~repro.sim.event.Simulator` — a classic discrete-event core with
  deterministic tie-breaking and interchangeable queue backends (see
  docs/KERNEL.md for the backend contract).
- :class:`~repro.sim.clock.Clock` and
  :class:`~repro.sim.clock.ClockDomain` — cycle arithmetic for components
  running at different frequencies (the ADCP's multi-clock MAT memories
  need this).
- :class:`~repro.sim.component.Component` and
  :class:`~repro.sim.component.Channel` — the structural building blocks.
- :class:`~repro.sim.stats.Counter`, :class:`~repro.sim.stats.Histogram`,
  :class:`~repro.sim.stats.StatsRegistry` — measurement.
- :func:`~repro.sim.rng.make_rng` — seeded, stream-split randomness so every
  experiment is reproducible.
"""

from .clock import Clock, ClockDomain
from .component import Channel, Component
from .event import (
    QUEUE_BACKENDS,
    CalendarQueue,
    Event,
    EventQueue,
    Simulator,
    make_event_queue,
)
from .rng import make_rng, split_rng
from .stats import Counter, Histogram, StatsRegistry

__all__ = [
    "CalendarQueue",
    "Channel",
    "Clock",
    "ClockDomain",
    "Component",
    "Counter",
    "Event",
    "EventQueue",
    "Histogram",
    "QUEUE_BACKENDS",
    "Simulator",
    "StatsRegistry",
    "make_event_queue",
    "make_rng",
    "split_rng",
]
