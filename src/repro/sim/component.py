"""Structural building blocks: components and bounded channels.

A :class:`Component` is anything with a name, a parent, and a slice of the
shared :class:`~repro.sim.stats.StatsRegistry`.  A :class:`Channel` is a
bounded FIFO used to connect components; back-pressure is explicit (a full
channel rejects pushes) because the architectural comparisons in this
library hinge on where queues build up.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generic, Iterator, TypeVar

from ..errors import ConfigError
from .stats import StatsRegistry

T = TypeVar("T")


class Component:
    """Base class for every named piece of switch structure.

    Children are registered automatically when constructed with a parent,
    forming a tree whose dotted paths name stats: a stage constructed as
    ``Component("stage3", parent=pipeline)`` exposes counters under
    ``"<pipeline path>.stage3.*"``.
    """

    def __init__(self, name: str, parent: "Component | None" = None) -> None:
        if not name:
            raise ConfigError("component name must be non-empty")
        if "." in name:
            raise ConfigError(f"component name {name!r} must not contain dots")
        self.name = name
        self.parent = parent
        self.children: list[Component] = []
        if parent is not None:
            parent.children.append(self)
            self.stats: StatsRegistry = parent.stats
            self._path = f"{parent._path}.{name}"
        else:
            self.stats = StatsRegistry()
            self._path = name
        # Per-component memo from stat name to Counter/Histogram object.
        # Instruments are still *created* lazily on first use (creation
        # order decides snapshot ordering, which run ledgers depend on);
        # the memo only skips the dotted-path formatting and registry
        # lookup on every subsequent hit.
        self._stat_memo: dict[str, Any] = {}

    @property
    def path(self) -> str:
        """Dotted path from the root component to this one."""
        return self._path

    def counter(self, stat: str):
        """Counter scoped under this component's path."""
        found = self._stat_memo.get(stat)
        if found is None:
            found = self.stats.counter(f"{self._path}.{stat}")
            self._stat_memo[stat] = found
        return found

    def histogram(self, stat: str):
        """Histogram scoped under this component's path."""
        key = stat + "#h"
        found = self._stat_memo.get(key)
        if found is None:
            found = self.stats.histogram(f"{self._path}.{stat}")
            self._stat_memo[key] = found
        return found

    def walk(self) -> Iterator["Component"]:
        """Depth-first iteration over this component and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, path: str) -> "Component":
        """Resolve a dotted path relative to this component."""
        node: Component = self
        for part in path.split("."):
            for child in node.children:
                if child.name == part:
                    node = child
                    break
            else:
                raise ConfigError(f"no component {part!r} under {node.path!r}")
        return node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.path}>"


class Channel(Generic[T]):
    """A bounded FIFO connecting two components.

    ``capacity`` of ``None`` means unbounded (used for analytical sinks).
    ``try_push`` returns False when full, which models back-pressure;
    callers decide whether to stall, drop, or recirculate.
    """

    def __init__(self, name: str, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigError(f"channel capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._items: deque[T] = deque()
        self.pushed = 0
        self.popped = 0
        self.rejected = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def try_push(self, item: T) -> bool:
        """Append ``item`` unless full; returns whether it was accepted."""
        if self.is_full:
            self.rejected += 1
            return False
        self._items.append(item)
        self.pushed += 1
        if len(self._items) > self.peak_depth:
            self.peak_depth = len(self._items)
        return True

    def push(self, item: T) -> None:
        """Append ``item``; raises if the channel is full."""
        if not self.try_push(item):
            raise ConfigError(
                f"channel {self.name!r} is full (capacity {self.capacity})"
            )

    def pop(self) -> T | None:
        """Remove and return the oldest item, or None when empty."""
        if not self._items:
            return None
        self.popped += 1
        return self._items.popleft()

    def peek(self) -> T | None:
        """Return the oldest item without removing it."""
        if not self._items:
            return None
        return self._items[0]

    def drain(self) -> list[T]:
        """Remove and return every queued item, oldest first."""
        items = list(self._items)
        self.popped += len(items)
        self._items.clear()
        return items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Channel {self.name} {len(self._items)}/{cap}>"


def connect(components: "list[Any]", capacity: int | None = None) -> list[Channel]:
    """Create a chain of channels between consecutive components.

    Convenience for pipeline construction: returns ``len(components) - 1``
    channels named after the components they join.
    """
    channels: list[Channel] = []
    for upstream, downstream in zip(components, components[1:]):
        channels.append(
            Channel(f"{upstream.name}->{downstream.name}", capacity=capacity)
        )
    return channels
