"""Clock domains for multi-frequency models.

RMT ties one clock to the whole pipeline; the ADCP deliberately breaks that
assumption (section 3.3 runs pipelines at a fraction of the port rate, and
section 4 proposes clocking the shared MAT memory ``n`` times faster than
the pipeline for ``n``-wide array lookups).  These helpers convert between
cycles and seconds so components at different frequencies can coexist on a
single event queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class Clock:
    """An ideal clock of a fixed frequency.

    Attributes:
        frequency_hz: Cycles per second; must be positive.
        name: Optional label used in stats and error messages.
    """

    frequency_hz: float
    name: str = "clock"

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigError(
                f"clock {self.name!r} frequency must be positive, "
                f"got {self.frequency_hz}"
            )
        # The period is read on every cycle conversion in the scheduling
        # hot path; cache it once (the dataclass is frozen, so the
        # frequency can never drift out from under the cache).
        object.__setattr__(self, "_period_s", 1.0 / self.frequency_hz)

    @property
    def period_s(self) -> float:
        """Duration of one cycle, in seconds."""
        return self._period_s

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds."""
        return cycles * self._period_s

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert a duration to (possibly fractional) cycles."""
        return seconds * self.frequency_hz

    def cycle_at(self, time_s: float) -> int:
        """Index of the cycle containing ``time_s`` (cycle 0 starts at 0)."""
        return int(time_s * self.frequency_hz + 1e-9)

    def edge_after(self, time_s: float) -> float:
        """Time of the first rising edge strictly after ``time_s``."""
        cycle = self.cycle_at(time_s)
        edge = (cycle + 1) * self._period_s
        return edge

    def derived(self, multiplier: float, name: str | None = None) -> "Clock":
        """Return a clock at ``multiplier`` times this frequency.

        Used by the multi-clock MAT memory design: a width-``n`` array
        memory runs on ``pipeline_clock.derived(n)``.
        """
        if multiplier <= 0:
            raise ConfigError(f"clock multiplier must be positive, got {multiplier}")
        return Clock(self.frequency_hz * multiplier, name or f"{self.name}x{multiplier:g}")


class ClockDomain:
    """A named group of components sharing one clock.

    Tracks the current cycle for the domain and provides the bookkeeping
    feasibility analyses need: how many domain cycles elapse per cycle of a
    reference clock, and whether a ratio is an integer (clean clock-domain
    crossings) or fractional (needs asynchronous FIFOs, which the
    feasibility model penalizes).
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self.cycle = 0
        self.trace = None
        """Optional :class:`~repro.telemetry.recorder.TraceRecorder`; when
        set, advances are recorded under the verbose ``CLOCK`` category."""

    def advance(self, cycles: int = 1) -> int:
        """Advance the domain by ``cycles`` and return the new cycle index."""
        if cycles < 0:
            raise ConfigError(f"cannot advance a clock domain by {cycles}")
        self.cycle += cycles
        if self.trace is not None:
            self._trace_advance(cycles)
        return self.cycle

    def _trace_advance(self, cycles: int) -> None:
        from ..telemetry.events import Category, Severity

        self.trace.emit(
            Category.CLOCK,
            "clock.advance",
            self.now_s,
            component=f"clock.{self.clock.name}",
            severity=Severity.DEBUG,
            cycles=cycles,
            cycle=self.cycle,
        )

    @property
    def now_s(self) -> float:
        """Current domain time in seconds."""
        return self.clock.cycles_to_seconds(self.cycle)

    def ratio_to(self, other: "ClockDomain | Clock") -> float:
        """Frequency ratio of this domain to ``other`` (>1 means faster)."""
        other_clock = other.clock if isinstance(other, ClockDomain) else other
        return self.clock.frequency_hz / other_clock.frequency_hz

    def is_integer_ratio_to(self, other: "ClockDomain | Clock", tol: float = 1e-9) -> bool:
        """True when the crossing to ``other`` is an integer ratio."""
        ratio = self.ratio_to(other)
        if ratio < 1.0:
            ratio = 1.0 / ratio
        return abs(ratio - round(ratio)) <= tol
