"""Seeded randomness helpers.

Every stochastic piece of the library (workload generators, traffic sources,
hash placement) takes an explicit ``numpy.random.Generator``.  These helpers
create them from integer seeds and split independent streams from a parent
so sub-experiments never share state accidentally.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

DEFAULT_SEED = 0xADC9
"""Library-wide default seed (spells "ADCP" if you squint)."""


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a PCG64 generator seeded with ``seed`` (or the default)."""
    if seed is None:
        seed = DEFAULT_SEED
    if seed < 0:
        raise ConfigError(f"seed must be non-negative, got {seed}")
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``count`` independent child generators from ``rng``.

    Children are seeded from the parent's stream, so the split is itself
    deterministic for a given parent state.
    """
    if count < 1:
        raise ConfigError(f"cannot split {count} generators")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def stable_hash64(value: int | str | bytes) -> int:
    """Deterministic 64-bit hash, stable across processes.

    Python's builtin ``hash`` is salted per process; placement decisions
    (which central pipeline a key lands on) must be reproducible, so the
    library uses FNV-1a instead — followed by a murmur3-style avalanche
    finalizer.  The finalizer matters: raw FNV-1a's low bits mod small
    powers of two depend only on the input bytes mod the same power, which
    would send every 16-aligned chunk key to the same partition.
    """
    if isinstance(value, int):
        data = value.to_bytes(16, "little", signed=True)
    elif isinstance(value, str):
        data = value.encode("utf-8")
    else:
        data = value
    mask = 0xFFFFFFFFFFFFFFFF
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & mask
    # fmix64 avalanche (murmur3) so every output bit depends on every
    # input bit.
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & mask
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & mask
    h ^= h >> 33
    return h
