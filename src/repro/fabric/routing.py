"""Equal-cost path selection: ECMP and flowlet load balancing.

Both selectors are deterministic functions of the packet and the
selector's own state, seeded per switch (the salt) so different switches
hash independently — the standard defense against ECMP polarization,
and a reproducibility requirement: two runs of the same seeded workload
pick identical paths.

- :class:`EcmpSelector` hashes the flow key once; a flow sticks to one
  path forever (no reordering, but long flows can collide).
- :class:`FlowletSelector` re-hashes when the gap since the flow's last
  packet exceeds ``gap_s`` (Kandula et al.'s flowlet argument: a gap
  longer than the path-delay spread lets the flow switch paths without
  reordering).  Within a flowlet the choice is sticky.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..net.packet import Packet
from ..sim.rng import stable_hash64

FlowKey = tuple[int, int, int, int]


def flow_key(packet: Packet) -> FlowKey:
    """The 4-field key ECMP hashes: coflow, flow, src, dst."""
    coflow_id = flow_id = 0
    if packet.has_header("coflow"):
        header = packet.header("coflow")
        coflow_id = header["coflow_id"]
        flow_id = header["flow_id"]
    src_ip = dst_ip = 0
    if packet.has_header("ipv4"):
        ip = packet.header("ipv4")
        src_ip = ip["src_ip"]
        dst_ip = ip["dst_ip"]
    return (coflow_id, flow_id, src_ip, dst_ip)


class EcmpSelector:
    """Static per-flow hashing over the candidate port set."""

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt

    def choose(
        self, packet: Packet, candidates: tuple[int, ...], now_s: float
    ) -> int:
        if not candidates:
            raise ConfigError("ECMP selection over an empty candidate set")
        if len(candidates) == 1:
            return candidates[0]
        key = flow_key(packet)
        index = stable_hash64(f"{self.salt}:{key}") % len(candidates)
        return candidates[index]


class FlowletSelector:
    """Flowlet switching: re-hash after an idle gap, sticky within one.

    ``history`` records every (seq, port) pick per flow so tests can
    assert the zero-intra-flowlet-reordering property directly.
    """

    def __init__(self, gap_s: float, salt: int = 0) -> None:
        if gap_s <= 0:
            raise ConfigError(f"flowlet gap must be positive, got {gap_s}")
        self.gap_s = gap_s
        self.salt = salt
        self.flowlets_started = 0
        self._state: dict[FlowKey, tuple[float, int, int]] = {}
        self.history: dict[FlowKey, list[tuple[int, int]]] = {}

    def choose(
        self, packet: Packet, candidates: tuple[int, ...], now_s: float
    ) -> int:
        if not candidates:
            raise ConfigError("flowlet selection over an empty candidate set")
        key = flow_key(packet)
        state = self._state.get(key)
        if state is None or now_s - state[0] > self.gap_s:
            flowlet = 0 if state is None else state[1] + 1
            index = stable_hash64(
                f"{self.salt}:{key}:{flowlet}"
            ) % len(candidates)
            port = candidates[index]
            self.flowlets_started += 1
        else:
            flowlet, port = state[1], state[2]
        self._state[key] = (now_s, flowlet, port)
        if packet.has_header("coflow"):
            self.history.setdefault(key, []).append(
                (packet.header("coflow")["seq"], port)
            )
        return port


def make_selector(routing: str, switch_name: str, flowlet_gap_s: float):
    """Per-switch selector instance; the salt decorrelates switches."""
    salt = stable_hash64(f"fabric-selector/{switch_name}")
    if routing == "ecmp":
        return EcmpSelector(salt=salt)
    if routing == "flowlet":
        return FlowletSelector(flowlet_gap_s, salt=salt)
    raise ConfigError(
        f"unknown routing mode {routing!r}; choose from ecmp, flowlet"
    )
