"""Multi-switch fabric: topologies, links, routing, and state placement.

The paper's single-switch models (:mod:`repro.rmt`, :mod:`repro.adcp`)
answer *how* a switch hosts coflow state; this package answers *where* —
it composes many switch instances into a simulated datacenter on one
shared discrete-event kernel, connects them with latency/bandwidth
links, routes coflow traffic across equal-cost paths (ECMP or flowlet),
and lets a fabric-level placement policy decide which switch executes
each coflow's stateful aggregation (the §3.1 argument at fabric scale).
"""

from .app import FabricAggregateApp, HostedCoflow
from .link import HostEndpoint, Link
from .placement import FABRIC_PLACEMENTS, make_placement
from .routing import EcmpSelector, FlowletSelector, make_selector
from .runner import FabricRun, run_fabric
from .topology import (
    RoutingTable,
    Topology,
    fat_tree,
    host_ip,
    leaf_spine,
    parse_topology,
)
from .workloads import FABRIC_WORKLOADS, FabricWorkload, build_workload

__all__ = [
    "FABRIC_PLACEMENTS",
    "FABRIC_WORKLOADS",
    "EcmpSelector",
    "FabricAggregateApp",
    "FabricRun",
    "FabricWorkload",
    "FlowletSelector",
    "HostEndpoint",
    "HostedCoflow",
    "Link",
    "RoutingTable",
    "Topology",
    "build_workload",
    "fat_tree",
    "host_ip",
    "leaf_spine",
    "make_placement",
    "make_selector",
    "parse_topology",
    "run_fabric",
]
