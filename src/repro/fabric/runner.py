"""The fabric runner: build, wire, drive, and account a multi-switch run.

One call to :func:`run_fabric` turns a topology spec plus a workload name
into a complete datacenter simulation on a **single** discrete-event
kernel: every switch (RMT or ADCP per ``target``) is constructed against
the shared :class:`~repro.sim.event.Simulator`, inter-switch
:class:`~repro.fabric.link.Link` objects bridge each egress port to the
peer's ingress, per-switch selectors resolve equal-cost next hops, and a
:class:`~repro.fabric.placement.FabricPlacement` decides which switch
hosts each coflow's aggregation state.  The kernel drains once; then
every switch is finalized and the run is verified end to end (every
expected result packet arrived, aggregate values are exact).

The output :class:`FabricRun` exposes the same ledger shape as the
single-switch campaign cells — one section per switch plus a ``fabric``
section carrying link and coflow-completion series — so fabric runs
plug directly into ``repro diff`` and the campaign aggregator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError, SimulationError
from ..net.headers import OP_DATA
from ..net.packet import Packet
from ..sim.event import Simulator
from ..telemetry.monitor import DEFAULT_INTERVAL_NS
from ..units import GBPS
from .app import FabricAggregateApp, HostedCoflow
from .link import HostEndpoint, Link, switch_handoff
from .placement import make_placement
from .routing import make_selector
from .topology import Topology, host_of_ip, parse_topology
from .workloads import build_workload

#: Every fabric port (host NICs and switch-to-switch wires) runs at this
#: speed; serialization is paid at the sending TxPort.
PORT_SPEED_BPS = 100 * GBPS

#: Default one-way propagation delay per hop (~60 m of fiber).
DEFAULT_LINK_LATENCY_NS = 300.0

#: Default flowlet idle gap; larger than the per-hop latency spread so
#: flowlet switching stays reordering-free on these topologies.
DEFAULT_FLOWLET_GAP_NS = 500.0

_NS = 1e-9


@dataclass
class SwitchSection:
    """One switch's slice of the fabric run (ledger section source)."""

    label: str
    telemetry: object
    result: object


def switch_section_json(section: SwitchSection) -> dict:
    """One switch's ledger section (shared by batch and serve runners)."""
    result = section.result
    entry = {
        "label": section.label,
        "duration_s": result.duration_s,
        "delivered": len(result.delivered),
        "consumed": result.consumed,
        "recirculated": result.recirculated_packets,
        "samples": 0,
        "series": {},
        "counters": result.counters,
    }
    telemetry = section.telemetry
    monitor = getattr(telemetry, "monitor", None)
    if monitor is not None:
        entry["samples"] = len(monitor)
        entry["series"] = {
            name: summary.to_json()
            for name, summary in monitor.summaries().items()
        }
    return entry


@dataclass
class FabricRun:
    """Everything one fabric run produced, plus its reporting helpers."""

    topology: Topology
    workload: str
    target: str
    placement: str
    routing: str
    seed: int
    params: dict
    sections: list[SwitchSection]
    links: dict[str, Link]
    hosts: dict[int, HostEndpoint]
    placement_map: dict[int, str]
    cct_s: dict[int, float]
    duration_s: float
    events: int
    injected: int
    events_coalesced: int = 0
    interval_ns: float = DEFAULT_INTERVAL_NS
    selectors: dict = field(default_factory=dict)
    span_coflows: dict = field(default_factory=dict)
    """Sampled span id -> coflow label, filled when the run carried a
    span recorder (see :func:`inject_arrivals`)."""
    app_factory: object = None
    """The workload's per-switch app factory, when it carried one
    (``stateful-*`` workloads) — exposes the app instances the run
    built, for post-run counter harvesting."""

    # --- derived ------------------------------------------------------------------

    @property
    def max_cct_s(self) -> float:
        return max(self.cct_s.values()) if self.cct_s else 0.0

    @property
    def delivered_to_hosts(self) -> int:
        return sum(len(h.received) for h in self.hosts.values())

    @property
    def transit_packets(self) -> int:
        """Packets that crossed at least one switch-to-switch wire."""
        return sum(
            link.packets
            for name, link in self.links.items()
            if "->h" not in name
        )

    @property
    def recirculated(self) -> int:
        return sum(s.result.recirculated_packets for s in self.sections)

    # --- reporting ----------------------------------------------------------------

    def _switch_section(self, section: SwitchSection) -> dict:
        return switch_section_json(section)

    def _point(self, value: float) -> dict:
        """A single-sample series summary (scalar fabric outcomes)."""
        value = float(value)
        return {
            "samples": 1,
            "mean": value,
            "peak": value,
            "p99": value,
            "last": value,
        }

    def _fabric_section(self) -> dict:
        series = {}
        for name in sorted(self.links):
            link = self.links[name]
            series[f"link.{name}.packets"] = self._point(link.packets)
            series[f"link.{name}.wire_bytes"] = self._point(link.wire_bytes)
        for coflow_id in sorted(self.cct_s):
            series[f"cct.c{coflow_id}_s"] = self._point(self.cct_s[coflow_id])
        if self.cct_s:
            series["cct.max_s"] = self._point(self.max_cct_s)
        series["transit.packets"] = self._point(self.transit_packets)
        return {
            "label": "fabric",
            "duration_s": self.duration_s,
            "delivered": self.delivered_to_hosts,
            "consumed": 0,
            "recirculated": self.recirculated,
            "samples": len(series),
            "cct_s": {str(k): v for k, v in self.cct_s.items()},
            "max_cct_s": self.max_cct_s,
            "series": series,
            "counters": {},
        }

    def ledger(self) -> dict:
        """The run as a ``repro.run_ledger/1`` document (diffable)."""
        from ..telemetry.ledger import build_ledger

        sections = [self._switch_section(s) for s in self.sections]
        sections.append(self._fabric_section())
        label = (
            f"fabric:{self.workload}@{self.topology.name}:{self.target}"
        )
        return build_ledger(
            workload=label,
            interval_ns=self.interval_ns,
            config=dict(self.params),
            sections=sections,
        )

    def summary(self) -> dict:
        """Flat JSON summary for the CLI's ``--json`` mode."""
        return {
            "topology": self.topology.name,
            "workload": self.workload,
            "target": self.target,
            "placement": self.placement,
            "routing": self.routing,
            "seed": self.seed,
            "switches": len(self.sections),
            "hosts": len(self.hosts),
            "injected": self.injected,
            "delivered_to_hosts": self.delivered_to_hosts,
            "transit_packets": self.transit_packets,
            "recirculated": self.recirculated,
            "placement_map": {
                str(k): v for k, v in sorted(self.placement_map.items())
            },
            "cct_s": {str(k): v for k, v in sorted(self.cct_s.items())},
            "max_cct_s": self.max_cct_s,
            "duration_s": self.duration_s,
            "events": self.events,
            "events_coalesced": self.events_coalesced,
        }

    def lines(self) -> list[str]:
        out = [
            f"fabric {self.topology.name} [{self.target}] — "
            f"{self.workload}, placement={self.placement}, "
            f"routing={self.routing}, seed={self.seed}",
            f"  {len(self.sections)} switches, {len(self.hosts)} hosts, "
            f"{self.injected} packets injected, "
            f"{self.delivered_to_hosts} delivered to hosts, "
            f"{self.transit_packets} switch-to-switch transits, "
            f"{self.recirculated} recirculations",
        ]
        for coflow_id in sorted(self.cct_s):
            placed = self.placement_map.get(coflow_id)
            where = f" @ {placed}" if placed else ""
            out.append(
                f"  coflow {coflow_id}{where}: "
                f"CCT {self.cct_s[coflow_id] * 1e9:.1f} ns"
            )
        out.append(
            f"  duration {self.duration_s * 1e9:.1f} ns, "
            f"{self.events} events dispatched"
        )
        return out


# --- construction ------------------------------------------------------------------


def _rmt_switch(node, app, telemetry, sim):
    from ..rmt.config import RMTConfig
    from ..rmt.switch import RMTSwitch

    pipelines = 2 if node.num_ports % 2 == 0 and node.num_ports > 1 else 1
    config = RMTConfig(
        num_ports=node.num_ports,
        port_speed_bps=PORT_SPEED_BPS,
        pipelines=pipelines,
        min_wire_packet_bytes=84.0,
        frequency_hz=1.25e9,
    )
    return RMTSwitch(config, app, telemetry=telemetry, sim=sim, name=node.name)


def _adcp_switch(node, app, telemetry, sim):
    from ..adcp.config import ADCPConfig
    from ..adcp.switch import ADCPSwitch

    config = ADCPConfig(
        num_ports=node.num_ports,
        port_speed_bps=PORT_SPEED_BPS,
        demux_factor=1,
        central_pipelines=2,
    )
    return ADCPSwitch(config, app, telemetry=telemetry, sim=sim, name=node.name)


def _make_resolver(name, table, selector, placement_map, sim):
    """The per-switch next-hop function (see switch ``route_resolver``)."""

    def resolve(packet: Packet):
        now = sim.now
        if placement_map and packet.has_header("coflow"):
            header = packet.header("coflow")
            if header["opcode"] == OP_DATA:
                hosting = placement_map.get(header["coflow_id"])
                if hosting is not None:
                    if hosting == name:
                        # The state lives here: leave the packet to the
                        # switch's own stateful steering (it claims it).
                        return None
                    return selector.choose(
                        packet, table.to_switch[hosting], now
                    )
        dst_ip = (
            packet.header("ipv4")["dst_ip"]
            if packet.has_header("ipv4")
            else 0
        )
        host = host_of_ip(dst_ip)
        if host is None or host not in table.to_host:
            return None
        candidates = table.to_host[host]
        if len(candidates) == 1:
            return candidates[0]
        return selector.choose(packet, candidates, now)

    return resolve


@dataclass
class FabricInstance:
    """A wired-but-idle fabric: switches, links, hosts on one kernel.

    Produced by :func:`build_fabric`; both the batch runner
    (:func:`run_fabric`) and serve mode (:mod:`repro.serve.runner`)
    drive one of these — construction order is shared so a given
    (topology, target, seed) wires bit-identically in either mode.
    """

    topology: Topology
    sim: Simulator
    switches: dict
    hubs: dict
    links: dict[str, Link]
    hosts: dict[int, HostEndpoint]
    selectors: dict
    latency_s: float

    def finalize_sections(self) -> list[SwitchSection]:
        """Finalize every switch (in name order) into ledger sections."""
        return [
            SwitchSection(
                name,
                self.hubs[name],
                self.switches[name].finalize(self.sim.now),
            )
            for name in self.topology.switch_names
        ]


def build_fabric(
    topo: Topology,
    *,
    target: str,
    routing: str = "ecmp",
    placement_map: dict[int, str] | None = None,
    hosted_by_switch: dict[str, list[HostedCoflow]] | None = None,
    app_factory=None,
    elements_per_packet: int = 1,
    link_latency_ns: float = DEFAULT_LINK_LATENCY_NS,
    flowlet_gap_ns: float = DEFAULT_FLOWLET_GAP_NS,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    make_telemetry=None,
    sim: Simulator | None = None,
    host_sink=None,
    spans=None,
) -> FabricInstance:
    """Construct and wire every switch, link, and host NIC of ``topo``.

    ``host_sink`` optionally wraps each :class:`HostEndpoint`'s deliver
    function (``host_sink(endpoint) -> deliver``) so a caller can observe
    deliveries — serve mode hooks per-window latency accounting here —
    without changing what the endpoint records.

    ``spans`` optionally shares one
    :class:`~repro.telemetry.spans.SpanRecorder` across every switch and
    link, so a sampled packet's hops line up in one fabric-wide stream
    (docs/SPANS.md); the sampling decision itself happens in
    :func:`inject_arrivals`.
    """
    if target not in ("rmt", "adcp"):
        raise ConfigError(
            f"fabric target must be rmt or adcp, got {target!r}"
        )
    if link_latency_ns < 0:
        raise ConfigError(
            f"link latency must be >= 0, got {link_latency_ns}"
        )
    placement_map = placement_map or {}
    hosted_by_switch = hosted_by_switch or {}
    if make_telemetry is None:

        def make_telemetry():
            from ..telemetry import ResourceMonitor, Telemetry

            hub = Telemetry(monitor=ResourceMonitor(interval_ns=interval_ns))
            hub.trace.disable()
            return hub

    if sim is None:
        sim = Simulator()
    build = _rmt_switch if target == "rmt" else _adcp_switch
    switches = {}
    hubs = {}
    for name in topo.switch_names:
        node = topo.switches[name]
        hosted = hosted_by_switch.get(name)
        if app_factory is not None:
            # Stateful workloads host their own app on every switch
            # (claims() gates by opcode, so transit still forwards).
            app = app_factory(name)
        else:
            app = (
                FabricAggregateApp(hosted, elements_per_packet)
                if hosted
                else None
            )
        hub = make_telemetry()
        hubs[name] = hub
        switches[name] = build(node, app, hub, sim)
        if spans is not None:
            switches[name].spans = spans

    tables = topo.routes()
    selectors = {}
    for name, switch in switches.items():
        selector = make_selector(routing, name, flowlet_gap_ns * _NS)
        selectors[name] = selector
        switch.route_resolver = _make_resolver(
            name, tables[name], selector, placement_map, sim
        )

    latency_s = link_latency_ns * _NS
    links: dict[str, Link] = {}
    for src, src_port, dst, dst_port in topo.edge_links():
        link = Link(
            f"{src}:{src_port}->{dst}",
            latency_s,
            switch_handoff(switches[dst], dst_port),
        )
        switches[src].port_sinks[src_port] = link
        if spans is not None:
            link.spans = spans
        links[link.name] = link
    hosts: dict[int, HostEndpoint] = {}
    for host_id in topo.host_ids:
        host = topo.hosts[host_id]
        endpoint = HostEndpoint(host_id)
        hosts[host_id] = endpoint
        deliver = endpoint.deliver if host_sink is None else host_sink(endpoint)
        link = Link(
            f"{host.switch}:{host.port}->h{host_id}",
            latency_s,
            deliver,
        )
        switches[host.switch].port_sinks[host.port] = link
        if spans is not None:
            link.spans = spans
        links[link.name] = link
    return FabricInstance(
        topology=topo,
        sim=sim,
        switches=switches,
        hubs=hubs,
        links=links,
        hosts=hosts,
        selectors=selectors,
        latency_s=latency_s,
    )


def inject_arrivals(
    fabric: FabricInstance,
    arrivals: dict[int, list[tuple[float, Packet]]],
    *,
    stamp_origin: bool = False,
    spans=None,
) -> dict[int, str]:
    """Schedule per-host NIC streams into their edge switches.

    Each (host-departure time, packet) pair arrives ``latency_s`` later
    at the switch.  All host streams are merged by arrival time first —
    within one host a stream's timestamps are strictly increasing, so
    the coalescing opportunity (several hosts transmitting on the same
    tick into the same edge switch) only exists *across* streams — and
    consecutive same-``(arrival, switch)`` runs are injected as one
    burst event when the switch runs untraced.  The merge sort is
    stable, so equal-time entries keep host order: dispatch (and
    therefore every downstream event) is identical to the per-packet
    injection a traced switch still gets.

    ``stamp_origin`` records the host-departure time in
    ``meta.origin_time`` for end-to-end latency accounting (serve mode).

    ``spans`` optionally makes the head-based sampling decision here, at
    true injection (handoffs between switches never re-decide); the
    returned dict maps each sampled span id to its coflow label
    (``"c<id>"``), for critical-path attribution.  Empty without spans.
    """
    topo = fabric.topology
    latency_s = fabric.latency_s
    span_coflows: dict[int, str] = {}
    entries: list[tuple[float, object, Packet]] = []
    for host_id, stream in arrivals.items():
        switch = fabric.switches[topo.hosts[host_id].switch]
        for time, packet in stream:
            if stamp_origin:
                packet.meta.origin_time = time
            if spans is not None and spans.admit(packet):
                if packet.has_header("coflow"):
                    coflow_id = packet.header("coflow")["coflow_id"]
                    span_coflows.setdefault(
                        packet.meta.span, f"c{coflow_id}"
                    )
            arrival = time + latency_s
            packet.meta.arrival_time = arrival
            entries.append((arrival, switch, packet))
    entries.sort(key=lambda entry: entry[0])

    start = 0
    count = len(entries)
    while start < count:
        arrival, switch, _ = entries[start]
        end = start + 1
        while (
            end < count
            and entries[end][0] == arrival
            and entries[end][1] is switch
        ):
            end += 1
        if switch.trace is not None or end - start == 1:
            for _, _, packet in entries[start:end]:
                switch.inject(packet, arrival)
        else:
            switch.inject_burst(
                [entry[2] for entry in entries[start:end]], arrival
            )
        start = end
    return span_coflows


def _verify_allreduce(run_workload, hosts) -> None:
    """Every worker got the exact aggregate: value[k] == (k+1) * workers."""
    for spec in run_workload.coflows:
        if not spec.aggregated:
            continue
        workers = len(spec.worker_hosts)
        for host in spec.worker_hosts:
            seen: dict[int, int] = {}
            for _, packet in hosts[host].results(spec.coflow_id):
                assert packet.payload is not None
                for element in packet.payload:
                    seen[element.key] = seen.get(element.key, 0) + 1
                    expect = (element.key + 1) * workers
                    if element.value != expect:
                        raise SimulationError(
                            f"coflow {spec.coflow_id} key {element.key} at "
                            f"h{host}: aggregate {element.value}, expected "
                            f"{expect}"
                        )
            keys = set(range(spec.vector_elements))
            if set(seen) != keys or any(n != 1 for n in seen.values()):
                raise SimulationError(
                    f"coflow {spec.coflow_id} at h{host}: result vector "
                    f"incomplete or duplicated ({len(seen)} of "
                    f"{spec.vector_elements} keys)"
                )


def run_fabric(
    topology: str | Topology,
    workload: str = "fabric-allreduce",
    *,
    target: str = "adcp",
    placement: str = "ingress",
    routing: str = "ecmp",
    seed: int = 0,
    coflows: int = 2,
    vector: int = 64,
    load: float = 1.0,
    link_latency_ns: float = DEFAULT_LINK_LATENCY_NS,
    flowlet_gap_ns: float = DEFAULT_FLOWLET_GAP_NS,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    make_telemetry=None,
    spans=None,
) -> FabricRun:
    """Simulate ``workload`` on ``topology`` and verify the outcome.

    ``make_telemetry`` is called once per switch and may return None (no
    per-switch observability) or a :class:`~repro.telemetry.Telemetry`
    hub; the default attaches a monitor-only hub so the ledger carries
    per-switch series.  ``spans`` optionally attaches one shared
    :class:`~repro.telemetry.spans.SpanRecorder` (sampled fabric-wide
    spans; the run's ``span_coflows`` then maps span ids to coflow
    labels).  All other knobs are plain data so campaign axes can sweep
    them.
    """
    if target not in ("rmt", "adcp"):
        raise ConfigError(
            f"fabric target must be rmt or adcp, got {target!r}"
        )
    if link_latency_ns < 0:
        raise ConfigError(
            f"link latency must be >= 0, got {link_latency_ns}"
        )
    topo = parse_topology(topology) if isinstance(topology, str) else topology
    # RMT's scalar stateful constraint forces one element per packet;
    # ADCP packs up to its array width (section 3.2's whole point).
    epp = 1 if target == "rmt" else min(16, vector)
    work = build_workload(
        workload,
        topo,
        coflows=coflows,
        vector=vector,
        elements_per_packet=epp,
        link_bps=PORT_SPEED_BPS,
        load=load,
        seed=seed,
    )

    placement_map: dict[int, str] = {}
    hosted_by_switch: dict[str, list[HostedCoflow]] = {}
    if work.aggregated:
        policy = make_placement(placement)
        for spec in work.coflows:
            where = policy.choose(spec.coflow_id, spec.worker_hosts, topo)
            placement_map[spec.coflow_id] = where
            hosted_by_switch.setdefault(where, []).append(
                HostedCoflow(
                    spec.coflow_id, spec.worker_hosts, spec.vector_elements
                )
            )

    fabric = build_fabric(
        topo,
        target=target,
        routing=routing,
        placement_map=placement_map,
        hosted_by_switch=hosted_by_switch,
        app_factory=work.app_factory,
        elements_per_packet=epp,
        link_latency_ns=link_latency_ns,
        flowlet_gap_ns=flowlet_gap_ns,
        interval_ns=interval_ns,
        make_telemetry=make_telemetry,
        spans=spans,
    )
    sim = fabric.sim
    hosts = fabric.hosts
    span_coflows = inject_arrivals(fabric, work.arrivals, spans=spans)

    sim.run()

    sections = fabric.finalize_sections()

    cct_s: dict[int, float] = {}
    for (coflow_id, host_id), expected in sorted(work.expected.items()):
        done = hosts[host_id].completion_time(
            coflow_id, work.terminal_opcode, expected
        )
        cct_s[coflow_id] = max(cct_s.get(coflow_id, 0.0), done)
    if work.aggregated:
        _verify_allreduce(work, hosts)

    params = {
        "topology": topo.name,
        "workload": workload,
        "target": target,
        "placement": placement if work.aggregated else "",
        "routing": routing,
        "seed": seed,
        "coflows": coflows,
        "vector": vector,
        "load": load,
        "link_latency_ns": link_latency_ns,
    }
    return FabricRun(
        topology=topo,
        workload=workload,
        target=target,
        placement=placement if work.aggregated else "",
        routing=routing,
        seed=seed,
        params=params,
        sections=sections,
        links=fabric.links,
        hosts=hosts,
        placement_map=placement_map,
        cct_s=cct_s,
        duration_s=sim.now,
        events=sim.events_dispatched,
        injected=work.injected_packets,
        events_coalesced=sim.events_coalesced,
        interval_ns=interval_ns,
        selectors=fabric.selectors,
        span_coflows=span_coflows,
        app_factory=work.app_factory,
    )
