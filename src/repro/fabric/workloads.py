"""Fabric workloads: coflow traffic spread over a topology's hosts.

Both workloads speak the :mod:`repro.coflow` vocabulary — each worker's
stream is a :class:`~repro.coflow.model.Flow` materialized through
:meth:`Flow.packets` — then re-addressed for the fabric: source/dest
IPv4 addresses name hosts (:func:`~repro.fabric.topology.host_ip`), and
per-switch resolvers (not a pre-assigned egress port) do the routing.

- ``fabric-allreduce``: per coflow, W worker hosts each stream the full
  vector toward the coflow's *placed* switch, which aggregates and
  unicasts results back to every worker (stateful; placement matters).
- ``fabric-shuffle``: mapper hosts send per-reducer flows addressed to
  the reducer hosts (stateless transit; exercises ECMP spreading).

Hosts inject back-to-back at ``load`` x the host link rate via
:class:`~repro.net.traffic.DeterministicSource`; all randomness (worker
selection) flows from the seed through :mod:`repro.sim.rng`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from ..coflow.model import Coflow, Flow, FlowDirection
from ..errors import ConfigError
from ..net.headers import OP_DATA, OP_RESULT
from ..net.packet import Packet
from ..net.traffic import DeterministicSource
from ..sim.rng import make_rng, stable_hash64
from .topology import Topology, host_ip

FABRIC_WORKLOADS = ("fabric-allreduce", "fabric-shuffle")

#: Worker hosts per aggregation coflow (capped by the host count).
_WORKERS_PER_COFLOW = 4


@dataclass(frozen=True)
class FabricCoflowSpec:
    """One fabric coflow: its descriptor plus fabric addressing."""

    coflow_id: int
    worker_hosts: tuple[int, ...]
    vector_elements: int
    aggregated: bool

    def to_coflow(self, topology: Topology) -> Coflow:
        """The :mod:`repro.coflow` descriptor (for bookkeeping/metrics)."""
        flows = [
            Flow(
                flow_id=index,
                src_port=topology.hosts[host].port,
                dst_port=0,
                element_count=self.vector_elements,
                direction=FlowDirection.INPUT,
                worker_id=index,
            )
            for index, host in enumerate(self.worker_hosts)
        ]
        return Coflow(
            self.coflow_id,
            flows,
            pattern="aggregation" if self.aggregated else "shuffle",
        )


@dataclass
class FabricWorkload:
    """Everything the fabric runner needs to drive and verify one run."""

    name: str
    kind: str  # "allreduce" | "shuffle"
    coflows: list[FabricCoflowSpec]
    #: host id -> time-ordered (arrival_s, packet) at the host's NIC.
    arrivals: dict[int, list[tuple[float, Packet]]]
    #: (coflow_id, host_id) -> expected terminal packet count at the host.
    expected: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Opcode of the terminal packets ``expected`` counts.
    terminal_opcode: int = OP_RESULT
    #: Optional per-switch app constructor (``factory(switch_name) ->
    #: SwitchApp``) for workloads that host their own stateful apps —
    #: the ``stateful-*`` family — instead of coflow aggregation.  When
    #: set, :func:`repro.fabric.runner.build_fabric` installs the
    #: factory's app on every switch.
    app_factory: object = None

    @property
    def aggregated(self) -> bool:
        return self.kind == "allreduce"

    @property
    def injected_packets(self) -> int:
        return sum(len(stream) for stream in self.arrivals.values())


def _flow_packets(
    spec: FabricCoflowSpec,
    worker_index: int,
    host: int,
    topology: Topology,
    elements_per_packet: int,
    dst_host: int | None,
) -> list[Packet]:
    """Materialize one worker's flow and re-address it for the fabric."""
    flow = Flow(
        flow_id=spec.coflow_id * 1024 + worker_index,
        src_port=topology.hosts[host].port,
        dst_port=0,
        element_count=spec.vector_elements,
        direction=FlowDirection.INPUT,
        worker_id=worker_index,
    )
    packets = flow.packets(
        spec.coflow_id,
        elements_per_packet,
        value_fn=lambda key: key + 1,
        opcode=OP_DATA,
    )
    for packet in packets:
        ip = packet.header("ipv4")
        ip["src_ip"] = host_ip(host)
        if dst_host is not None:
            ip["dst_ip"] = host_ip(dst_host)
        # Flow.packets pins dst_port for the single-switch world; the
        # fabric routes hop by hop instead.
        packet.meta.egress_port = None
    return packets


def _timed(
    per_host_packets: dict[int, list[Packet]],
    topology: Topology,
    link_bps: float,
    load: float,
) -> dict[int, list[tuple[float, Packet]]]:
    if not 0.0 < load <= 1.0:
        raise ConfigError(f"load must be in (0, 1], got {load}")
    arrivals: dict[int, list[tuple[float, Packet]]] = {}
    for host in sorted(per_host_packets):
        packets = per_host_packets[host]
        source = DeterministicSource(
            port=topology.hosts[host].port,
            link_bps=link_bps * load,
            packets=packets,
        )
        arrivals[host] = list(source.packets())
    return arrivals


def _interleave(streams: list[list[Packet]]) -> list[Packet]:
    """Round-robin merge so concurrent coflows share the host NIC."""
    out: list[Packet] = []
    cursor = 0
    while any(cursor < len(s) for s in streams):
        for stream in streams:
            if cursor < len(stream):
                out.append(stream[cursor])
        cursor += 1
    return out


def _pick_workers(
    host_ids: list[int], count: int, name: str, coflow_id: int, seed: int
) -> tuple[int, ...]:
    rng = make_rng(stable_hash64(f"{name}/{seed}/{coflow_id}") % (2**32))
    chosen = rng.choice(len(host_ids), size=count, replace=False)
    return tuple(sorted(host_ids[int(i)] for i in chosen))


def build_workload(
    name: str,
    topology: Topology,
    *,
    coflows: int = 2,
    vector: int = 64,
    elements_per_packet: int = 1,
    link_bps: float,
    load: float = 1.0,
    seed: int = 0,
    coflow_base: int = 0,
) -> FabricWorkload:
    """Build one registered fabric workload over ``topology``'s hosts.

    ``coflow_base`` offsets the generated coflow ids (ids run
    ``base+1 .. base+coflows``): serve mode builds the same workload
    round after round and needs globally-unique ids, while worker
    selection stays a pure function of ``(name, seed, coflow_id)``.
    """
    if coflows < 1:
        raise ConfigError(f"need at least one coflow, got {coflows}")
    if vector < 1:
        raise ConfigError(f"vector must be non-empty, got {vector}")
    if coflow_base < 0:
        raise ConfigError(f"coflow_base must be >= 0, got {coflow_base}")
    if name == "fabric-allreduce":
        return _allreduce(
            topology, coflows, vector, elements_per_packet, link_bps, load,
            seed, coflow_base,
        )
    if name == "fabric-shuffle":
        return _shuffle(
            topology, coflows, vector, elements_per_packet, link_bps, load,
            seed, coflow_base,
        )
    if name.startswith("stateful-"):
        from ..stateful.workloads import build_stateful_workload

        return build_stateful_workload(
            name,
            topology,
            coflows=coflows,
            vector=vector,
            elements_per_packet=elements_per_packet,
            link_bps=link_bps,
            load=load,
            seed=seed,
            coflow_base=coflow_base,
        )
    from ..stateful.workloads import FABRIC_STATEFUL_WORKLOADS

    raise ConfigError(
        f"unknown fabric workload {name!r}; choose from "
        f"{', '.join(FABRIC_WORKLOADS + FABRIC_STATEFUL_WORKLOADS)}"
    )


def _allreduce(
    topology: Topology,
    coflows: int,
    vector: int,
    elements_per_packet: int,
    link_bps: float,
    load: float,
    seed: int,
    coflow_base: int,
) -> FabricWorkload:
    hosts = topology.host_ids
    workers_per_coflow = min(_WORKERS_PER_COFLOW, len(hosts))
    if workers_per_coflow < 2:
        raise ConfigError("allreduce needs a topology with >= 2 hosts")
    specs: list[FabricCoflowSpec] = []
    per_host: dict[int, list[list[Packet]]] = {h: [] for h in hosts}
    expected: dict[tuple[int, int], int] = {}
    result_batches = ceil(vector / elements_per_packet)
    for index in range(coflows):
        coflow_id = coflow_base + index + 1
        workers = _pick_workers(
            hosts, workers_per_coflow, "fabric-allreduce", coflow_id, seed
        )
        spec = FabricCoflowSpec(coflow_id, workers, vector, aggregated=True)
        specs.append(spec)
        for worker_index, host in enumerate(workers):
            per_host[host].append(
                _flow_packets(
                    spec, worker_index, host, topology,
                    elements_per_packet, dst_host=None,
                )
            )
            expected[(coflow_id, host)] = result_batches
    merged = {
        host: _interleave(streams)
        for host, streams in per_host.items()
        if streams
    }
    return FabricWorkload(
        name="fabric-allreduce",
        kind="allreduce",
        coflows=specs,
        arrivals=_timed(merged, topology, link_bps, load),
        expected=expected,
        terminal_opcode=OP_RESULT,
    )


def _shuffle(
    topology: Topology,
    coflows: int,
    vector: int,
    elements_per_packet: int,
    link_bps: float,
    load: float,
    seed: int,
    coflow_base: int,
) -> FabricWorkload:
    hosts = topology.host_ids
    if len(hosts) < 2:
        raise ConfigError("shuffle needs a topology with >= 2 hosts")
    mappers = hosts[: len(hosts) // 2]
    reducers = hosts[len(hosts) // 2:]
    packets_per_flow = ceil(vector / elements_per_packet)
    specs: list[FabricCoflowSpec] = []
    per_host: dict[int, list[list[Packet]]] = {h: [] for h in hosts}
    expected: dict[tuple[int, int], int] = {}
    for index in range(coflows):
        coflow_id = coflow_base + index + 1
        spec = FabricCoflowSpec(
            coflow_id, tuple(mappers), vector, aggregated=False
        )
        specs.append(spec)
        for m_index, mapper in enumerate(mappers):
            for r_index, reducer in enumerate(reducers):
                worker_index = m_index * len(reducers) + r_index
                per_host[mapper].append(
                    _flow_packets(
                        spec, worker_index, mapper, topology,
                        elements_per_packet, dst_host=reducer,
                    )
                )
        for reducer in reducers:
            expected[(coflow_id, reducer)] = len(mappers) * packets_per_flow
    merged = {
        host: _interleave(streams)
        for host, streams in per_host.items()
        if streams
    }
    return FabricWorkload(
        name="fabric-shuffle",
        kind="shuffle",
        coflows=specs,
        arrivals=_timed(merged, topology, link_bps, load),
        expected=expected,
        terminal_opcode=OP_DATA,
    )
