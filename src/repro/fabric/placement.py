"""Fabric-level coflow state placement: which switch hosts the state.

The paper's §3.1 frees state placement from the port→pipeline mapping
*inside* a switch; at fabric scale the same question recurs one level
up — which *switch* runs a coflow's aggregation?  (LOADER and
State-Compute Replication both treat this as the primary design axis.)
Three policies bracket the space:

- ``ingress`` — pin the state to the edge/leaf switch of the coflow's
  first worker (state sits where some of the data enters; remote
  workers pay extra hops both ways).
- ``central`` — host in the most-central tier (cores, else spines):
  symmetric distance to every worker.
- ``hash`` — hash-partition coflows across *all* switches, the
  load-spreading strawman.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim.rng import stable_hash64
from .topology import Topology


class FabricPlacement:
    """Base policy: map one coflow onto the switch hosting its state."""

    name = "base"

    def choose(
        self, coflow_id: int, worker_hosts: tuple[int, ...], topology: Topology
    ) -> str:
        raise NotImplementedError


class IngressPinnedPlacement(FabricPlacement):
    """The edge switch of the lowest-numbered worker host."""

    name = "ingress"

    def choose(
        self, coflow_id: int, worker_hosts: tuple[int, ...], topology: Topology
    ) -> str:
        if not worker_hosts:
            raise ConfigError(f"coflow {coflow_id} has no worker hosts")
        return topology.hosts[min(worker_hosts)].switch


class CentralPlacement(FabricPlacement):
    """A top-tier (core/spine) switch, hashed per coflow to spread load."""

    name = "central"

    def choose(
        self, coflow_id: int, worker_hosts: tuple[int, ...], topology: Topology
    ) -> str:
        tier = topology.top_tier()
        return tier[stable_hash64(f"central/{coflow_id}") % len(tier)]


class HashPartitionedPlacement(FabricPlacement):
    """Any switch in the fabric, hashed per coflow."""

    name = "hash"

    def choose(
        self, coflow_id: int, worker_hosts: tuple[int, ...], topology: Topology
    ) -> str:
        names = topology.switch_names
        return names[stable_hash64(f"hash/{coflow_id}") % len(names)]


FABRIC_PLACEMENTS = {
    "ingress": IngressPinnedPlacement,
    "central": CentralPlacement,
    "hash": HashPartitionedPlacement,
}


def make_placement(name: str) -> FabricPlacement:
    try:
        return FABRIC_PLACEMENTS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown placement policy {name!r}; choose from "
            f"{', '.join(sorted(FABRIC_PLACEMENTS))}"
        )
