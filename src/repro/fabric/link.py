"""Runtime fabric components: links and host endpoints.

A :class:`Link` is one *directed* wire.  Serialization delay is already
paid at the sender's :class:`~repro.arch.port.TxPort` (switch port speed
is the link bandwidth), so the link itself adds only propagation
latency.  It is installed as the sending switch's ``port_sinks`` entry:
the switch counts the packet as delivered, then the link carries it to
the peer — another switch's ingress (:meth:`inject` on the shared
kernel) or a host NIC.

A :class:`HostEndpoint` is the terminal NIC of one server: it records
``(arrival_s, packet)`` pairs, from which the fabric runner derives
coflow completion times and verifies aggregation results.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError
from ..net.headers import OP_DATA, OP_RESULT
from ..net.packet import Packet

Deliver = Callable[[Packet, float], None]


class Link:
    """One directed wire: counts traffic, delays by ``latency_s``, delivers."""

    def __init__(self, name: str, latency_s: float, deliver: Deliver) -> None:
        if latency_s < 0:
            raise ConfigError(
                f"link {name!r} latency must be >= 0, got {latency_s}"
            )
        self.name = name
        self.latency_s = latency_s
        self.deliver = deliver
        self.packets = 0
        self.wire_bytes = 0
        self.last_arrival_s = 0.0
        self.spans = None
        """Optional :class:`~repro.telemetry.spans.SpanRecorder` shared
        with the fabric's switches; sampled packets get a ``link`` hop
        (wire flight time) per traversal."""

    def __call__(self, packet: Packet, departure_s: float) -> None:
        """Port-sink hook: the sender finished serializing at ``departure_s``."""
        self.packets += 1
        self.wire_bytes += packet.wire_bytes
        arrival = departure_s + self.latency_s
        if arrival > self.last_arrival_s:
            self.last_arrival_s = arrival
        spans = self.spans
        if spans is not None and packet.meta.span is not None:
            spans.record(
                packet.meta.span, packet.packet_id, self.name,
                "link", departure_s, arrival,
            )
        self.deliver(packet, arrival)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} packets={self.packets}>"


def switch_handoff(switch, ingress_port: int) -> Deliver:
    """Deliver function that re-injects into ``switch`` on ``ingress_port``.

    Per-hop metadata (the previous switch's egress decisions and arrival
    stamp) is reset so each switch processes the packet as a fresh
    arrival; end-to-end identity (headers, payload, packet id), the
    cumulative recirculation count, and the span id (``meta.span`` —
    sampling is decided once at injection, docs/SPANS.md) survive.
    """

    def deliver(packet: Packet, arrival_s: float) -> None:
        meta = packet.meta
        meta.ingress_port = ingress_port
        meta.egress_port = None
        meta.egress_pipeline = None
        meta.arrival_time = arrival_s
        switch.inject(packet, arrival_s)

    return deliver


class HostEndpoint:
    """A server NIC: terminal sink for packets addressed to the host."""

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self.received: list[tuple[float, Packet]] = []

    @property
    def name(self) -> str:
        return f"h{self.host_id}"

    def deliver(self, packet: Packet, arrival_s: float) -> None:
        self.received.append((arrival_s, packet))

    # --- queries ------------------------------------------------------------------

    def _coflow_packets(
        self, coflow_id: int, opcode: int
    ) -> list[tuple[float, Packet]]:
        out = []
        for arrival, packet in self.received:
            if not packet.has_header("coflow"):
                continue
            header = packet.header("coflow")
            if header["coflow_id"] == coflow_id and header["opcode"] == opcode:
                out.append((arrival, packet))
        return out

    def results(self, coflow_id: int) -> list[tuple[float, Packet]]:
        """OP_RESULT packets of one coflow, in arrival order."""
        return self._coflow_packets(coflow_id, OP_RESULT)

    def data(self, coflow_id: int) -> list[tuple[float, Packet]]:
        """OP_DATA packets of one coflow, in arrival order (shuffle sink)."""
        return self._coflow_packets(coflow_id, OP_DATA)

    def completion_time(
        self, coflow_id: int, opcode: int, expected: int
    ) -> float:
        """Arrival time of the ``expected``-th packet of the coflow.

        Raises when fewer arrived — an undelivered coflow means a
        routing or placement bug, never a silent partial result.
        """
        arrivals = self._coflow_packets(coflow_id, opcode)
        if len(arrivals) < expected:
            raise ConfigError(
                f"host h{self.host_id} received {len(arrivals)} packets of "
                f"coflow {coflow_id} (opcode {opcode}) but expected "
                f"{expected}"
            )
        return arrivals[expected - 1][0]
