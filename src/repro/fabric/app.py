"""The fabric aggregation app: per-switch coflow state plus transit.

Modeled on :class:`repro.apps.ParameterServerApp`, with two fabric
twists:

- A hosting switch also *forwards* traffic of coflows placed elsewhere,
  so :meth:`claims` restricts the stateful path to OP_DATA packets of
  the coflows this instance hosts; everything else takes the plain
  forwarding path (RMT's pinning/recirculation machinery consults it).
- Results are **unicast**, one packet per worker host addressed by
  ``dst_ip``, because multicast egress-port sets are meaningless across
  a fabric — the per-switch resolvers route each copy hop by hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.app import PipelineContext, SwitchApp
from ..arch.decision import Decision
from ..coflow.placement import HashPlacement
from ..errors import ConfigError
from ..net.headers import OP_DATA, OP_RESULT
from ..net.packet import Element, Packet
from ..net.phv import PHV
from ..net.traffic import make_coflow_packet
from .topology import host_ip


@dataclass(frozen=True)
class HostedCoflow:
    """One coflow whose aggregation state lives on this switch."""

    coflow_id: int
    worker_hosts: tuple[int, ...]
    vector_elements: int

    def __post_init__(self) -> None:
        if len(self.worker_hosts) < 2:
            raise ConfigError(
                f"coflow {self.coflow_id}: aggregation needs >= 2 workers"
            )
        if self.vector_elements < 1:
            raise ConfigError(
                f"coflow {self.coflow_id}: vector must be non-empty"
            )


class FabricAggregateApp(SwitchApp):
    """Aggregates the hosted coflows' vectors; forwards everything else."""

    def __init__(
        self, hosted: list[HostedCoflow], elements_per_packet: int = 1
    ) -> None:
        super().__init__("fabricagg", elements_per_packet)
        if not hosted:
            raise ConfigError("fabric aggregate app hosts no coflows")
        self.hosted = {spec.coflow_id: spec for spec in hosted}
        if len(self.hosted) != len(hosted):
            raise ConfigError("duplicate hosted coflow ids")
        self._pending: dict[tuple[int, int], list[Element]] = {}
        self._completed: dict[tuple[int, int], int] = {}
        self._expected: dict[tuple[int, int], int] = {}
        self.results_emitted = 0

    # --- placement ----------------------------------------------------------------

    def uses_central_state(self) -> bool:
        return True

    def claims(self, packet: Packet) -> bool:
        if not packet.has_header("coflow"):
            return False
        header = packet.header("coflow")
        return (
            header["opcode"] == OP_DATA
            and header["coflow_id"] in self.hosted
        )

    def bind_placement(self, partitions: int) -> None:
        """Chunk-granularity hash placement, per hosted coflow.

        Same contract as the single-switch parameter server: a packet's
        whole element chunk lives on the partition of its first key, so
        contributions to a slot always meet on one partition.
        """
        self.placement_policy = HashPlacement(partitions)
        self._pending = {}
        self._completed = {}
        self._expected = {}
        step = self.elements_per_packet
        for coflow_id, spec in self.hosted.items():
            for partition in range(partitions):
                self._pending[(coflow_id, partition)] = []
                self._completed[(coflow_id, partition)] = 0
                self._expected[(coflow_id, partition)] = 0
            for chunk_start in range(0, spec.vector_elements, step):
                chunk_size = min(step, spec.vector_elements - chunk_start)
                partition = self.placement_policy.place(chunk_start)
                self._expected[(coflow_id, partition)] += chunk_size

    def placement_key(self, packet: Packet) -> int:
        if packet.payload is not None and len(packet.payload) > 0:
            return packet.payload[0].key
        if packet.has_header("coflow"):
            return packet.header("coflow")["coflow_id"]
        return 0

    # --- hooks --------------------------------------------------------------------

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        if not self.claims(packet):
            return Decision.forward()
        coflow_id = packet.header("coflow")["coflow_id"]
        spec = self.hosted[coflow_id]
        partition = ctx.pipeline_index
        acc = ctx.register(
            f"agg{coflow_id}_acc", spec.vector_elements, width_bits=64
        )
        count = ctx.register(
            f"agg{coflow_id}_cnt", spec.vector_elements, width_bits=32
        )
        workers = len(spec.worker_hosts)
        assert packet.payload is not None
        for element in packet.payload:
            total = acc.add(element.key, element.value)
            seen = count.add(element.key, 1)
            if seen == workers:
                self._pending[(coflow_id, partition)].append(
                    Element(element.key, total)
                )
                self._completed[(coflow_id, partition)] += 1
        emissions = self._drain_emissions(coflow_id, partition)
        if emissions and packet.meta.origin_time is not None:
            # Results inherit the origin of the data packet whose
            # contribution completed the chunk, so serve-mode latency
            # spans host departure -> result delivery (docs/SERVING.md).
            for emission in emissions:
                emission.meta.origin_time = packet.meta.origin_time
        return Decision.consume(*emissions)

    def _drain_emissions(self, coflow_id: int, partition: int) -> list[Packet]:
        spec = self.hosted[coflow_id]
        slot = (coflow_id, partition)
        pending = self._pending[slot]
        done = self._completed[slot] >= self._expected[slot]
        emissions: list[Packet] = []
        step = self.elements_per_packet
        while len(pending) >= step or (done and pending):
            batch = pending[:step]
            del pending[:step]
            for worker in spec.worker_hosts:
                emissions.append(self._result_packet(spec, batch, worker))
        return emissions

    def _result_packet(
        self, spec: HostedCoflow, batch: list[Element], worker: int
    ) -> Packet:
        packet = make_coflow_packet(
            spec.coflow_id,
            flow_id=0xFFFF,
            seq=self.results_emitted,
            elements=[(e.key, e.value) for e in batch],
            opcode=OP_RESULT,
            dst_ip=host_ip(worker),
        )
        self.results_emitted += 1
        return packet
