"""Fabric topology model and generators (leaf-spine, fat-tree).

A :class:`Topology` is pure structure: named switches, the hosts hanging
off them, and the port-to-port wiring between switches.  It computes
nothing about time — latency and bandwidth belong to the runtime
:class:`~repro.fabric.link.Link` objects — but it does precompute the
equal-cost routing tables (shortest-path next-hop port sets) that the
per-switch resolvers select from.

Topology specs are strings so the CLI and campaign axes can carry them:

- ``leaf-spine-LxS`` — L leaf switches, S spines, 2 hosts per leaf
  (``leaf-spine-LxSxH`` overrides hosts per leaf).
- ``fat-tree-k4`` / ``fat-tree-k8`` — the canonical k-ary fat-tree:
  k pods of k/2 edge + k/2 aggregation switches, (k/2)^2 cores,
  k^3/4 hosts.

Host addressing: host ``h<i>`` has IPv4 address ``i + 1`` (zero stays
"unaddressed" on the wire), via :func:`host_ip`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigError


def host_ip(host_id: int) -> int:
    """The IPv4 address of host ``h<host_id>`` (0 means 'no address')."""
    return host_id + 1


def host_of_ip(ip: int) -> int | None:
    """Inverse of :func:`host_ip`; None for the unaddressed 0."""
    return None if ip == 0 else ip - 1


@dataclass(frozen=True)
class Host:
    """One server endpoint: attached to ``switch`` on ``port``."""

    host_id: int
    switch: str
    port: int

    @property
    def name(self) -> str:
        return f"h{self.host_id}"

    @property
    def ip(self) -> int:
        return host_ip(self.host_id)


@dataclass
class SwitchNode:
    """One switch position in the fabric.

    ``links`` maps a local port to ``(peer switch, peer port)``;
    ``host_ports`` maps a local port to the attached host id.  Every
    port of the switch must be wired to exactly one of the two.
    """

    name: str
    tier: str
    num_ports: int
    links: dict[int, tuple[str, int]] = field(default_factory=dict)
    host_ports: dict[int, int] = field(default_factory=dict)

    def neighbors(self) -> list[str]:
        """Peer switch names, deduplicated, in port order."""
        seen: list[str] = []
        for port in sorted(self.links):
            peer = self.links[port][0]
            if peer not in seen:
                seen.append(peer)
        return seen


@dataclass(frozen=True)
class RoutingTable:
    """Equal-cost next-hop ports of one switch.

    ``to_switch[name]`` / ``to_host[id]`` are the sorted local ports
    whose peers sit on a shortest path to the destination; a selector
    (:mod:`repro.fabric.routing`) picks one per packet.
    """

    switch: str
    to_switch: dict[str, tuple[int, ...]]
    to_host: dict[int, tuple[int, ...]]


class Topology:
    """A validated multi-switch fabric graph."""

    def __init__(
        self,
        name: str,
        switches: dict[str, SwitchNode],
        hosts: dict[int, Host],
    ) -> None:
        if not switches:
            raise ConfigError(f"topology {name!r} has no switches")
        self.name = name
        self.switches = dict(switches)
        self.hosts = dict(hosts)
        self._validate()

    # --- validation ---------------------------------------------------------------

    def _validate(self) -> None:
        for name, node in self.switches.items():
            if node.name != name:
                raise ConfigError(
                    f"switch {name!r} registered under mismatched key"
                )
            used = sorted(node.links) + sorted(node.host_ports)
            if len(set(used)) != len(used):
                raise ConfigError(
                    f"switch {name!r} wires some port to both a link "
                    f"and a host"
                )
            for port in used:
                if not 0 <= port < node.num_ports:
                    raise ConfigError(
                        f"switch {name!r} port {port} out of range "
                        f"[0, {node.num_ports})"
                    )
            if len(used) != node.num_ports:
                raise ConfigError(
                    f"switch {name!r} has {node.num_ports} ports but only "
                    f"{len(used)} are wired"
                )
            for port, (peer, peer_port) in node.links.items():
                if peer not in self.switches:
                    raise ConfigError(
                        f"switch {name!r} port {port} links to unknown "
                        f"switch {peer!r}"
                    )
                back = self.switches[peer].links.get(peer_port)
                if back != (name, port):
                    raise ConfigError(
                        f"link {name}:{port} -> {peer}:{peer_port} is not "
                        f"symmetric"
                    )
        for host_id, host in self.hosts.items():
            if host.host_id != host_id:
                raise ConfigError(
                    f"host {host_id} registered under mismatched key"
                )
            node = self.switches.get(host.switch)
            if node is None:
                raise ConfigError(
                    f"host h{host_id} attached to unknown switch "
                    f"{host.switch!r}"
                )
            if node.host_ports.get(host.port) != host_id:
                raise ConfigError(
                    f"host h{host_id} claims {host.switch}:{host.port} but "
                    f"the switch does not wire it back"
                )

    # --- queries ------------------------------------------------------------------

    @property
    def switch_names(self) -> list[str]:
        return sorted(self.switches)

    @property
    def host_ids(self) -> list[int]:
        return sorted(self.hosts)

    def tier(self, tier: str) -> list[str]:
        """Sorted names of the switches in one tier."""
        return sorted(
            name for name, node in self.switches.items() if node.tier == tier
        )

    def top_tier(self) -> list[str]:
        """The most-central tier: cores if present, else spines."""
        for tier in ("core", "spine"):
            names = self.tier(tier)
            if names:
                return names
        return self.switch_names

    def edge_links(self) -> list[tuple[str, int, str, int]]:
        """Every directed switch-to-switch wire as (src, port, dst, port)."""
        out = []
        for name in self.switch_names:
            node = self.switches[name]
            for port in sorted(node.links):
                peer, peer_port = node.links[port]
                out.append((name, port, peer, peer_port))
        return out

    # --- routing ------------------------------------------------------------------

    def routes(self) -> dict[str, RoutingTable]:
        """Per-switch equal-cost next-hop tables (BFS shortest paths)."""
        distances: dict[str, dict[str, int]] = {}
        for destination in self.switch_names:
            dist = {destination: 0}
            frontier = deque([destination])
            while frontier:
                current = frontier.popleft()
                for neighbor in self.switches[current].neighbors():
                    if neighbor not in dist:
                        dist[neighbor] = dist[current] + 1
                        frontier.append(neighbor)
            if len(dist) != len(self.switches):
                raise ConfigError(
                    f"topology {self.name!r} is disconnected: "
                    f"{destination!r} unreachable from some switches"
                )
            distances[destination] = dist

        tables: dict[str, RoutingTable] = {}
        for name in self.switch_names:
            node = self.switches[name]
            to_switch: dict[str, tuple[int, ...]] = {}
            for destination in self.switch_names:
                if destination == name:
                    continue
                dist = distances[destination]
                ports = tuple(
                    sorted(
                        port
                        for port, (peer, _) in node.links.items()
                        if dist[peer] == dist[name] - 1
                    )
                )
                to_switch[destination] = ports
            to_host: dict[int, tuple[int, ...]] = {}
            for host_id, host in self.hosts.items():
                if host.switch == name:
                    to_host[host_id] = (host.port,)
                else:
                    to_host[host_id] = to_switch[host.switch]
            tables[name] = RoutingTable(name, to_switch, to_host)
        return tables


# --- generators --------------------------------------------------------------------


def single_switch(hosts: int = 8) -> Topology:
    """One switch with ``hosts`` directly-attached servers, no fabric links.

    The degenerate fabric: routing tables collapse to local host ports
    and every placement policy picks the only switch.  Serve mode uses
    it to soak a single RMT/ADCP instance under open-loop load without
    multi-hop effects (docs/SERVING.md).
    """
    if hosts < 2:
        raise ConfigError(
            f"single-switch topology needs >= 2 hosts, got {hosts}"
        )
    node = SwitchNode("sw0", "single", hosts)
    host_map: dict[int, Host] = {}
    for i in range(hosts):
        node.host_ports[i] = i
        host_map[i] = Host(i, "sw0", i)
    return Topology(f"single-{hosts}", {"sw0": node}, host_map)


def leaf_spine(
    leaves: int = 2, spines: int = 2, hosts_per_leaf: int = 2
) -> Topology:
    """A two-tier Clos: every leaf uplinks to every spine."""
    if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
        raise ConfigError(
            "leaf-spine needs at least one leaf, spine, and host per leaf"
        )
    switches: dict[str, SwitchNode] = {}
    hosts: dict[int, Host] = {}
    for leaf in range(leaves):
        name = f"leaf{leaf}"
        node = SwitchNode(name, "leaf", hosts_per_leaf + spines)
        for i in range(hosts_per_leaf):
            host_id = leaf * hosts_per_leaf + i
            node.host_ports[i] = host_id
            hosts[host_id] = Host(host_id, name, i)
        for spine in range(spines):
            node.links[hosts_per_leaf + spine] = (f"spine{spine}", leaf)
        switches[name] = node
    for spine in range(spines):
        name = f"spine{spine}"
        node = SwitchNode(name, "spine", leaves)
        for leaf in range(leaves):
            node.links[leaf] = (f"leaf{leaf}", hosts_per_leaf + spine)
        switches[name] = node
    return Topology(
        f"leaf-spine-{leaves}x{spines}"
        + (f"x{hosts_per_leaf}" if hosts_per_leaf != 2 else ""),
        switches,
        hosts,
    )


def fat_tree(k: int = 4) -> Topology:
    """The canonical k-ary fat-tree (k even): k^3/4 hosts, 5k^2/4 switches."""
    if k < 2 or k % 2 != 0:
        raise ConfigError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    switches: dict[str, SwitchNode] = {}
    hosts: dict[int, Host] = {}

    for pod in range(k):
        for e in range(half):
            name = f"edge{pod}-{e}"
            node = SwitchNode(name, "edge", k)
            for i in range(half):
                host_id = pod * half * half + e * half + i
                node.host_ports[i] = host_id
                hosts[host_id] = Host(host_id, name, i)
            for a in range(half):
                # Edge uplink a <-> aggregation a's downlink e.
                node.links[half + a] = (f"agg{pod}-{a}", e)
            switches[name] = node
        for a in range(half):
            name = f"agg{pod}-{a}"
            node = SwitchNode(name, "agg", k)
            for e in range(half):
                node.links[e] = (f"edge{pod}-{e}", half + a)
            for j in range(half):
                # Core group a serves aggregation index a in every pod;
                # core (a, j) port p plugs into pod p.
                node.links[half + j] = (f"core{a}-{j}", pod)
            switches[name] = node

    for a in range(half):
        for j in range(half):
            name = f"core{a}-{j}"
            node = SwitchNode(name, "core", k)
            for pod in range(k):
                node.links[pod] = (f"agg{pod}-{a}", half + j)
            switches[name] = node

    return Topology(f"fat-tree-k{k}", switches, hosts)


def parse_topology(spec: str) -> Topology:
    """Build a topology from its spec string (see module docstring)."""
    if spec.startswith("leaf-spine-"):
        dims = spec[len("leaf-spine-"):].split("x")
        if len(dims) in (2, 3) and all(d.isdigit() for d in dims):
            leaves, spines = int(dims[0]), int(dims[1])
            hosts_per_leaf = int(dims[2]) if len(dims) == 3 else 2
            return leaf_spine(leaves, spines, hosts_per_leaf)
    if spec.startswith("fat-tree-k"):
        arity = spec[len("fat-tree-k"):]
        if arity.isdigit():
            return fat_tree(int(arity))
    if spec.startswith("single-"):
        count = spec[len("single-"):]
        if count.isdigit():
            return single_switch(int(count))
    raise ConfigError(
        f"unknown topology spec {spec!r}; expected leaf-spine-LxS[xH] "
        f"(e.g. leaf-spine-2x2), fat-tree-kK (e.g. fat-tree-k4), or "
        f"single-N (e.g. single-8)"
    )
