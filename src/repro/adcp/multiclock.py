"""Physical design alternatives for array-wide MAT memory (section 4).

To let ``n`` match-action units look up one shared table per cycle, the
paper sketches a **multi-clock** design: "we can leverage the lower clock
frequency of the pipelines and clock the MAT table memory at a much higher
frequency ... that memory could be clocked n times faster than the
pipeline.  The lookups ... would be done one at a time, but thanks to the
clocking difference, we could retire n lookups at once from the point of
view of the pipeline."

The obvious alternative is **banking**: n independent memory banks, each a
full copy-free partition, with conflicts when two keys of one array hash
to the same bank.  Both are modeled so the A2 ablation can sweep array
width and show where each design stops being feasible — the paper's
concern that the multi-clock design "links the memory frequency with the
array width we aim to support, which could potentially restrict
scalability".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..sim.rng import stable_hash64
from ..units import GHZ

MAX_SRAM_FREQUENCY_HZ = 4.0 * GHZ
"""Practical SRAM macro clock ceiling for current processes (~4 GHz)."""


@dataclass(frozen=True)
class MatMemoryDesign:
    """Common interface: timing and feasibility of one design point."""

    pipeline_frequency_hz: float
    array_width: int

    def __post_init__(self) -> None:
        if self.pipeline_frequency_hz <= 0:
            raise ConfigError("pipeline frequency must be positive")
        if self.array_width < 1:
            raise ConfigError("array width must be >= 1")

    @property
    def memory_frequency_hz(self) -> float:
        raise NotImplementedError

    @property
    def is_feasible(self) -> bool:
        raise NotImplementedError

    def lookups_per_pipeline_cycle(self, keys: list[int]) -> float:
        """Effective lookups retired per pipeline cycle for a key batch."""
        raise NotImplementedError

    def area_factor(self) -> float:
        """Relative area versus one scalar MAT memory (1.0 = baseline)."""
        raise NotImplementedError


@dataclass(frozen=True)
class MultiClockMatMemory(MatMemoryDesign):
    """One memory clocked ``array_width`` times the pipeline.

    Retires exactly ``array_width`` lookups per pipeline cycle while the
    memory clock stays under the SRAM ceiling; beyond the ceiling the
    design point is infeasible (the scalability restriction the paper
    flags).  Area cost is one memory plus a multi-clock wrapper.
    """

    max_memory_frequency_hz: float = MAX_SRAM_FREQUENCY_HZ
    wrapper_area_overhead: float = 0.15

    @property
    def memory_frequency_hz(self) -> float:
        return self.pipeline_frequency_hz * self.array_width

    @property
    def is_feasible(self) -> bool:
        return self.memory_frequency_hz <= self.max_memory_frequency_hz

    @property
    def max_feasible_width(self) -> int:
        """Largest array width this pipeline clock can support."""
        return max(
            1, int(self.max_memory_frequency_hz / self.pipeline_frequency_hz)
        )

    def lookups_per_pipeline_cycle(self, keys: list[int]) -> float:
        if not keys:
            raise ConfigError("need at least one key")
        if not self.is_feasible:
            raise ConfigError(
                f"multi-clock memory at "
                f"{self.memory_frequency_hz / GHZ:.2f} GHz exceeds the "
                f"{self.max_memory_frequency_hz / GHZ:.2f} GHz ceiling"
            )
        # Serial lookups within the fast clock: a batch of any size up to
        # the width completes within one pipeline cycle.
        cycles = math.ceil(len(keys) / self.array_width)
        return len(keys) / cycles

    def area_factor(self) -> float:
        return 1.0 + self.wrapper_area_overhead


@dataclass(frozen=True)
class BankedMatMemory(MatMemoryDesign):
    """``array_width`` single-clocked banks with hash-distributed entries.

    No fast clock needed, but two keys of one array that fall in the same
    bank serialize: a batch takes as many cycles as the most loaded bank.
    Area grows with bank count (peripheral duplication), modeled as a
    fixed per-bank overhead over the shared-capacity baseline.
    """

    per_bank_area_overhead: float = 0.08

    @property
    def memory_frequency_hz(self) -> float:
        return self.pipeline_frequency_hz

    @property
    def is_feasible(self) -> bool:
        return True

    def bank_of(self, key: int) -> int:
        return stable_hash64(key) % self.array_width

    def batch_cycles(self, keys: list[int]) -> int:
        """Pipeline cycles one key batch needs (max per-bank load)."""
        if not keys:
            raise ConfigError("need at least one key")
        loads = [0] * self.array_width
        for key in keys:
            loads[self.bank_of(key)] += 1
        return max(loads)

    def lookups_per_pipeline_cycle(self, keys: list[int]) -> float:
        return len(keys) / self.batch_cycles(keys)

    def expected_batch_cycles(self, batch_size: int, trials: int, rng) -> float:
        """Monte-Carlo mean of :meth:`batch_cycles` over random key batches."""
        if batch_size < 1:
            raise ConfigError("batch size must be >= 1")
        if trials < 1:
            raise ConfigError("need at least one trial")
        total = 0
        for _ in range(trials):
            keys = [int(k) for k in rng.integers(0, 2**31, size=batch_size)]
            total += self.batch_cycles(keys)
        return total / trials

    def area_factor(self) -> float:
        return 1.0 + self.per_bank_area_overhead * self.array_width
