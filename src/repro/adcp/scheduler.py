"""TM1 scheduling disciplines: FIFO versus order-preserving merge.

Section 3.1: "This is not to say that the first TM can do general-purpose
sorting, but it could keep a sort order while it merges flows that are
themselves sorted."  That is a k-way merge: each input flow delivers its
packets in nondecreasing key order, and the scheduler releases the
globally smallest buffered head.

:class:`KWayMergeScheduler` implements exactly that, with the streaming
caveat real hardware faces: a flow with no buffered packet *blocks* the
merge (its next key is unknown) until it either buffers a packet or is
declared finished.  :class:`FifoScheduler` is the classic-TM baseline that
releases in arrival order; :func:`order_violations` counts how far its
output deviates from sorted order.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Hashable

from ..errors import ConfigError
from ..net.packet import Packet

KeyFn = Callable[[Packet], int]
FlowFn = Callable[[Packet], Hashable]


def _default_key(packet: Packet) -> int:
    if packet.payload is not None and len(packet.payload) > 0:
        return packet.payload[0].key
    if packet.has_header("coflow"):
        return packet.header("coflow")["seq"]
    return 0


def _default_flow(packet: Packet) -> Hashable:
    if packet.has_header("coflow"):
        return packet.header("coflow")["flow_id"]
    return packet.meta.ingress_port


class FifoScheduler:
    """Classic TM behaviour: release packets in arrival order."""

    def __init__(self) -> None:
        self._queue: deque[Packet] = deque()
        self.released = 0

    def offer(self, packet: Packet) -> None:
        self._queue.append(packet)

    def drain(self) -> list[Packet]:
        """Release everything currently queued, in arrival order."""
        released = list(self._queue)
        self._queue.clear()
        self.released += len(released)
        return released

    def pending(self) -> int:
        return len(self._queue)


class KWayMergeScheduler:
    """Order-preserving merge of per-flow sorted streams.

    Flows must be registered up front (the application tells TM1 which
    flows participate, as it tells it the placement criteria).  A packet
    is releasable when its key is the minimum among all unfinished flows'
    buffered heads and every unfinished flow has a buffered head — the
    standard watermark condition for streaming merges.
    """

    def __init__(
        self,
        flows: list[Hashable],
        key_fn: KeyFn = _default_key,
        flow_fn: FlowFn = _default_flow,
    ) -> None:
        if not flows:
            raise ConfigError("merge scheduler needs at least one flow")
        if len(set(flows)) != len(flows):
            raise ConfigError("duplicate flow ids in merge scheduler")
        self.key_fn = key_fn
        self.flow_fn = flow_fn
        self._buffers: dict[Hashable, deque[Packet]] = {f: deque() for f in flows}
        self._finished: set[Hashable] = set()
        self._last_key: dict[Hashable, int | None] = {f: None for f in flows}
        self._seq = itertools.count()
        self.released = 0
        self.max_buffered = 0

    def has_flow(self, flow: Hashable) -> bool:
        """Whether ``flow`` is registered with this merge."""
        return flow in self._buffers

    def offer(self, packet: Packet) -> list[Packet]:
        """Buffer a packet; returns any packets the merge can now release."""
        flow = self.flow_fn(packet)
        if flow not in self._buffers:
            raise ConfigError(f"packet belongs to unregistered flow {flow!r}")
        if flow in self._finished:
            raise ConfigError(f"flow {flow!r} already finished")
        key = self.key_fn(packet)
        last = self._last_key[flow]
        if last is not None and key < last:
            raise ConfigError(
                f"flow {flow!r} is not sorted: key {key} after {last} "
                f"(TM1 merges sorted flows, it does not sort)"
            )
        self._last_key[flow] = key
        self._buffers[flow].append(packet)
        self._note_buffered()
        return self._release_ready()

    def finish_flow(self, flow: Hashable) -> list[Packet]:
        """Declare a flow complete; may unblock the merge."""
        if flow not in self._buffers:
            raise ConfigError(f"unknown flow {flow!r}")
        self._finished.add(flow)
        return self._release_ready()

    def _note_buffered(self) -> None:
        buffered = sum(len(q) for q in self._buffers.values())
        if buffered > self.max_buffered:
            self.max_buffered = buffered

    def _active_flows(self) -> list[Hashable]:
        return [f for f in self._buffers if f not in self._finished]

    def _release_ready(self) -> list[Packet]:
        released: list[Packet] = []
        while True:
            heads: list[tuple[int, int, Hashable]] = []
            blocked = False
            for flow in self._buffers:
                queue = self._buffers[flow]
                if queue:
                    heads.append((self.key_fn(queue[0]), next(self._seq), flow))
                elif flow not in self._finished:
                    blocked = True
            if blocked or not heads:
                break
            _, _, flow = min(heads)
            released.append(self._buffers[flow].popleft())
        self.released += len(released)
        return released

    def pending(self) -> int:
        return sum(len(q) for q in self._buffers.values())

    @property
    def is_drained(self) -> bool:
        return self.pending() == 0 and len(self._finished) == len(self._buffers)


def order_violations(packets: list[Packet], key_fn: KeyFn = _default_key) -> int:
    """Count adjacent inversions in a released stream.

    Zero means the stream is globally sorted by key; the FIFO baseline
    over interleaved sorted flows typically shows many inversions, which
    is the gap the merging TM1 closes.
    """
    keys = [key_fn(p) for p in packets]
    return sum(1 for a, b in zip(keys, keys[1:]) if b < a)
