"""TM1: the application-aware traffic manager in front of the global area.

"While the second TM is more likely to behave as a classic scheduler, the
first TM could have better application capability" (section 3.1).  TM1
routes each packet to a central pipeline using the application's placement
policy over an application-chosen key — hash, range, or explicit — instead
of the egress-port lookup a classic TM performs.
"""

from __future__ import annotations

from typing import Callable

from ..coflow.placement import HashPlacement, PlacementPolicy
from ..errors import ConfigError
from ..net.packet import Packet
from ..rmt.traffic_manager import TrafficManager
from ..sim.component import Component


class ApplicationTrafficManager(TrafficManager):
    """TM1: routes by placement policy over an application key.

    ``key_fn(packet) -> int`` extracts the placement key (typically the
    app's :meth:`~repro.arch.app.SwitchApp.placement_key`); ``policy``
    maps keys to central pipelines.  Defaults to uniform hash placement.
    """

    def __init__(
        self,
        name: str,
        parent: Component,
        central_pipelines: int,
        key_fn: Callable[[Packet], int],
        policy: PlacementPolicy | None = None,
        buffer_packets: int = 4096,
        latency_s: float = 0.0,
    ) -> None:
        if central_pipelines < 1:
            raise ConfigError("TM1 needs at least one central pipeline")
        self.policy = policy or HashPlacement(central_pipelines)
        if self.policy.partitions != central_pipelines:
            raise ConfigError(
                f"placement policy has {self.policy.partitions} partitions "
                f"but the switch has {central_pipelines} central pipelines"
            )
        self.key_fn = key_fn
        super().__init__(
            name,
            parent,
            route=self._route_by_key,
            buffer_packets=buffer_packets,
            latency_s=latency_s,
        )

    def admit(
        self,
        packet: Packet,
        ready_time: float,
        pipeline: int | None = None,
    ) -> tuple[int, float] | None:
        admitted = super().admit(packet, ready_time, pipeline)
        if admitted is not None and self.trace is not None:
            self._trace_placement(packet, ready_time, admitted[0])
        return admitted

    def _trace_placement(
        self, packet: Packet, ready_time: float, partition: int
    ) -> None:
        from ..telemetry.events import Category

        self.trace.emit(
            Category.TM,
            "tm1.place",
            ready_time,
            component=self.path,
            packet_id=packet.packet_id,
            key=self.key_fn(packet),
            partition=partition,
        )

    def monitor_probes(self):
        """Classic TM series plus per-bank routed-packet counts.

        The per-partition counters are the §4 "central bank access" view:
        sampled over time they show whether placement keeps the banks
        balanced or lets one central pipeline congest.
        """
        probes = super().monitor_probes()
        path = self.path
        for index in range(self.policy.partitions):
            probes[f"{path}.bank{index}.accesses"] = (
                lambda now_s, i=index: self.stats.value(
                    f"{path}.partition{i}"
                )
            )
        return probes

    def _route_by_key(self, packet: Packet) -> int:
        key = self.key_fn(packet)
        partition = self.policy.place(key)
        self.counter(f"partition{partition}").add()
        return partition

    def partition_histogram(self) -> list[int]:
        """Packets routed to each central pipeline so far."""
        return [
            int(self.stats.value(f"{self.path}.partition{i}"))
            for i in range(self.policy.partitions)
        ]
