"""ADCP switch configuration.

The defining knobs relative to :class:`repro.rmt.config.RMTConfig`:

- ``demux_factor`` (m): every port is *de*multiplexed across m ingress
  lanes (and multiplexed back from m egress lanes), so each lane carries
  1/m of the port's packet rate and the lane clock is
  ``port_rate / m`` — Table 3's arithmetic.
- ``central_pipelines``: the global partitioned area's width.  Central
  pipelines are not attached to any port; TM2 can forward their output
  anywhere.
- ``array_width``: parallel lookups per stage (8 or 16 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..net.phv import PHVLayout
from ..units import ETHERNET_MIN_WIRE_BYTES, GBPS, packet_rate


@dataclass(frozen=True)
class ADCPConfig:
    """Design parameters of one ADCP switch instance.

    Defaults model the paper's forward-looking point: 800 Gbps ports split
    1:2, honest 84 B minimum packets, lanes at ~0.6 GHz (Table 3 row 2),
    16-wide arrays.
    """

    num_ports: int = 16
    port_speed_bps: float = 800 * GBPS
    demux_factor: int = 2
    central_pipelines: int = 4
    stages_per_pipeline: int = 12
    maus_per_stage: int = 16
    array_width: int = 16
    min_wire_packet_bytes: float = ETHERNET_MIN_WIRE_BYTES
    frequency_margin: float = 1.01
    phv_layout: PHVLayout = PHVLayout()
    tm_buffer_packets: int = 4096
    tm_latency_cycles: int = 8
    parser_latency_cycles: int = 4
    central_frequency_hz: float | None = None

    def __post_init__(self) -> None:
        if self.num_ports < 1:
            raise ConfigError("switch needs at least one port")
        if self.demux_factor < 1:
            raise ConfigError(
                f"demux factor must be >= 1, got {self.demux_factor}"
            )
        if self.central_pipelines < 1:
            raise ConfigError("need at least one central pipeline")
        if self.array_width < 1:
            raise ConfigError("array width must be >= 1")
        if self.array_width > self.maus_per_stage:
            raise ConfigError(
                f"array width {self.array_width} exceeds the "
                f"{self.maus_per_stage} MAUs available per stage"
            )
        if self.min_wire_packet_bytes < ETHERNET_MIN_WIRE_BYTES:
            raise ConfigError(
                f"minimum wire packet below the {ETHERNET_MIN_WIRE_BYTES} B "
                f"Ethernet floor"
            )
        if self.frequency_margin < 1.0:
            raise ConfigError("frequency margin must be >= 1.0")

    # --- derived geometry ---------------------------------------------------------

    @property
    def lanes_per_port(self) -> int:
        return self.demux_factor

    @property
    def ingress_pipelines(self) -> int:
        """Total ingress lanes: one pipeline per (port, lane)."""
        return self.num_ports * self.demux_factor

    @property
    def egress_pipelines(self) -> int:
        return self.num_ports * self.demux_factor

    @property
    def throughput_bps(self) -> float:
        return self.num_ports * self.port_speed_bps

    # --- derived clocks --------------------------------------------------------------

    @property
    def port_packet_rate_pps(self) -> float:
        """Peak packet rate of one port at the minimum packet size."""
        return packet_rate(self.port_speed_bps, self.min_wire_packet_bytes)

    @property
    def lane_frequency_hz(self) -> float:
        """Clock of one ingress/egress lane: 1/m of the port rate.

        ``frequency_margin`` adds headroom so lanes are never the exact
        bottleneck (real designs clock slightly above the requirement).
        """
        return (
            self.port_packet_rate_pps / self.demux_factor * self.frequency_margin
        )

    @property
    def central_clock_hz(self) -> float:
        """Clock of a central pipeline.

        Defaults to the aggregate ingress packet rate divided across the
        central bank (each central pipeline must absorb its share of the
        whole switch's packets), unless pinned by ``central_frequency_hz``.
        """
        if self.central_frequency_hz is not None:
            return self.central_frequency_hz
        aggregate = self.port_packet_rate_pps * self.num_ports
        return aggregate / self.central_pipelines * self.frequency_margin

    # --- topology -----------------------------------------------------------------

    def lane_of(self, port: int, lane: int) -> int:
        """Global ingress/egress pipeline index of a (port, lane) pair."""
        if not 0 <= port < self.num_ports:
            raise ConfigError(f"port {port} out of range [0, {self.num_ports})")
        if not 0 <= lane < self.demux_factor:
            raise ConfigError(
                f"lane {lane} out of range [0, {self.demux_factor})"
            )
        return port * self.demux_factor + lane

    def port_of_lane(self, pipeline: int) -> int:
        if not 0 <= pipeline < self.ingress_pipelines:
            raise ConfigError(
                f"pipeline {pipeline} out of range [0, {self.ingress_pipelines})"
            )
        return pipeline // self.demux_factor


def table3_config(port_speed_gbps: float = 800, num_ports: int = 16) -> ADCPConfig:
    """ADCP config matching Table 3's demultiplexed rows (1:2, 84 B)."""
    return ADCPConfig(
        num_ports=num_ports,
        port_speed_bps=port_speed_gbps * GBPS,
        demux_factor=2,
        min_wire_packet_bytes=ETHERNET_MIN_WIRE_BYTES,
    )
