"""The ADCP switch: demuxed lanes, two TMs, and the global area (Figure 4).

Packet lifecycle: RX port -> one of the port's m ingress lanes ->
TM1 (application placement) -> central pipeline -> TM2 (classic, by egress
port) -> one of the destination port's m egress lanes -> TX port.

Two properties distinguish this from :class:`repro.rmt.switch.RMTSwitch`:

- Every packet can reach the state partition of its key directly (TM1
  routes by key, not by port), and every result can reach every port
  (TM2 sits *after* the state) — no pinning, no recirculation.
- Central stages are array-capable, so a stateful hook accepts a whole
  element array per packet (up to ``array_width``).
"""

from __future__ import annotations

from ..arch.app import SwitchApp
from ..arch.decision import Decision, Verdict
from ..arch.port import TxPort
from ..coflow.placement import PlacementPolicy
from ..errors import ConfigError
from ..net.headers import OP_FLUSH
from ..net.packet import Packet
from ..sim.component import Component
from ..sim.event import Simulator
from ..telemetry.events import Category, Severity
from ..rmt.pipeline import Pipeline
from ..rmt.switch import SwitchRunResult
from ..rmt.traffic_manager import TrafficManager
from .config import ADCPConfig
from .scheduler import KWayMergeScheduler
from .traffic_manager import ApplicationTrafficManager


class ADCPSwitch(Component):
    """Executable model of the proposed ADCP architecture."""

    def __init__(
        self,
        config: ADCPConfig,
        app: SwitchApp | None = None,
        placement: PlacementPolicy | None = None,
        ordered_flows: list[int] | None = None,
        telemetry=None,
        sim: Simulator | None = None,
        name: str = "adcp",
    ) -> None:
        """Build an ADCP switch.

        ``ordered_flows`` activates TM1's expanded scheduling semantics
        (section 3.1): packets of the listed coflow-header flow ids are
        buffered in front of TM1 and released in globally nondecreasing
        key order via a k-way merge of the (individually sorted) flows.
        An OP_FLUSH packet finishes its flow and is absorbed.

        ``telemetry`` (a :class:`repro.telemetry.Telemetry`) is opt-in;
        when omitted, instrumentation reduces to per-site None checks.
        """
        super().__init__(name)
        self.config = config
        self.app = app
        self.telemetry = telemetry
        self.trace = None
        self.spans = None
        if app is not None and app.elements_per_packet > config.array_width:
            raise ConfigError(
                f"app {app.name!r} packs {app.elements_per_packet} elements "
                f"per packet but the ADCP arrays are "
                f"{config.array_width} wide"
            )
        lane_hz = config.lane_frequency_hz
        self.ingress = [
            Pipeline(
                i,
                "ingress",
                lane_hz,
                self,
                stages=config.stages_per_pipeline,
                maus_per_stage=config.maus_per_stage,
                attached_ports=(config.port_of_lane(i),),
                array_width=config.array_width,
                parser_latency_cycles=config.parser_latency_cycles,
                phv_layout=config.phv_layout,
            )
            for i in range(config.ingress_pipelines)
        ]
        self.central = [
            Pipeline(
                i,
                "central",
                config.central_clock_hz,
                self,
                stages=config.stages_per_pipeline,
                maus_per_stage=config.maus_per_stage,
                attached_ports=(),
                array_width=config.array_width,
                parser_latency_cycles=config.parser_latency_cycles,
                phv_layout=config.phv_layout,
            )
            for i in range(config.central_pipelines)
        ]
        self.egress = [
            Pipeline(
                i,
                "egress",
                lane_hz,
                self,
                stages=config.stages_per_pipeline,
                maus_per_stage=config.maus_per_stage,
                attached_ports=(config.port_of_lane(i),),
                array_width=config.array_width,
                parser_latency_cycles=config.parser_latency_cycles,
                phv_layout=config.phv_layout,
            )
            for i in range(config.egress_pipelines)
        ]
        key_fn = (
            app.placement_key if app is not None else self._default_key
        )
        if app is not None:
            app.bind_placement(config.central_pipelines)
            if placement is None:
                placement = app.placement_policy
        # Hook elision: a region hook the app never overrode is the base
        # class's forward-everything default, which the pipelines treat
        # as no hook at all — unlocking their parse/deparse-free path.
        # Width enforcement at the central area keys off the *app*, not
        # the (possibly elided) hook, so it survives elision.
        self._ingress_hook = self._elide_hook("ingress")
        self._central_hook = self._elide_hook("central")
        self._egress_hook = self._elide_hook("egress")
        tm_latency = config.tm_latency_cycles / config.central_clock_hz
        self.tm1 = ApplicationTrafficManager(
            "tm1",
            self,
            central_pipelines=config.central_pipelines,
            key_fn=key_fn,
            policy=placement,
            buffer_packets=config.tm_buffer_packets,
            latency_s=tm_latency,
        )
        self.tm2 = TrafficManager(
            "tm2",
            self,
            route=self._egress_lane_of_packet,
            buffer_packets=config.tm_buffer_packets,
            latency_s=tm_latency,
        )
        self.tx_ports = [
            TxPort(p, config.port_speed_bps) for p in range(config.num_ports)
        ]
        self._next_ingress_lane = [0] * config.num_ports
        self._next_egress_lane = [0] * config.num_ports
        self._merge = (
            KWayMergeScheduler(list(ordered_flows)) if ordered_flows else None
        )
        self._sim = sim if sim is not None else Simulator()
        self._result = SwitchRunResult()
        self.port_sinks = {}
        """Optional per-port delivery hooks (fabric links); see RMTSwitch."""
        self.route_resolver = None
        """Optional ``fn(packet) -> port | None`` consulted for unrouted
        unicast packets before TM2 admission (fabric next-hop selection)."""
        if telemetry is not None:
            telemetry.bind(self)
            # Sampled spans ride outside the trace path: the recorder is
            # consulted per packet with one None check, so the switch
            # keeps the ``trace is None`` fast paths (docs/SPANS.md).
            self.spans = getattr(telemetry, "spans", None)
            # A recorder disabled at construction skips trace wiring
            # entirely, so such a hub costs the same as passing none
            # (metrics/snapshots still work; re-enabling later has no
            # effect on this switch).
            if telemetry.trace.enabled:
                trace = telemetry.trace
                self.trace = trace
                for pipeline in self.ingress + self.central + self.egress:
                    pipeline.trace = trace
                self.tm1.trace = trace
                self.tm2.trace = trace
                for port in self.tx_ports:
                    port.trace = trace
                self._sim.trace = trace

    # --- topology helpers --------------------------------------------------------

    def _elide_hook(self, region: str):
        """The app's hook for ``region``, or None if it is the inherited
        :class:`~repro.arch.app.SwitchApp` default (pure forward)."""
        app = self.app
        if app is None:
            return None
        if getattr(type(app), region) is getattr(SwitchApp, region):
            return None
        return getattr(app, region)

    @staticmethod
    def _default_key(packet: Packet) -> int:
        if packet.payload is not None and len(packet.payload) > 0:
            return packet.payload[0].key
        if packet.has_header("coflow"):
            return packet.header("coflow")["coflow_id"]
        return 0

    def _pick_ingress_lane(self, port: int) -> int:
        lane = self._next_ingress_lane[port]
        self._next_ingress_lane[port] = (lane + 1) % self.config.demux_factor
        return self.config.lane_of(port, lane)

    def _egress_lane_of_packet(self, packet: Packet) -> int:
        port = packet.meta.egress_port
        if port is None:
            raise ConfigError("packet reached TM2 without an egress port")
        lane = self._next_egress_lane[port]
        self._next_egress_lane[port] = (lane + 1) % self.config.demux_factor
        return self.config.lane_of(port, lane)

    # --- telemetry ------------------------------------------------------------------

    def monitor_probes(self):
        """Switch-level resource-monitor series.

        The recirculation series is registered even though ADCP programs
        never recirculate — it samples identically zero, which is the
        architectural claim a ledger diff against an RMT run makes
        machine-checkable.  Merge depth appears when TM1's ordered-flow
        front-end is active.
        """
        path = self.path
        probes = {
            f"{path}.recirculations": lambda now_s: self.stats.value(
                f"{path}.recirculations"
            ),
        }
        if self._merge is not None:
            probes[f"{self.tm1.path}.merge_depth"] = lambda now_s: float(
                self._merge.pending()
            )
        for port in self.tx_ports:
            probes.update(
                port.monitor_probes(label=f"{path}.tx{port.port}")
            )
        return probes

    def _emit(
        self,
        category: Category,
        name: str,
        time_s: float,
        packet: Packet | None = None,
        severity: Severity = Severity.INFO,
        **args,
    ) -> None:
        """Record a switch-level trace event when telemetry is enabled."""
        self.trace.emit(
            category,
            name,
            time_s,
            component=self.path,
            severity=severity,
            packet_id=packet.packet_id if packet is not None else None,
            **args,
        )

    # --- run loop ------------------------------------------------------------------

    def run(self, timed_packets, until: float | None = None) -> SwitchRunResult:
        """Push a time-ordered iterable of ``(time, packet)`` through.

        One run per switch instance, as with :class:`RMTSwitch`.
        """
        if self.spans is not None:
            timed_packets = self._sampled_stream(timed_packets)
        if self.trace is None:
            # Batched admission: one kernel event per distinct arrival
            # timestamp.  Equivalent to per-packet events because the
            # kernel breaks (time, priority) ties in schedule order — see
            # :func:`repro.net.traffic.batch_arrivals`.
            from ..net.traffic import batch_arrivals

            for time, burst in batch_arrivals(timed_packets):
                self._sim.at(time, self._make_burst_event(burst, time))
        else:
            for time, packet in timed_packets:
                self._schedule_ingress(packet, time)
        self._sim.run(until=until)
        return self.finalize()

    def _make_burst_event(self, burst: list[Packet], time: float):
        def event() -> None:
            self._sim.events_coalesced += len(burst) - 1
            for packet in burst:
                self._ingress_service(packet, time)

        return event

    def _sampled_stream(self, timed_packets):
        """Head-based span sampling at injection (docs/SPANS.md); keeps
        batched admission intact (see :meth:`RMTSwitch._sampled_stream`)."""
        admit = self.spans.admit
        for time, packet in timed_packets:
            admit(packet)
            yield time, packet

    def _span_service(self, packet, record, pipeline, queue_hop="ingress_queue"):
        """Record one pipeline pass's span hops for a sampled packet."""
        span = packet.meta.span
        if span is not None:
            self.spans.service(
                span,
                packet.packet_id,
                self.name,
                record.ready_time,
                record.service_start,
                pipeline.parser_latency_cycles * pipeline.cycle_s,
                record.exit_time,
                queue_hop,
            )

    def inject(self, packet: Packet, time: float) -> None:
        """Schedule one packet arrival without draining the event queue
        (fabric entry point; see :meth:`RMTSwitch.inject`)."""
        self._schedule_ingress(packet, time)

    def inject_burst(self, packets: list[Packet], time: float) -> None:
        """Schedule several same-timestamp arrivals as one kernel event
        (see :meth:`RMTSwitch.inject_burst`)."""
        self._sim.at(time, self._make_burst_event(list(packets), time))

    def finalize(self, now_s: float | None = None) -> SwitchRunResult:
        """Seal the run result once the (possibly shared) simulator drained."""
        now = self._sim.now if now_s is None else now_s
        self._result.duration_s = now
        self._result.counters = self.stats.snapshot()
        if self.telemetry is not None:
            self.telemetry.finish(now)
        return self._result

    def _schedule_ingress(self, packet: Packet, time: float) -> None:
        def event() -> None:
            self._ingress_service(packet, time)

        self._sim.at(time, event)

    # --- stations -------------------------------------------------------------------

    def _ingress_service(self, packet: Packet, ready: float) -> None:
        port = packet.meta.ingress_port
        if port is None:
            raise ConfigError("arriving packet has no ingress port")
        lane = self._pick_ingress_lane(port)
        packet.meta.lane = lane
        pipeline = self.ingress[lane]
        if self.trace is not None:
            self._emit(
                Category.PACKET,
                "packet.ingress",
                ready,
                packet,
                port=port,
                lane=lane,
            )
        record = pipeline.service(packet, ready, self._ingress_hook)
        if self.spans is not None:
            self._span_service(packet, record, pipeline)
        decision = record.decision

        for emission in decision.emissions:
            emission.meta.arrival_time = packet.meta.arrival_time
            if packet.meta.span is not None:
                emission.meta.span = packet.meta.span
            self._to_tm2(emission, record.exit_time)

        if decision.verdict is Verdict.DROP:
            self._drop(packet, decision, record.exit_time)
        elif decision.verdict is Verdict.CONSUME:
            self._result.consumed += 1
            self.counter("consumed").add()
            if self.trace is not None:
                self._emit(
                    Category.PACKET, "packet.consumed", record.exit_time, packet
                )
        elif decision.verdict is Verdict.RECIRCULATE:
            raise ConfigError(
                "ADCP programs never recirculate: route state through the "
                "central area instead"
            )
        else:
            self._offer_tm1(packet, record.exit_time)

    def _offer_tm1(self, packet: Packet, ready: float) -> None:
        """Hand a packet to TM1, through the merge front-end when active."""
        if self._merge is None or not packet.has_header("coflow"):
            self._to_tm1(packet, ready)
            return
        header = packet.header("coflow")
        if not self._merge.has_flow(header["flow_id"]):
            self._to_tm1(packet, ready)
            return
        if header["opcode"] == OP_FLUSH:
            released = self._merge.finish_flow(header["flow_id"])
            self._result.consumed += 1
            self.counter("merge_flushes").add()
            if self.trace is not None:
                self._emit(
                    Category.MERGE,
                    "merge.flush",
                    ready,
                    packet,
                    flow=header["flow_id"],
                    released=len(released),
                    depth=self._merge.pending(),
                )
        else:
            released = self._merge.offer(packet)
            if self.trace is not None:
                self._emit(
                    Category.MERGE,
                    "merge.offer",
                    ready,
                    packet,
                    flow=header["flow_id"],
                    released=len(released),
                    depth=self._merge.pending(),
                )
        if self.trace is None and len(released) > 1:
            self._to_tm1_burst(released, ready)
            return
        for ready_packet in released:
            if self.trace is not None:
                self._emit(
                    Category.MERGE, "merge.release", ready, ready_packet
                )
            self._to_tm1(ready_packet, ready)

    def _to_tm1(self, packet: Packet, ready: float) -> None:
        admitted = self.tm1.admit(packet, ready)
        if admitted is None:
            self._result.dropped.append(packet)
            self._emit_drop(packet, ready)
            return
        partition, deliver = admitted
        if self.spans is not None and packet.meta.span is not None:
            self.spans.record(
                packet.meta.span, packet.packet_id, self.name,
                "tm", ready, deliver,
            )

        def event() -> None:
            self._central_service(packet, partition, deliver)

        self._sim.at(deliver, event)

    def _to_tm1_burst(self, packets: list[Packet], ready: float) -> None:
        """Admit a same-time burst into TM1 and serve it with one event.

        Only taken untraced: accounting (admission order, drop order,
        central service order) is identical to per-packet
        :meth:`_to_tm1` calls because the releases all share ``ready``
        and the kernel would dispatch their equal-time events in
        schedule order anyway.
        """
        admitted, rejected = self.tm1.admit_burst(packets, ready)
        for packet in rejected:
            self._result.dropped.append(packet)
            self._emit_drop(packet, ready)
        if not admitted:
            return
        spans = self.spans
        if spans is not None:
            for packet, _, when in admitted:
                if packet.meta.span is not None:
                    spans.record(
                        packet.meta.span, packet.packet_id, self.name,
                        "tm", ready, when,
                    )
        deliver = admitted[0][2]
        for _, _, each in admitted:
            if each != deliver:
                # Unequal delivery times (not possible with a constant
                # TM latency, but cheap to guard): fall back to one
                # event per packet.
                for packet, partition, when in admitted:
                    self._sim.at(
                        when,
                        lambda p=packet, c=partition, w=when: (
                            self._central_service(p, c, w)
                        ),
                    )
                return

        def event() -> None:
            self._sim.events_coalesced += len(admitted) - 1
            for packet, partition, _ in admitted:
                self._central_service(packet, partition, deliver)

        self._sim.at(deliver, event)

    def _central_service(
        self, packet: Packet, partition: int, ready: float
    ) -> None:
        pipeline = self.central[partition]
        packet.meta.central_pipeline = partition
        record = pipeline.service(
            packet,
            ready,
            self._central_hook,
            enforce_width=self.app is not None,
        )
        if self.spans is not None:
            self._span_service(packet, record, pipeline, "tm")
        self.tm1.release(packet, now=record.exit_time)
        packet.meta.central_done = True
        decision = record.decision

        for emission in decision.emissions:
            emission.meta.arrival_time = packet.meta.arrival_time
            emission.meta.central_pipeline = partition
            emission.meta.central_done = True
            if packet.meta.span is not None:
                emission.meta.span = packet.meta.span
            self._to_tm2(emission, record.exit_time)

        if decision.verdict is Verdict.DROP:
            self._drop(packet, decision, record.exit_time)
        elif decision.verdict is Verdict.CONSUME:
            self._result.consumed += 1
            self.counter("consumed").add()
            if self.trace is not None:
                self._emit(
                    Category.PACKET, "packet.consumed", record.exit_time, packet
                )
        elif decision.verdict is Verdict.RECIRCULATE:
            raise ConfigError("ADCP programs never recirculate")
        else:
            self._to_tm2(packet, record.exit_time)

    def _to_tm2(self, packet: Packet, ready: float) -> None:
        if (
            self.route_resolver is not None
            and packet.meta.egress_port is None
            and not packet.meta.egress_ports
        ):
            # Fabric next-hop selection; None falls through to no_route.
            packet.meta.egress_port = self.route_resolver(packet)
        if packet.meta.egress_ports:
            deliveries = self.tm2.multicast_admit(
                packet, packet.meta.egress_ports, ready
            )
            spans = self.spans
            if spans is not None and packet.meta.span is not None:
                # Replicated copies get fresh metadata; keep them on the
                # parent's span so every multicast leg is traced.
                span = packet.meta.span
                for copy, _, deliver in deliveries:
                    copy.meta.span = span
                    spans.record(
                        span, copy.packet_id, self.name, "tm", ready, deliver
                    )
            if self.trace is None and len(deliveries) > 1:
                self._schedule_egress_burst(deliveries)
            else:
                for copy, lane, deliver in deliveries:
                    self._schedule_egress(copy, lane, deliver)
            return
        if packet.meta.egress_port is None:
            packet.meta.drop_reason = "no_route"
            self._result.dropped.append(packet)
            self.counter("no_route_drops").add()
            self._emit_drop(packet, ready)
            return
        admitted = self.tm2.admit(packet, ready)
        if admitted is None:
            self._result.dropped.append(packet)
            self._emit_drop(packet, ready)
            return
        lane, deliver = admitted
        if self.spans is not None and packet.meta.span is not None:
            self.spans.record(
                packet.meta.span, packet.packet_id, self.name,
                "tm", ready, deliver,
            )
        self._schedule_egress(packet, lane, deliver)

    def _emit_drop(self, packet: Packet, when: float) -> None:
        if self.trace is not None:
            self._emit(
                Category.PACKET,
                "packet.dropped",
                when,
                packet,
                severity=Severity.WARNING,
                reason=packet.meta.drop_reason,
            )

    def _schedule_egress_burst(self, deliveries) -> None:
        """One kernel event for a whole multicast fan-out.

        All copies of one multicast admission share a delivery time, so
        serving them in replication order inside a single event is
        dispatch-for-dispatch identical to the per-copy events the
        traced path schedules (equal-time events pop in push order).
        """
        deliver = deliveries[0][2]
        for _, _, each in deliveries:
            if each != deliver:
                for copy, lane, when in deliveries:
                    self._schedule_egress(copy, lane, when)
                return

        def event() -> None:
            self._sim.events_coalesced += len(deliveries) - 1
            for copy, lane, _ in deliveries:
                self._egress_service(copy, lane, deliver)

        self._sim.at(deliver, event)

    def _schedule_egress(self, packet: Packet, lane: int, deliver: float) -> None:
        def event() -> None:
            self._egress_service(packet, lane, deliver)

        self._sim.at(deliver, event)

    def _egress_service(self, packet: Packet, lane: int, ready: float) -> None:
        pipeline = self.egress[lane]
        packet.meta.egress_pipeline = lane
        record = pipeline.service(packet, ready, self._egress_hook)
        if self.spans is not None:
            self._span_service(packet, record, pipeline, "tm")
        self.tm2.release(packet, now=record.exit_time)
        decision = record.decision

        if decision.emissions:
            raise ConfigError(
                "ADCP egress hooks must not emit packets; emit from the "
                "central hook, where TM2 can still route them"
            )

        if decision.verdict is Verdict.DROP:
            self._drop(packet, decision, record.exit_time)
        elif decision.verdict is Verdict.CONSUME:
            self._result.consumed += 1
            self.counter("consumed").add()
            if self.trace is not None:
                self._emit(
                    Category.PACKET, "packet.consumed", record.exit_time, packet
                )
        else:
            port = packet.meta.egress_port
            assert port is not None  # TM2 routed by it
            departure = self.tx_ports[port].transmit(packet, record.exit_time)
            if self.spans is not None and packet.meta.span is not None:
                self.spans.record(
                    packet.meta.span, packet.packet_id, self.name,
                    "egress_serial", record.exit_time, departure,
                )
            self._result.delivered.append(packet)
            self.counter("delivered").add()
            if self.trace is not None:
                self._emit(
                    Category.PACKET,
                    "packet.delivered",
                    record.exit_time,
                    packet,
                    port=port,
                    lane=lane,
                    departure_s=departure,
                )
            sink = self.port_sinks.get(port)
            if sink is not None:
                sink(packet, departure)

    def _drop(
        self, packet: Packet, decision: Decision, when: float = 0.0
    ) -> None:
        packet.meta.drop_reason = decision.drop_reason or "dropped"
        self._result.dropped.append(packet)
        self._emit_drop(packet, when)
