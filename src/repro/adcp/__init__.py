"""Behavioral model of the ADCP — Application-Defined Coflow Processor.

The proposed architecture (Figure 4) makes three changes to RMT, each
modeled here:

1. **Global partitioned area** (section 3.1): a second traffic manager
   creates a bank of *central* pipelines.  TM1 places packets across them
   by an application-defined criterion (hash/range over a data element);
   TM2 then forwards results to *any* egress port.  State in the central
   area is therefore reachable from every ingress and can feed every
   egress — :class:`~repro.adcp.switch.ADCPSwitch`.
2. **Array support** (section 3.2): central (and optionally ingress/
   egress) pipeline stages gang several match-action units against shared
   table memory, retiring a whole element array per cycle —
   ``array_width`` on the pipelines, with the physical design alternatives
   in :mod:`~repro.adcp.multiclock`.
3. **Port demultiplexing** (section 3.3): each port is split 1:m across
   ingress pipelines, so pipeline clocks *fall* as port speeds rise —
   :class:`~repro.adcp.config.ADCPConfig` derives the lane frequency.

TM1's expanded scheduling semantics (order-preserving merge of sorted
flows) live in :mod:`~repro.adcp.scheduler`.
"""

from .config import ADCPConfig
from .multiclock import BankedMatMemory, MatMemoryDesign, MultiClockMatMemory
from .scheduler import FifoScheduler, KWayMergeScheduler, order_violations
from .switch import ADCPSwitch
from .traffic_manager import ApplicationTrafficManager

__all__ = [
    "ADCPConfig",
    "ADCPSwitch",
    "ApplicationTrafficManager",
    "BankedMatMemory",
    "FifoScheduler",
    "KWayMergeScheduler",
    "MatMemoryDesign",
    "MultiClockMatMemory",
    "order_violations",
]
