"""The traffic manager: a shared-memory, output-buffered switching element.

"The TM is a switching element responsible for forwarding the packet to
the pipeline to which its designated TX port is connected ... implemented
as a shared-memory area and work[ing] as an output-buffered scheduler"
(paper, section 2).  This model tracks a bounded shared buffer, admits or
drops packets, applies a fixed traversal latency, and resolves each
packet's egress pipeline from its egress port.

The ADCP reuses this class for its *second* TM and subclasses it for the
application-aware *first* TM (:mod:`repro.adcp.traffic_manager`).
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError
from ..net.packet import Packet
from ..sim.component import Component


class TrafficManager(Component):
    """Bounded shared-memory scheduler between pipeline banks.

    ``route(packet) -> int`` maps a packet to a downstream pipeline index.
    Occupancy rises on admit and falls when the caller reports the packet
    left the buffer (:meth:`release` — i.e. its downstream pipeline started
    serving it); a full buffer drops.
    """

    def __init__(
        self,
        name: str,
        parent: Component,
        route: Callable[[Packet], int],
        buffer_packets: int = 4096,
        latency_s: float = 0.0,
    ) -> None:
        super().__init__(name, parent)
        if buffer_packets < 1:
            raise ConfigError("TM buffer must hold at least one packet")
        if latency_s < 0:
            raise ConfigError("TM latency must be non-negative")
        self.route = route
        self.buffer_packets = buffer_packets
        self.latency_s = latency_s
        self.occupancy = 0
        self.peak_occupancy = 0
        self.trace = None
        """Optional :class:`~repro.telemetry.recorder.TraceRecorder`; the
        owning switch wires it when telemetry is enabled."""
        # Counter handles, bound on first use so the stats registry sees
        # the same creation order as per-call ``self.counter(...)`` lookups.
        self._admitted_counter = None
        self._drops_counter = None

    @property
    def credits(self) -> int:
        """Free buffer slots: how much admission headroom remains."""
        return self.buffer_packets - self.occupancy

    def monitor_probes(self):
        """Resource-monitor series: occupancy, headroom, high-water mark."""
        path = self.path
        return {
            f"{path}.occupancy": lambda now_s: float(self.occupancy),
            f"{path}.credits": lambda now_s: float(self.credits),
            f"{path}.peak_occupancy": lambda now_s: float(self.peak_occupancy),
        }

    def admit(
        self,
        packet: Packet,
        ready_time: float,
        pipeline: int | None = None,
    ) -> tuple[int, float] | None:
        """Try to accept a packet.

        Returns ``(egress_pipeline, deliver_time)`` on success, or None on
        a buffer-full drop (the packet's metadata records the reason).
        ``pipeline`` overrides the route function when the caller already
        knows the destination (recirculation loopbacks, pinned state).
        """
        if self.occupancy >= self.buffer_packets:
            drops = self._drops_counter
            if drops is None:
                drops = self._drops_counter = self.counter("drops")
            drops.add()
            packet.meta.drop_reason = f"{self.name}_buffer_full"
            if self.trace is not None:
                self._trace_event(
                    "tm.reject", ready_time, packet, occupancy=self.occupancy
                )
            return None
        self.occupancy += 1
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy
        admitted = self._admitted_counter
        if admitted is None:
            admitted = self._admitted_counter = self.counter("admitted")
        admitted.add()
        if pipeline is None:
            pipeline = self.route(packet)
        deliver = ready_time + self.latency_s
        if self.trace is not None:
            # deliver_s is the exact float handed back to the switch; the
            # latency profiler uses it as the TM-service span boundary.
            self._trace_event(
                "tm.admit",
                ready_time,
                packet,
                occupancy=self.occupancy,
                pipeline=pipeline,
                deliver_s=deliver,
            )
        return pipeline, deliver

    def admit_burst(
        self,
        packets: list[Packet],
        ready_time: float,
        pipeline: int | None = None,
    ) -> tuple[list[tuple[Packet, int, float]], list[Packet]]:
        """Admit a whole same-timestamp burst in stream order.

        One clock edge can deliver several packets (batched injection, a
        pipeline bank draining in lockstep); admitting them in a single
        call keeps the per-packet accounting identical to sequential
        :meth:`admit` while letting the switch schedule one kernel event
        for the burst.  Returns ``(admitted, rejected)`` where
        ``admitted`` holds ``(packet, egress_pipeline, deliver_time)``
        triples and ``rejected`` the buffer-full drops, both in stream
        order.
        """
        admitted: list[tuple[Packet, int, float]] = []
        rejected: list[Packet] = []
        for packet in packets:
            outcome = self.admit(packet, ready_time, pipeline)
            if outcome is None:
                rejected.append(packet)
            else:
                admitted.append((packet, outcome[0], outcome[1]))
        return admitted, rejected

    def release(self, packet: Packet, now: float | None = None) -> None:
        """Report that a previously admitted packet left the buffer.

        ``now`` timestamps the dequeue in the telemetry trace; accounting
        is unaffected when omitted.
        """
        if self.occupancy <= 0:
            raise ConfigError(
                f"TM {self.name!r} released more packets than it admitted"
            )
        self.occupancy -= 1
        if self.trace is not None and now is not None:
            self._trace_event(
                "tm.release", now, packet, occupancy=self.occupancy
            )

    def _trace_event(self, name: str, time_s: float, packet: Packet, **args) -> None:
        from ..telemetry.events import Category, Severity

        rejected = name == "tm.reject"
        self.trace.emit(
            Category.ADMISSION if rejected else Category.TM,
            name,
            time_s,
            component=self.path,
            severity=Severity.WARNING if rejected else Severity.INFO,
            packet_id=packet.packet_id,
            **args,
        )

    def multicast_admit(
        self, packet: Packet, ports: tuple[int, ...], ready_time: float
    ) -> list[tuple[Packet, int, float]]:
        """Replicate a packet toward several egress ports.

        Output-buffered multicast: one buffer slot per copy.  Copies that
        do not fit are dropped individually (partial delivery, as real
        shared-memory TMs behave under pressure).  Returns a list of
        ``(copy, egress_pipeline, deliver_time)``.
        """
        if not ports:
            raise ConfigError("multicast needs at least one port")
        deliveries: list[tuple[Packet, int, float]] = []
        for port in ports:
            copy = packet.copy()
            copy.meta.ingress_port = packet.meta.ingress_port
            copy.meta.arrival_time = packet.meta.arrival_time
            copy.meta.egress_port = port
            copy.meta.egress_ports = ()
            admitted = self.admit(copy, ready_time)
            if admitted is None:
                continue
            if self.trace is not None:
                # Replication severs the packet-id chain: the parent ends
                # here and each copy starts a fresh trace lineage.  The
                # linkage event lets the latency profiler extend a copy's
                # attributed lifetime back through its parent's segments.
                self._trace_event(
                    "packet.replicated",
                    ready_time,
                    copy,
                    parent_id=packet.packet_id,
                )
            pipeline, deliver = admitted
            deliveries.append((copy, pipeline, deliver))
        return deliveries
