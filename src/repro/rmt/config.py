"""RMT switch configuration."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigError
from ..net.phv import PHVLayout
from ..units import ETHERNET_MIN_WIRE_BYTES, GBPS, GHZ, pipeline_frequency


class StateMode(Enum):
    """How an RMT deployment hosts an app's cross-flow state (Figure 2).

    EGRESS_PIN: the coflow's state lives in one egress pipeline; every
    packet of the coflow is steered there.  Results can exit directly only
    through that pipeline's ports; anything else must recirculate.

    RECIRCULATE: state lives in an ingress pipeline chosen per key; packets
    arriving on other pipelines recirculate into the state pipeline's
    recirculation port before processing, paying ingress bandwidth twice.
    """

    EGRESS_PIN = "egress_pin"
    RECIRCULATE = "recirculate"


@dataclass(frozen=True)
class RMTConfig:
    """Design parameters of one RMT switch instance.

    Defaults model a 6.4 Tbps generation: 64x 100 Gbps ports, 4 pipeline
    pairs of 16 ports each, 1.25 GHz clocks (Table 2, row 2).
    """

    num_ports: int = 64
    port_speed_bps: float = 100 * GBPS
    pipelines: int = 4
    stages_per_pipeline: int = 12
    maus_per_stage: int = 16
    frequency_hz: float = 1.25 * GHZ
    min_wire_packet_bytes: float = 160.0
    phv_layout: PHVLayout = PHVLayout()
    tm_buffer_packets: int = 4096
    tm_latency_cycles: int = 8
    parser_latency_cycles: int = 4
    state_mode: StateMode = StateMode.EGRESS_PIN
    allow_recirculation: bool = True
    recirculation_ports_per_pipeline: int = 1

    def __post_init__(self) -> None:
        if self.num_ports < 1:
            raise ConfigError("switch needs at least one port")
        if self.pipelines < 1:
            raise ConfigError("switch needs at least one pipeline")
        if self.num_ports % self.pipelines != 0:
            raise ConfigError(
                f"{self.num_ports} ports do not divide into "
                f"{self.pipelines} pipelines"
            )
        if self.stages_per_pipeline < 1:
            raise ConfigError("pipelines need at least one stage")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.min_wire_packet_bytes < ETHERNET_MIN_WIRE_BYTES:
            raise ConfigError(
                f"minimum wire packet {self.min_wire_packet_bytes} B below "
                f"Ethernet floor {ETHERNET_MIN_WIRE_BYTES} B"
            )
        if self.tm_buffer_packets < 1:
            raise ConfigError("TM buffer must hold at least one packet")
        needed = self.required_frequency_hz
        if needed > self.frequency_hz * (1 + 1e-9):
            raise ConfigError(
                f"line rate needs {needed / GHZ:.3f} GHz for "
                f"{self.ports_per_pipeline} ports of "
                f"{self.port_speed_bps / GBPS:g} Gbps at "
                f"{self.min_wire_packet_bytes:g} B minimum packets, but the "
                f"pipeline clock is {self.frequency_hz / GHZ:.3f} GHz"
            )

    @property
    def ports_per_pipeline(self) -> int:
        return self.num_ports // self.pipelines

    @property
    def throughput_bps(self) -> float:
        return self.num_ports * self.port_speed_bps

    @property
    def required_frequency_hz(self) -> float:
        """Clock needed to absorb worst-case packet rate at line rate."""
        return pipeline_frequency(
            self.port_speed_bps,
            self.ports_per_pipeline,
            self.min_wire_packet_bytes,
        )

    @property
    def cycle_s(self) -> float:
        return 1.0 / self.frequency_hz

    @property
    def pipeline_latency_s(self) -> float:
        """Parser + match-action stages, in seconds."""
        cycles = self.parser_latency_cycles + self.stages_per_pipeline
        return cycles * self.cycle_s

    def pipeline_of_port(self, port: int) -> int:
        """Ingress/egress pipeline a port is physically attached to."""
        if not 0 <= port < self.num_ports:
            raise ConfigError(
                f"port {port} out of range [0, {self.num_ports})"
            )
        return port // self.ports_per_pipeline

    def ports_of_pipeline(self, pipeline: int) -> tuple[int, ...]:
        if not 0 <= pipeline < self.pipelines:
            raise ConfigError(
                f"pipeline {pipeline} out of range [0, {self.pipelines})"
            )
        start = pipeline * self.ports_per_pipeline
        return tuple(range(start, start + self.ports_per_pipeline))


def table2_config(row: int) -> RMTConfig:
    """RMT configs matching the paper's Table 2 rows (0-based index)."""
    rows = (
        dict(num_ports=64, port_speed_bps=10 * GBPS, pipelines=1,
             frequency_hz=0.952381 * GHZ, min_wire_packet_bytes=84.0),
        dict(num_ports=64, port_speed_bps=100 * GBPS, pipelines=4,
             frequency_hz=1.25 * GHZ, min_wire_packet_bytes=160.0),
        dict(num_ports=32, port_speed_bps=400 * GBPS, pipelines=4,
             frequency_hz=1.62 * GHZ, min_wire_packet_bytes=247.0),
        dict(num_ports=32, port_speed_bps=800 * GBPS, pipelines=4,
             frequency_hz=1.62 * GHZ, min_wire_packet_bytes=495.0),
        dict(num_ports=32, port_speed_bps=1600 * GBPS, pipelines=8,
             frequency_hz=1.62 * GHZ, min_wire_packet_bytes=495.0),
    )
    if not 0 <= row < len(rows):
        raise ConfigError(f"Table 2 has rows 0..{len(rows) - 1}, got {row}")
    return RMTConfig(**rows[row])  # type: ignore[arg-type]
