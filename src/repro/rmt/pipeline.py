"""Pipelines: the structural and timing heart of both switch models.

Structurally, a pipeline is a parser, a fixed ladder of stages (each with
match-action units, table memory, and register state), and a deparser.

For timing, a pipeline is a FIFO server that retires **one packet per
cycle**: a packet that becomes ready at time *t* starts service at
``max(t, server_free)``, occupies the server for one cycle, and exits after
the pipeline's fill latency (parser + stages).  This queueing abstraction
is exact for deterministic per-cycle service and keeps simulations of
billions-of-pps devices tractable in Python while preserving the paper's
architecture-level behaviour: back-pressure, pipeline saturation, and the
frequency/packet-rate coupling of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, SimulationError
from ..net.deparser import Deparser
from ..net.packet import Packet, consume_packet_id
from ..net.parser import ParseGraph, Parser
from ..net.phv import PHV, PHVLayout
from ..sim.component import Component
from ..tables.mat import MatchTable
from ..tables.memory import StageMemory
from ..tables.registers import RegisterArray
from ..arch.decision import Decision, Verdict


class Stage(Component):
    """One match-action stage: MAUs plus its memory pool."""

    def __init__(
        self,
        index: int,
        parent: Component,
        mau_count: int = 16,
        memory: StageMemory | None = None,
    ) -> None:
        super().__init__(f"stage{index}", parent)
        if mau_count < 1:
            raise ConfigError("stage needs at least one MAU")
        self.index = index
        self.mau_count = mau_count
        self.memory = memory or StageMemory()


#: Shared verdict for hookless services.  No caller mutates a plain
#: forwarding decision (emissions stay empty, verdict/reason are read
#: only), so one instance serves every pure-forwarding packet.
_FORWARD_DECISION = Decision(Verdict.FORWARD, [])


@dataclass(slots=True)
class ServiceRecord:
    """Timing of one packet's trip through a pipeline."""

    ready_time: float
    service_start: float
    exit_time: float
    decision: Decision

    @property
    def queueing_delay(self) -> float:
        return self.service_start - self.ready_time


class PipelineRuntimeContext:
    """The :class:`~repro.arch.app.PipelineContext` a hook receives.

    Wraps one pipeline; exposes only that pipeline's registers and tables.
    ``now`` is stamped by the pipeline at each service.
    """

    def __init__(self, pipeline: "Pipeline") -> None:
        self._pipeline = pipeline
        self.now = 0.0

    @property
    def pipeline_index(self) -> int:
        return self._pipeline.index

    @property
    def region(self) -> str:
        return self._pipeline.region

    @property
    def array_width(self) -> int:
        return self._pipeline.array_width

    @property
    def attached_ports(self) -> tuple[int, ...]:
        return self._pipeline.attached_ports

    def register(self, name: str, size: int, width_bits: int = 32) -> RegisterArray:
        return self._pipeline.get_register(name, size, width_bits)

    def table(self, name: str) -> MatchTable:
        return self._pipeline.get_table(name)


class Pipeline(Component):
    """A parser + stage ladder + deparser with per-cycle FIFO service.

    Attributes:
        index: Pipeline number within its region.
        region: ``"ingress"``, ``"central"``, or ``"egress"``.
        frequency_hz: Clock; the service rate is one packet per cycle.
        attached_ports: Ports wired to this pipeline (empty for central).
        array_width: Parallel lookups a stage supports (1 = scalar RMT).
    """

    def __init__(
        self,
        index: int,
        region: str,
        frequency_hz: float,
        parent: Component,
        stages: int = 12,
        maus_per_stage: int = 16,
        attached_ports: tuple[int, ...] = (),
        array_width: int = 1,
        parser_latency_cycles: int = 4,
        phv_layout: PHVLayout | None = None,
        parse_graph: ParseGraph | None = None,
    ) -> None:
        super().__init__(f"{region}{index}", parent)
        if frequency_hz <= 0:
            raise ConfigError("pipeline frequency must be positive")
        if stages < 1:
            raise ConfigError("pipeline needs at least one stage")
        if array_width < 1:
            raise ConfigError("array width must be >= 1")
        self.index = index
        self.region = region
        self.frequency_hz = frequency_hz
        self.attached_ports = attached_ports
        self.array_width = array_width
        self.parser_latency_cycles = parser_latency_cycles
        self.stages = [Stage(i, self, maus_per_stage) for i in range(stages)]
        graph = parse_graph or ParseGraph.standard_coflow_graph(
            max_elements=max(array_width, 16)
        )
        self.parser = Parser(graph, phv_layout, array_capable=True)
        self.deparser = Deparser()
        self._registers: dict[str, RegisterArray] = {}
        self._tables: dict[str, MatchTable] = {}
        self._free_at = 0.0
        self._busy_s = 0.0
        # Per-service timing constants; the frequency and stage ladder
        # are fixed at construction, so hoist the divisions out of the
        # service loop.
        self._cycle_s = 1.0 / frequency_hz
        self._latency_s = (parser_latency_cycles + stages) * self._cycle_s
        # Per-service stat handles, bound on first use so the stats
        # registry keeps the seed's creation order (packets and elements
        # are always created together; the histogram first appears when
        # an accepted packet reaches the delay observation).
        self._svc_counters = None
        self._delay_hist = None
        self.context = PipelineRuntimeContext(self)
        self.trace = None
        """Optional :class:`~repro.telemetry.recorder.TraceRecorder`; the
        owning switch wires it when telemetry is enabled."""

    # --- resources ---------------------------------------------------------------

    @property
    def cycle_s(self) -> float:
        return self._cycle_s

    @property
    def latency_s(self) -> float:
        """Fill latency: parser plus one cycle per stage."""
        return self._latency_s

    def get_register(self, name: str, size: int, width_bits: int = 32) -> RegisterArray:
        """Get or lazily create a register array local to this pipeline."""
        if name not in self._registers:
            self._registers[name] = RegisterArray(
                f"{self.path}.{name}", size, width_bits
            )
        register = self._registers[name]
        if register.size != size:
            raise ConfigError(
                f"register {name!r} exists with size {register.size}, "
                f"requested {size}"
            )
        return register

    def install_table(self, table: MatchTable) -> None:
        if table.name in self._tables:
            raise ConfigError(
                f"pipeline {self.path} already has table {table.name!r}"
            )
        self._tables[table.name] = table

    def get_table(self, name: str) -> MatchTable:
        if name not in self._tables:
            raise ConfigError(f"pipeline {self.path} has no table {name!r}")
        return self._tables[name]

    @property
    def registers(self) -> dict[str, RegisterArray]:
        return dict(self._registers)

    # --- timing + functional service ----------------------------------------------

    def service(
        self,
        packet: Packet,
        ready_time: float,
        hook,
        enforce_width: bool = False,
    ) -> ServiceRecord:
        """Run one packet through the pipeline.

        ``hook(ctx, packet, phv) -> Decision`` is the application logic for
        this region (or None for pure forwarding).  Functionally the packet
        is parsed, the hook runs, and modified fields are deparsed back.
        Timing-wise the packet occupies the server for exactly one cycle.

        ``enforce_width`` is set by the switch when the hook performs
        *stateful* per-element processing: a scalar pipeline physically
        cannot feed k elements of one packet through a stateful register in
        one pass (section 2, issue 2), so such a packet reaching a stateful
        hook is a planning bug and raises.
        """
        if ready_time < 0:
            raise SimulationError(f"negative ready time {ready_time}")
        start = max(ready_time, self._free_at)
        cycle_s = self._cycle_s
        self._free_at = start + cycle_s
        self._busy_s += cycle_s
        exit_time = start + self._latency_s

        if hook is None and self.trace is None:
            # Pure-forwarding fast path: no hook can read or write the
            # PHV and no span is recorded, so the accept/reject walk is
            # all that is observable — skip parse/deparse entirely.
            # Counters, width enforcement, and the queueing-delay
            # histogram update in the same order as the full path.
            accepted = self.parser.accepts(packet)
            counters = self._svc_counters
            if counters is None:
                counters = self._svc_counters = (
                    self.counter("packets"),
                    self.counter("elements"),
                )
            counters[0].add()
            counters[1].add(packet.element_count)
            if not accepted:
                self.counter("parse_rejects").add()
                return ServiceRecord(
                    ready_time, start, exit_time, Decision.drop("parse_reject")
                )
            if enforce_width and packet.element_count > self.array_width:
                raise SimulationError(
                    f"{self.path}: packet with {packet.element_count} "
                    f"elements reached a stateful hook on a width-"
                    f"{self.array_width} pipeline; the workload must be "
                    f"restructured to scalar packets on this target"
                )
            # The full path's deparse builds a transient Packet, which
            # draws one global packet id; draw it here too so id
            # assignment is identical with and without instrumentation.
            consume_packet_id()
            self.deparser.packets_deparsed += 1
            record = ServiceRecord(
                ready_time, start, exit_time, _FORWARD_DECISION
            )
            hist = self._delay_hist
            if hist is None:
                hist = self._delay_hist = self.histogram("queueing_delay_s")
            hist.observe(start - ready_time)
            return record

        if self.trace is None:
            # Untraced hook path: take the verdict (and the parser's
            # accounting) from the walk, and hand the hook a PHV that
            # only materializes its containers if touched.  Hooks that
            # work off the packet alone never pay for allocation.
            accepted = self.parser.accepts(packet)
            phv = self.parser.lazy_phv(packet)
        else:
            result = self.parser.parse(packet)
            accepted = result.accepted
            phv = result.phv
        counters = self._svc_counters
        if counters is None:
            counters = self._svc_counters = (
                self.counter("packets"),
                self.counter("elements"),
            )
        counters[0].add()
        counters[1].add(packet.element_count)
        if not accepted:
            self.counter("parse_rejects").add()
            decision = Decision.drop("parse_reject")
            record = ServiceRecord(ready_time, start, exit_time, decision)
            if self.trace is not None:
                self._trace_service(packet, record)
            return record

        if enforce_width and packet.element_count > self.array_width:
            raise SimulationError(
                f"{self.path}: packet with {packet.element_count} elements "
                f"reached a stateful hook on a width-{self.array_width} "
                f"pipeline; the workload must be restructured to scalar "
                f"packets on this target"
            )

        if hook is None:
            decision = _FORWARD_DECISION
        else:
            self.context.now = start
            decision = hook(self.context, packet, phv)
            decision.validate()

        if phv._dirty:
            deparsed = self.deparser.deparse(phv, packet)
            # Propagate in-place so the caller's reference stays valid.
            packet.headers = deparsed.headers
            packet.payload = deparsed.payload
        else:
            # Every hook-facing PHV mutator sets ``_dirty``; a clean PHV
            # deparses to a packet equal to the original, so skip the
            # rebuild while keeping the id draw and the deparse count
            # identical to the rebuilt path.
            consume_packet_id()
            self.deparser.packets_deparsed += 1

        if phv.get_meta("drop"):
            decision = Decision.drop(str(phv.get_meta("drop_reason")))
        if decision.verdict is Verdict.DROP:
            self.counter("drops").add()
        record = ServiceRecord(ready_time, start, exit_time, decision)
        hist = self._delay_hist
        if hist is None:
            hist = self._delay_hist = self.histogram("queueing_delay_s")
        hist.observe(record.queueing_delay)
        if self.trace is not None:
            self._trace_service(packet, record)
        return record

    def _trace_service(self, packet: Packet, record: ServiceRecord) -> None:
        """Record one service as a span event, plus per-stage detail when
        the recorder opted into the verbose ``STAGE`` category."""
        from ..telemetry.events import Category, Severity

        # ready_s/exit_s/parse_s are the exact floats of this pass's
        # queue-enter, pipeline-exit, and parser-phase boundaries.  The
        # latency profiler tiles a packet's lifetime from these spans, so
        # boundaries must be passed through verbatim rather than
        # re-derived downstream (start + duration need not equal exit_s
        # bit-for-bit under IEEE rounding).
        self.trace.emit(
            Category.PIPELINE,
            "pipeline.service",
            record.service_start,
            component=self.path,
            packet_id=packet.packet_id,
            duration_s=record.exit_time - record.service_start,
            region=self.region,
            verdict=record.decision.verdict.name,
            queueing_delay_s=record.queueing_delay,
            elements=packet.element_count,
            ready_s=record.ready_time,
            exit_s=record.exit_time,
            parse_s=self.parser_latency_cycles * self.cycle_s,
            stages=len(self.stages),
        )
        if self.trace.wants(Category.STAGE, Severity.DEBUG):
            enter = record.service_start + (
                self.parser_latency_cycles * self.cycle_s
            )
            for stage in self.stages:
                self.trace.emit(
                    Category.STAGE,
                    "stage.execute",
                    enter,
                    component=f"{self.path}.{stage.name}",
                    severity=Severity.DEBUG,
                    packet_id=packet.packet_id,
                    duration_s=self.cycle_s,
                    maus=stage.mau_count,
                )
                enter += self.cycle_s

    def utilization(self, horizon_s: float) -> float:
        """Fraction of the horizon this pipeline spent serving packets."""
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        return min(1.0, self._busy_s / horizon_s)

    def backlog_s(self, now_s: float) -> float:
        """Committed service time beyond ``now_s``: the FIFO queue depth,
        in seconds, that the next arriving packet would wait."""
        return max(0.0, self._free_at - now_s)

    def monitor_probes(self):
        """Resource-monitor series for this pipeline.

        Registers and tables are created lazily as the app touches them,
        so the state/MAT probes iterate the live dicts at sample time —
        the *series names* stay fixed while the underlying set grows.
        """
        path = self.path
        return {
            f"{path}.utilization": lambda now_s: (
                min(1.0, self._busy_s / now_s) if now_s > 0 else 0.0
            ),
            f"{path}.backlog_s": self.backlog_s,
            f"{path}.state_accesses": lambda now_s: float(
                sum(r.access_count for r in self._registers.values())
            ),
            f"{path}.mat_lookups": lambda now_s: float(
                sum(t.access_count for t in self._tables.values())
            ),
            f"{path}.mat_entries": lambda now_s: float(
                sum(len(t) for t in self._tables.values())
            ),
            f"{path}.mem_blocks_claimed": lambda now_s: float(
                sum(s.memory.claimed_total() for s in self.stages)
            ),
        }

    @property
    def busy_seconds(self) -> float:
        return self._busy_s

    @property
    def next_free(self) -> float:
        return self._free_at
