"""Behavioral model of the classic RMT switch architecture (Figure 1).

Structure: ``n`` ports are multiplexed ``n/p`` to a pipeline; ingress
pipelines feed a shared-memory traffic manager, which forwards to the
egress pipeline owning each packet's TX port.  Stateful resources live
*inside* pipelines, so coflow state is pinned to wherever its ports (or its
chosen egress pipeline) happen to be — issues (1), (2), and (3) of the paper
all fall out of this structure:

- State reachable only via port-determined pipelines -> egress pinning or
  recirculation (:class:`~repro.rmt.switch.RMTSwitch` models both).
- Scalar match-action units -> stateful tables force 1 element per packet;
  stateless tables replicate per parallel key
  (:class:`~repro.rmt.pipeline.Pipeline` with ``array_width=1``).
- One packet per cycle per pipeline -> the Table 2 frequency wall
  (:mod:`repro.analytical.scaling`).
"""

from .config import RMTConfig, StateMode
from .pipeline import Pipeline, PipelineRuntimeContext, Stage
from .switch import RMTSwitch, SwitchRunResult
from .traffic_manager import TrafficManager

__all__ = [
    "Pipeline",
    "PipelineRuntimeContext",
    "RMTConfig",
    "RMTSwitch",
    "Stage",
    "StateMode",
    "SwitchRunResult",
    "TrafficManager",
]
