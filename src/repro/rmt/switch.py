"""The RMT switch: ports, pipelines, TM, and the coflow workarounds.

Packet lifecycle (Figure 1): RX port -> ingress pipeline (the one the port
is multiplexed into) -> traffic manager -> egress pipeline (the one the TX
port lives on) -> TX port.

Stateful coflow applications do not fit that lifecycle, and this model
implements both published workarounds so experiments can price them:

- **Egress pinning** (:attr:`StateMode.EGRESS_PIN`): all packets of a
  coflow are steered to one egress pipeline where the state lives.
  Results whose destination port is attached there exit directly; any
  other destination requires recirculation (or is unreachable when
  recirculation is disabled) — the Figure 2 limitation.
- **Recirculation to state** (:attr:`StateMode.RECIRCULATE`): state lives
  in an ingress pipeline chosen by key hash; packets arriving on the wrong
  pipeline cross the TM, loop back through a recirculation port, and pay a
  second ingress pass — the bandwidth tax the paper cites.

Stateful processing also forces **scalar packets**: a packet carrying more
than one element cannot pass a stateful hook on a width-1 pipeline (the
run refuses at admission), so workloads must be restructured to one
element per packet, which is how RMT loses the Figure 6 key-rate race.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.app import SwitchApp
from ..arch.decision import Decision, Verdict
from ..arch.port import TxPort
from ..errors import CompileError, ConfigError
from ..net.packet import Packet
from ..net.traffic import batch_arrivals
from ..sim.component import Component
from ..sim.event import Simulator
from ..sim.rng import stable_hash64
from ..telemetry.events import Category, Severity
from .config import RMTConfig, StateMode
from .pipeline import Pipeline
from .traffic_manager import TrafficManager


@dataclass
class SwitchRunResult:
    """Everything a run produces, for assertions and reports."""

    delivered: list[Packet] = field(default_factory=list)
    dropped: list[Packet] = field(default_factory=list)
    consumed: int = 0
    recirculated_packets: int = 0
    recirculated_wire_bytes: int = 0
    unreachable_emissions: int = 0
    duration_s: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def delivered_count(self) -> int:
        return len(self.delivered)

    @property
    def delivered_wire_bytes(self) -> int:
        return sum(p.wire_bytes for p in self.delivered)

    @property
    def delivered_goodput_bytes(self) -> int:
        return sum(p.goodput_bytes for p in self.delivered)

    @property
    def delivered_elements(self) -> int:
        return sum(p.element_count for p in self.delivered)

    def delivered_to(self, port: int) -> list[Packet]:
        return [p for p in self.delivered if p.meta.egress_port == port]

    def last_departure(self) -> float:
        if not self.delivered:
            raise ConfigError("no packets were delivered")
        return max(p.meta.departure_time for p in self.delivered)


class RMTSwitch(Component):
    """Executable model of a classic RMT switch.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) is opt-in: when
    omitted every instrumentation site reduces to one None check, so an
    untraced run behaves byte-identically to one built before telemetry
    existed.
    """

    def __init__(
        self,
        config: RMTConfig,
        app: SwitchApp | None = None,
        telemetry=None,
        sim: Simulator | None = None,
        name: str = "rmt",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.app = app
        self.telemetry = telemetry
        self.trace = None
        self.spans = None
        if (
            app is not None
            and app.uses_central_state()
            and app.elements_per_packet > 1
        ):
            raise CompileError(
                f"app {app.name!r} keeps cross-flow state and packs "
                f"{app.elements_per_packet} elements per packet; RMT's "
                f"scalar match-action units require stateful workloads to "
                f"use one element per packet (restructure the packet "
                f"format, as section 2 issue 2 describes)"
            )
        self.ingress = [
            Pipeline(
                i,
                "ingress",
                config.frequency_hz,
                self,
                stages=config.stages_per_pipeline,
                maus_per_stage=config.maus_per_stage,
                attached_ports=config.ports_of_pipeline(i),
                parser_latency_cycles=config.parser_latency_cycles,
                phv_layout=config.phv_layout,
            )
            for i in range(config.pipelines)
        ]
        self.egress = [
            Pipeline(
                i,
                "egress",
                config.frequency_hz,
                self,
                stages=config.stages_per_pipeline,
                maus_per_stage=config.maus_per_stage,
                attached_ports=config.ports_of_pipeline(i),
                parser_latency_cycles=config.parser_latency_cycles,
                phv_layout=config.phv_layout,
            )
            for i in range(config.pipelines)
        ]
        self.tm = TrafficManager(
            "tm",
            self,
            route=self._egress_pipeline_of_packet,
            buffer_packets=config.tm_buffer_packets,
            latency_s=config.tm_latency_cycles / config.frequency_hz,
        )
        self.tx_ports = [
            TxPort(p, config.port_speed_bps) for p in range(config.num_ports)
        ]
        self.recirc_ports = [
            TxPort(
                config.num_ports + i,
                config.port_speed_bps * config.recirculation_ports_per_pipeline,
            )
            for i in range(config.pipelines)
        ]
        self._sim = sim if sim is not None else Simulator()
        self._result = SwitchRunResult()
        self.port_sinks = {}
        """Optional per-port delivery hooks: ``{port: fn(packet, departure_s)}``.

        A fabric registers its :class:`~repro.fabric.link.Link` objects
        here so a transmitted packet continues to the next switch (or a
        host NIC) instead of leaving the simulated world.  The packet is
        still counted as delivered by *this* switch first.
        """
        self.route_resolver = None
        """Optional ``fn(packet) -> port | None`` consulted for unrouted
        unicast packets before TM admission (fabric next-hop selection)."""
        if telemetry is not None:
            telemetry.bind(self)
            # Sampled spans ride outside the trace path: the recorder is
            # consulted per packet with one None check, so the switch
            # keeps the ``trace is None`` fast paths (docs/SPANS.md).
            self.spans = getattr(telemetry, "spans", None)
            # A recorder disabled at construction skips trace wiring
            # entirely, so such a hub costs the same as passing none
            # (metrics/snapshots still work; re-enabling later has no
            # effect on this switch).
            if telemetry.trace.enabled:
                trace = telemetry.trace
                self.trace = trace
                for pipeline in self.ingress + self.egress:
                    pipeline.trace = trace
                self.tm.trace = trace
                for port in self.tx_ports + self.recirc_ports:
                    port.trace = trace
                self._sim.trace = trace
        if app is not None:
            app.bind_placement(config.pipelines)
        # Hook elision: a hook the app never overrode is the base-class
        # pass-through (``Decision.forward()`` touching nothing), which the
        # pipeline treats as None and services on its no-PHV fast path.
        # The central hook is never elided this way for width enforcement:
        # ``enforce_width`` is passed independently of the hook.
        self._ingress_hook = self._elide_hook("ingress")
        self._egress_hook = self._elide_hook("egress")
        self._central_hook = self._elide_hook("central")
        self._uses_central = app is not None and app.uses_central_state()

    def _elide_hook(self, region: str):
        app = self.app
        if app is None:
            return None
        if getattr(type(app), region) is getattr(SwitchApp, region):
            return None
        return getattr(app, region)

    # --- topology helpers ---------------------------------------------------------

    def _egress_pipeline_of_packet(self, packet: Packet) -> int:
        port = packet.meta.egress_port
        if port is None:
            raise ConfigError("packet reached the TM without an egress port")
        return self.config.pipeline_of_port(port)

    def state_pipeline_of_key(self, key: int) -> int:
        """Pipeline hosting the state partition for a key.

        Uses the app's placement policy when one is bound (the app defined
        the partitioning criteria), falling back to hash placement.
        """
        if self.app is not None and self.app.placement_policy is not None:
            return self.app.placement_policy.place(key)
        return stable_hash64(key) % self.config.pipelines

    # --- telemetry ----------------------------------------------------------------

    def monitor_probes(self):
        """Switch-level resource-monitor series.

        Ports are not :class:`~repro.sim.component.Component` nodes, so
        their probes are contributed here; the recirculation series are
        the §2 bandwidth-tax view — cumulative loop count plus the
        committed backlog on the loopback ports (loop depth in seconds).
        """
        path = self.path
        probes = {
            f"{path}.recirculations": lambda now_s: self.stats.value(
                f"{path}.recirculations"
            ),
            f"{path}.recirc_backlog_s": lambda now_s: sum(
                loop.backlog_s(now_s) for loop in self.recirc_ports
            ),
        }
        for port in self.tx_ports:
            probes.update(
                port.monitor_probes(label=f"{path}.tx{port.port}")
            )
        for index, loop in enumerate(self.recirc_ports):
            probes.update(
                loop.monitor_probes(label=f"{path}.recirc{index}")
            )
        return probes

    def _emit(
        self,
        category: Category,
        name: str,
        time_s: float,
        packet: Packet | None = None,
        severity: Severity = Severity.INFO,
        **args,
    ) -> None:
        """Record a switch-level trace event when telemetry is enabled."""
        self.trace.emit(
            category,
            name,
            time_s,
            component=self.path,
            severity=severity,
            packet_id=packet.packet_id if packet is not None else None,
            **args,
        )

    # --- run loop -----------------------------------------------------------------

    def run(self, timed_packets, until: float | None = None) -> SwitchRunResult:
        """Push a time-ordered iterable of ``(time, packet)`` through.

        Returns the accumulated :class:`SwitchRunResult`.  ``run`` may be
        called once per switch instance; construct a fresh switch per
        experiment so state and stats start clean.
        """
        if self.spans is not None:
            timed_packets = self._sampled_stream(timed_packets)
        if self.trace is None:
            # Batched admission: one kernel event per distinct arrival
            # timestamp, servicing the whole burst in stream order.  All
            # injections carry the default event priority and the kernel
            # breaks (time, priority) ties in schedule order, so this
            # dispatches identically to one event per packet.  Traced
            # runs keep per-packet events so span streams are unchanged.
            for time, burst in batch_arrivals(timed_packets):
                self._sim.at(time, self._make_burst_event(burst, time))
        else:
            for time, packet in timed_packets:
                self.inject(packet, time)
        self._sim.run(until=until)
        return self.finalize()

    def inject(self, packet: Packet, time: float) -> None:
        """Schedule one packet arrival without draining the event queue.

        A fabric pre-loads host arrivals and feeds link handoffs through
        this; the shared simulator is drained once by the fabric runner,
        after which each switch is :meth:`finalize`-d.
        """
        self._sim.at(time, self._make_ingress_event(packet, time))

    def inject_burst(self, packets: list[Packet], time: float) -> None:
        """Schedule several same-timestamp arrivals as one kernel event.

        The burst is serviced in list order, which matches the dispatch
        order per-packet :meth:`inject` calls would produce (equal-time
        events pop in push order).  Callers with tracing enabled should
        keep per-packet injection so span streams are unchanged.
        """
        self._sim.at(time, self._make_burst_event(list(packets), time))

    def finalize(self, now_s: float | None = None) -> SwitchRunResult:
        """Seal the run result once the (possibly shared) simulator drained."""
        now = self._sim.now if now_s is None else now_s
        self._result.duration_s = now
        self._result.counters = self.stats.snapshot()
        if self.telemetry is not None:
            self.telemetry.finish(now)
        return self._result

    def _sampled_stream(self, timed_packets):
        """Head-based span sampling at injection (docs/SPANS.md).

        Wrapping the arrival stream keeps batched admission intact: the
        sampling decision is per packet, but the kernel still sees one
        event per distinct timestamp.
        """
        admit = self.spans.admit
        for time, packet in timed_packets:
            admit(packet)
            yield time, packet

    def _span_service(self, packet, record, pipeline, queue_hop="ingress_queue"):
        """Record one pipeline pass's span hops for a sampled packet."""
        span = packet.meta.span
        if span is not None:
            self.spans.service(
                span,
                packet.packet_id,
                self.name,
                record.ready_time,
                record.service_start,
                pipeline.parser_latency_cycles * pipeline.cycle_s,
                record.exit_time,
                queue_hop,
            )

    def _make_ingress_event(self, packet: Packet, time: float):
        def event() -> None:
            self._ingress_service(packet, time)

        return event

    def _make_burst_event(self, burst: list[Packet], time: float):
        def event() -> None:
            self._sim.events_coalesced += len(burst) - 1
            for packet in burst:
                self._ingress_service(packet, time)

        return event

    # --- ingress ------------------------------------------------------------------

    def _ingress_service(self, packet: Packet, ready: float) -> None:
        port = packet.meta.ingress_port
        if port is None:
            raise ConfigError("arriving packet has no ingress port")
        pipeline = self.ingress[self.config.pipeline_of_port(port)]
        if self.trace is not None:
            self._emit(
                Category.PACKET,
                "packet.ingress",
                ready,
                packet,
                port=port,
                pipeline=pipeline.index,
                recirculations=packet.meta.recirculations,
            )

        app = self.app
        hook = None
        enforce = False
        runs_central_here = False
        if app is not None and not packet.meta.dropped:
            if (
                self._uses_central
                and self.config.state_mode is StateMode.RECIRCULATE
                and not self._central_done(packet)
                and app.claims(packet)
            ):
                state_pipe = self.state_pipeline_of_key(app.placement_key(packet))
                if pipeline.index == state_pipe:
                    hook = self._central_hook
                    enforce = True
                    runs_central_here = True
                else:
                    # Wrong pipeline: one plain ingress pass, then loop
                    # around through the state pipeline's recirc port.
                    record = pipeline.service(packet, ready, self._ingress_hook)
                    if self.spans is not None:
                        self._span_service(packet, record, pipeline)
                    if record.decision.verdict is Verdict.DROP:
                        self._drop(packet, record.decision, record.exit_time)
                        return
                    self._recirculate_to(packet, state_pipe, record.exit_time)
                    return
            else:
                hook = self._ingress_hook

        record = pipeline.service(packet, ready, hook, enforce_width=enforce)
        if self.spans is not None:
            self._span_service(packet, record, pipeline)
        if runs_central_here:
            self._mark_central_done(packet)
        self._apply_decision(
            packet, record.decision, record.exit_time, region="ingress"
        )

    # --- recirculation --------------------------------------------------------------

    def _recirculate_to(self, packet: Packet, pipeline: int, ready: float) -> None:
        """Route a packet to ``pipeline``'s ingress via TM + loopback port."""
        if not self.config.allow_recirculation:
            self._result.unreachable_emissions += 1
            packet.meta.drop_reason = "recirculation_disabled"
            self._result.dropped.append(packet)
            self.counter("unreachable").add()
            if self.trace is not None:
                self._emit(
                    Category.ADMISSION,
                    "packet.dropped",
                    ready,
                    packet,
                    severity=Severity.ERROR,
                    reason="recirculation_disabled",
                )
            return
        admitted = self.tm.admit(packet, ready, pipeline=pipeline)
        if admitted is None:
            self._result.dropped.append(packet)
            if self.trace is not None:
                self._emit(
                    Category.PACKET,
                    "packet.dropped",
                    ready,
                    packet,
                    severity=Severity.WARNING,
                    reason=packet.meta.drop_reason,
                )
            return
        _, deliver = admitted
        spans = self.spans
        span = packet.meta.span if spans is not None else None
        if span is not None:
            spans.record(span, packet.packet_id, self.name, "tm", ready, deliver)
        egress = self.egress[pipeline]
        record = egress.service(packet, deliver, None)
        if spans is not None:
            self._span_service(packet, record, egress, "tm")
        self.tm.release(packet, now=record.exit_time)
        loop = self.recirc_ports[pipeline]
        re_arrival = loop.transmit(packet, record.exit_time)
        if span is not None:
            spans.record(
                span,
                packet.packet_id,
                self.name,
                "egress_serial",
                record.exit_time,
                re_arrival,
            )
        packet.meta.recirculations += 1
        self._result.recirculated_packets += 1
        self._result.recirculated_wire_bytes += packet.wire_bytes
        self.counter("recirculations").add()
        if self.trace is not None:
            self._emit(
                Category.RECIRC,
                "packet.recirculated",
                ready,
                packet,
                pipeline=pipeline,
                pass_number=packet.meta.recirculations,
                re_arrival_s=re_arrival,
                wire_bytes=packet.wire_bytes,
            )
        # Re-enter through the loopback: same pipeline's ingress.
        packet.meta.ingress_port = self.config.ports_of_pipeline(pipeline)[0]
        self._sim.at(re_arrival, self._make_ingress_event(packet, re_arrival))

    # --- decision handling -----------------------------------------------------------

    def _apply_decision(
        self, packet: Packet, decision: Decision, ready: float, region: str
    ) -> None:
        for emission in decision.emissions:
            emission.meta.arrival_time = packet.meta.arrival_time
            emission.meta.ingress_port = packet.meta.ingress_port
            if packet.meta.span is not None:
                emission.meta.span = packet.meta.span
            self._mark_central_done(emission)
            self._to_traffic_manager(emission, ready, from_region=region)

        if decision.verdict is Verdict.DROP:
            self._drop(packet, decision, ready)
        elif decision.verdict is Verdict.CONSUME:
            self._result.consumed += 1
            self.counter("consumed").add()
            if self.trace is not None:
                self._emit(Category.PACKET, "packet.consumed", ready, packet)
        elif decision.verdict is Verdict.RECIRCULATE:
            if self.app is None:
                raise ConfigError("recirculate verdict requires an app")
            state_pipe = self.state_pipeline_of_key(
                self.app.placement_key(packet)
            )
            self._recirculate_to(packet, state_pipe, ready)
        else:
            self._to_traffic_manager(packet, ready, from_region=region)

    def _drop(
        self, packet: Packet, decision: Decision, when: float = 0.0
    ) -> None:
        packet.meta.drop_reason = decision.drop_reason or "dropped"
        self._result.dropped.append(packet)
        if self.trace is not None:
            self._emit(
                Category.PACKET,
                "packet.dropped",
                when,
                packet,
                severity=Severity.WARNING,
                reason=packet.meta.drop_reason,
            )

    # --- TM + egress -----------------------------------------------------------------

    def _to_traffic_manager(
        self, packet: Packet, ready: float, from_region: str
    ) -> None:
        if (
            self.route_resolver is not None
            and packet.meta.egress_port is None
            and not packet.meta.egress_ports
        ):
            # Fabric next-hop selection; None leaves the packet to the
            # local steering path (state packets) or the no_route drop.
            packet.meta.egress_port = self.route_resolver(packet)
        if from_region == "egress":
            # Emissions born in an egress pipeline cannot re-enter the TM
            # directly; they must loop around (Figure 2's restriction).
            source_pipe = packet.meta.egress_pipeline
            if packet.meta.egress_ports:
                # Multicast needs the TM's replication engine: always loop.
                if source_pipe is None:
                    raise ConfigError("egress emission without a pipeline")
                self._recirculate_to(packet, source_pipe, ready)
                return
            target_port = packet.meta.egress_port
            if target_port is None:
                raise ConfigError("egress emission without an egress port")
            if source_pipe is not None and self.config.pipeline_of_port(
                target_port
            ) != source_pipe:
                self._recirculate_to(packet, source_pipe, ready)
                return
            # Destination is attached to this very pipeline: short path to TX.
            self._transmit(packet, ready)
            return

        if packet.meta.egress_ports:
            deliveries = self.tm.multicast_admit(
                packet, packet.meta.egress_ports, ready
            )
            spans = self.spans
            if spans is not None and packet.meta.span is not None:
                # Replicated copies get fresh metadata; keep them on the
                # parent's span so every multicast leg is traced.
                span = packet.meta.span
                for copy, _, deliver in deliveries:
                    copy.meta.span = span
                    spans.record(
                        span, copy.packet_id, self.name, "tm", ready, deliver
                    )
            if self.trace is None and len(deliveries) > 1:
                # All copies of one multicast admission share a deliver
                # time (same ready, same TM latency), so one kernel event
                # services the burst in replication order — identical
                # dispatch order to the per-copy events it replaces.
                self._schedule_egress_burst(deliveries)
            else:
                for copy, pipeline, deliver in deliveries:
                    self._schedule_egress(copy, pipeline, deliver)
            return

        if (
            self._uses_central
            and self.config.state_mode is StateMode.EGRESS_PIN
            and not self._central_done(packet)
            and self.app.claims(packet)
        ):
            # Steer to the state pipeline regardless of destination port.
            state_pipe = self.state_pipeline_of_key(
                self.app.placement_key(packet)
            )
            admitted = self.tm.admit(packet, ready, pipeline=state_pipe)
            if admitted is None:
                self._result.dropped.append(packet)
                self._emit_tm_drop(packet, ready)
                return
            _, deliver = admitted
            if self.spans is not None and packet.meta.span is not None:
                self.spans.record(
                    packet.meta.span, packet.packet_id, self.name,
                    "tm", ready, deliver,
                )
            self._schedule_egress(
                packet, state_pipe, deliver, run_central=True
            )
            return

        if packet.meta.egress_port is None:
            packet.meta.drop_reason = "no_route"
            self._result.dropped.append(packet)
            self.counter("no_route_drops").add()
            self._emit_tm_drop(packet, ready)
            return
        admitted = self.tm.admit(packet, ready)
        if admitted is None:
            self._result.dropped.append(packet)
            self._emit_tm_drop(packet, ready)
            return
        pipeline, deliver = admitted
        if self.spans is not None and packet.meta.span is not None:
            self.spans.record(
                packet.meta.span, packet.packet_id, self.name,
                "tm", ready, deliver,
            )
        self._schedule_egress(packet, pipeline, deliver)

    def _emit_tm_drop(self, packet: Packet, when: float) -> None:
        if self.trace is not None:
            self._emit(
                Category.PACKET,
                "packet.dropped",
                when,
                packet,
                severity=Severity.WARNING,
                reason=packet.meta.drop_reason,
            )

    def _schedule_egress(
        self, packet: Packet, pipeline: int, deliver: float, run_central: bool = False
    ) -> None:
        def event() -> None:
            self._egress_service(packet, pipeline, deliver, run_central)

        self._sim.at(deliver, event)

    def _schedule_egress_burst(self, deliveries) -> None:
        """One event servicing several same-time egress deliveries in order."""
        first_deliver = deliveries[0][2]
        if any(deliver != first_deliver for _, _, deliver in deliveries):
            # Shouldn't happen (one admission, one TM latency), but fall
            # back to per-copy events rather than reorder anything.
            for copy, pipeline, deliver in deliveries:
                self._schedule_egress(copy, pipeline, deliver)
            return

        def event() -> None:
            self._sim.events_coalesced += len(deliveries) - 1
            for copy, pipeline, deliver in deliveries:
                self._egress_service(copy, pipeline, deliver, False)

        self._sim.at(first_deliver, event)

    def _egress_service(
        self, packet: Packet, pipeline_index: int, ready: float, run_central: bool
    ) -> None:
        pipeline = self.egress[pipeline_index]
        packet.meta.egress_pipeline = pipeline_index
        hook = None
        enforce = False
        if self.app is not None:
            if run_central:
                hook = self._central_hook
                enforce = True
            else:
                hook = self._egress_hook
        record = pipeline.service(packet, ready, hook, enforce_width=enforce)
        if self.spans is not None:
            self._span_service(packet, record, pipeline, "tm")
        self.tm.release(packet, now=record.exit_time)
        if run_central:
            self._mark_central_done(packet)
        decision = record.decision

        for emission in decision.emissions:
            emission.meta.arrival_time = packet.meta.arrival_time
            emission.meta.egress_pipeline = pipeline_index
            if packet.meta.span is not None:
                emission.meta.span = packet.meta.span
            self._mark_central_done(emission)
            self._to_traffic_manager(
                emission, record.exit_time, from_region="egress"
            )

        if decision.verdict is Verdict.DROP:
            self._drop(packet, decision, record.exit_time)
        elif decision.verdict is Verdict.CONSUME:
            self._result.consumed += 1
            self.counter("consumed").add()
            if self.trace is not None:
                self._emit(
                    Category.PACKET, "packet.consumed", record.exit_time, packet
                )
        elif decision.verdict is Verdict.RECIRCULATE:
            self._recirculate_to(packet, pipeline_index, record.exit_time)
        else:
            port = packet.meta.egress_port
            if port is None:
                packet.meta.drop_reason = "no_route"
                self._result.dropped.append(packet)
                self._emit_tm_drop(packet, record.exit_time)
                return
            if port not in pipeline.attached_ports:
                # The TM routed by egress port, so this only happens for
                # pinned-state packets whose destination lives elsewhere.
                self._recirculate_to(packet, pipeline_index, record.exit_time)
                return
            self._transmit(packet, record.exit_time)

    def _transmit(self, packet: Packet, ready: float) -> None:
        port = packet.meta.egress_port
        assert port is not None
        departure = self.tx_ports[port].transmit(packet, ready)
        if self.spans is not None and packet.meta.span is not None:
            self.spans.record(
                packet.meta.span, packet.packet_id, self.name,
                "egress_serial", ready, departure,
            )
        self._result.delivered.append(packet)
        self.counter("delivered").add()
        if self.trace is not None:
            self._emit(
                Category.PACKET,
                "packet.delivered",
                ready,
                packet,
                port=port,
                departure_s=departure,
                recirculations=packet.meta.recirculations,
            )
        sink = self.port_sinks.get(port)
        if sink is not None:
            sink(packet, departure)

    # --- central-state bookkeeping ------------------------------------------------------

    @staticmethod
    def _central_done(packet: Packet) -> bool:
        return packet.meta.central_done

    @staticmethod
    def _mark_central_done(packet: Packet) -> None:
        packet.meta.central_done = True
