"""Transmit-side port model: serialization at link rate.

A TX port is a single server whose service time is the packet's wire time
(wire bytes x 8 / link speed).  Packets handed to a busy port queue behind
it; the port records per-packet departure times, byte counts, and the
busy/idle split, which is how experiments compute achieved throughput and
goodput per port.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigError
from ..net.packet import Packet
from ..units import BITS_PER_BYTE


class TxPort:
    """One transmit port, serializing packets at ``link_bps``."""

    def __init__(self, port: int, link_bps: float) -> None:
        if port < 0:
            raise ConfigError(f"port index must be >= 0, got {port}")
        if link_bps <= 0:
            raise ConfigError(f"link speed must be positive, got {link_bps}")
        self.port = port
        self.link_bps = link_bps
        self._free_at = 0.0
        self._queue: deque[Packet] = deque()
        self.packets_sent = 0
        self.wire_bytes_sent = 0
        self.goodput_bytes_sent = 0
        self.busy_seconds = 0.0
        self.last_departure = 0.0
        self.trace = None
        """Optional :class:`~repro.telemetry.recorder.TraceRecorder`; the
        owning switch wires it when telemetry is enabled."""

    def wire_time(self, packet: Packet) -> float:
        """Seconds the packet occupies the wire."""
        return packet.wire_bytes * BITS_PER_BYTE / self.link_bps

    def transmit(self, packet: Packet, ready_time: float) -> float:
        """Serialize ``packet``; returns its departure (last-bit) time.

        ``ready_time`` is when the packet reached the port; transmission
        starts then or when the port frees up, whichever is later.
        """
        start = max(ready_time, self._free_at)
        duration = self.wire_time(packet)
        departure = start + duration
        self._free_at = departure
        self.packets_sent += 1
        self.wire_bytes_sent += packet.wire_bytes
        self.goodput_bytes_sent += packet.goodput_bytes
        self.busy_seconds += duration
        self.last_departure = departure
        packet.meta.departure_time = departure
        if self.trace is not None:
            self._trace_tx(packet, ready_time, start, duration, departure)
        return departure

    def _trace_tx(
        self,
        packet: Packet,
        ready: float,
        start: float,
        duration: float,
        departure: float,
    ) -> None:
        from ..telemetry.events import Category

        # ready_s/departure_s carry the exact queue-enter and last-bit
        # floats so the latency profiler can tile the serialization span
        # without re-deriving boundaries from start + duration.
        self.trace.emit(
            Category.PORT,
            "port.tx",
            start,
            component=f"port.tx{self.port}",
            packet_id=packet.packet_id,
            duration_s=duration,
            port=self.port,
            wire_bytes=packet.wire_bytes,
            ready_s=ready,
            departure_s=departure,
        )

    def utilization(self, horizon_s: float) -> float:
        """Fraction of ``horizon_s`` the port spent transmitting."""
        if horizon_s <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon_s}")
        return min(1.0, self.busy_seconds / horizon_s)

    def backlog_s(self, now_s: float) -> float:
        """Seconds of serialization already committed beyond ``now_s``.

        The port is a single server, so the committed busy horizon is the
        exact queueing delay the next arrival would see — the monitor's
        per-port queue-depth series.
        """
        return max(0.0, self._free_at - now_s)

    def monitor_probes(self, label: str | None = None):
        """Resource-monitor series for this port, keyed by dotted name.

        ``label`` overrides the series prefix (the switch uses it to name
        recirculation loopback ports distinctly from front-panel ports).
        """
        prefix = label or f"port.tx{self.port}"
        return {
            f"{prefix}.utilization": lambda now_s: (
                min(1.0, self.busy_seconds / now_s) if now_s > 0 else 0.0
            ),
            f"{prefix}.backlog_s": self.backlog_s,
        }

    @property
    def achieved_bps(self) -> float:
        """Average bits per second up to the last departure."""
        if self.last_departure <= 0:
            return 0.0
        return self.wire_bytes_sent * BITS_PER_BYTE / self.last_departure
