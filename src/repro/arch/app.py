"""The switch application programming interface.

An in-network application implements :class:`SwitchApp` once and runs on
either target.  Hooks receive a :class:`PipelineContext`, which exposes
*only* the stateful resources physically co-resident with the pipeline
running the hook — registers allocated there, its tables, and whether its
match-action units can consume arrays.  The two architectures differ in
which hooks fire and what state each context can reach:

============  ==========================  =================================
Hook          RMT                         ADCP
============  ==========================  =================================
``ingress``   runs; state per ingress     runs; state per ingress pipeline
              pipeline (port-determined)  (port-determined, demux lanes)
``central``   never fires (no such        runs; state partitioned across
              region exists)              central pipelines by the app's
                                          placement key (section 3.1)
``egress``    runs; state per egress      runs; state per egress pipeline
              pipeline
============  ==========================  =================================

Applications that need cross-flow state on RMT must place it in an egress
pipeline (pinning outputs to that pipeline's ports) or recirculate — the
exact dilemma of Figure 2.
"""

from __future__ import annotations

from typing import Protocol

from ..errors import ConfigError
from ..net.packet import Packet
from ..net.phv import PHV
from ..tables.mat import MatchTable
from ..tables.registers import RegisterArray
from .decision import Decision


class PipelineContext(Protocol):
    """What a hook may touch: the executing pipeline's local resources."""

    @property
    def pipeline_index(self) -> int:
        """Index of the pipeline running the hook."""
        ...

    @property
    def region(self) -> str:
        """``"ingress"``, ``"central"``, or ``"egress"``."""
        ...

    @property
    def array_width(self) -> int:
        """Max parallel lookups per table here (1 = scalar)."""
        ...

    @property
    def attached_ports(self) -> tuple[int, ...]:
        """Ports physically reachable from this pipeline without another
        switching step (empty for central pipelines: TM2 reaches all)."""
        ...

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        ...

    def register(self, name: str, size: int, width_bits: int = 32) -> RegisterArray:
        """Get or lazily allocate a register array local to this pipeline."""
        ...

    def table(self, name: str) -> MatchTable:
        """Look up a table installed on this pipeline."""
        ...


class SwitchApp:
    """Base class for in-network applications.

    Subclasses override the hooks they need; unimplemented hooks forward
    the packet unchanged.  ``name`` labels stats; ``elements_per_packet``
    declares the packing factor the app's packet format uses (the
    architectural comparisons sweep it).
    """

    def __init__(self, name: str, elements_per_packet: int = 1) -> None:
        if elements_per_packet < 1:
            raise ConfigError(
                f"app {name!r}: elements per packet must be >= 1"
            )
        self.name = name
        self.elements_per_packet = elements_per_packet
        self.placement_policy = None
        """Optional :class:`~repro.coflow.placement.PlacementPolicy`.

        Section 3.1: "the application needs to define the criteria by
        which the first TM will forward packets across the pipelines."
        The switch calls :meth:`bind_placement` with its partition count
        at construction; apps that care override it to install a policy
        (hash by default) and may precompute per-partition expectations.
        """

    def bind_placement(self, partitions: int) -> None:
        """Called by the switch so the app can size its placement policy."""
        from ..coflow.placement import HashPlacement

        self.placement_policy = HashPlacement(partitions)

    def partition_of_key(self, key: int) -> int:
        """Partition (central pipeline / state pipeline) hosting a key."""
        if self.placement_policy is None:
            raise ConfigError(
                f"app {self.name!r} has no placement policy bound yet"
            )
        return self.placement_policy.place(key)

    # --- hooks ------------------------------------------------------------------

    def ingress(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Runs in the ingress pipeline the packet's RX port maps to."""
        return Decision.forward()

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Runs in the central pipeline chosen by :meth:`placement_key`.

        Never called on RMT — there is no central region to run in.
        """
        return Decision.forward()

    def egress(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Runs in the egress pipeline of the packet's egress port."""
        return Decision.forward()

    # --- placement -----------------------------------------------------------------

    def placement_key(self, packet: Packet) -> int:
        """Key TM1 hashes/ranges to pick a central pipeline (section 3.1).

        Defaults to the first payload element's key, falling back to the
        coflow id, so simple apps need not override it.
        """
        if packet.payload is not None and len(packet.payload) > 0:
            return packet.payload[0].key
        if packet.has_header("coflow"):
            return packet.header("coflow")["coflow_id"]
        return 0

    def uses_central_state(self) -> bool:
        """Whether the app keeps cross-flow state (drives RMT placement).

        Apps that return True must, on RMT, either pin state to one egress
        pipeline or recirculate; the RMT switch model consults this to
        decide where to run the app's state hook.
        """
        return False

    def claims(self, packet: Packet) -> bool:
        """Whether this packet is input to the app's stateful hook.

        Single-switch apps own every packet they see, so the default is
        True.  Fabric deployments override this: a switch hosting one
        coflow's state also forwards traffic of coflows placed elsewhere,
        and the RMT steering / recirculation machinery must leave those
        transit packets on the plain forwarding path.
        """
        return True
