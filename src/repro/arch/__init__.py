"""Architecture-neutral switch building blocks.

Pieces shared between the RMT model (:mod:`repro.rmt`) and the ADCP model
(:mod:`repro.adcp`):

- :class:`~repro.arch.port.TxPort` — transmit-side serialization at link
  rate (one packet on the wire at a time).
- :class:`~repro.arch.decision.Decision` — what an application asks the
  switch to do with a packet (forward / drop / consume / emit).
- :class:`~repro.arch.app.SwitchApp` and
  :class:`~repro.arch.app.PipelineContext` — the programming interface an
  in-network application implements once and runs on either target.  The
  context deliberately exposes *only* the state co-resident with the
  pipeline executing the hook; the architectural difference between RMT
  and ADCP is exactly which state that is.
"""

from .app import PipelineContext, SwitchApp
from .decision import Decision, Verdict
from .port import TxPort

__all__ = [
    "Decision",
    "PipelineContext",
    "SwitchApp",
    "TxPort",
    "Verdict",
]
