"""Forwarding decisions returned by application hooks."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigError
from ..net.packet import Packet


class Verdict(Enum):
    """What should happen to the packet after a hook runs."""

    FORWARD = "forward"
    """Send to the packet's egress port(s); may also carry emissions."""

    DROP = "drop"
    """Discard (policy or error)."""

    CONSUME = "consume"
    """Absorb into switch state, emitting nothing now (e.g. a partial
    aggregation: the packet's job is done once its values are folded in)."""

    RECIRCULATE = "recirculate"
    """Send back through the ingress pipeline for another pass (RMT's
    escape hatch for cross-pipeline data movement)."""


@dataclass(slots=True)
class Decision:
    """A verdict plus any packets the hook wants to emit.

    ``emissions`` are switch-originated packets (aggregation results,
    multicast copies); each must name a destination — ``meta.egress_port``
    or ``meta.egress_ports`` set, or a nonzero IPv4 ``dst_ip`` for a
    fabric to resolve into a next-hop port.  Emissions are legal with any
    verdict — a CONSUME that completes an aggregation typically consumes
    the trigger packet *and* emits the result.
    """

    verdict: Verdict
    emissions: list[Packet] = field(default_factory=list)
    drop_reason: str | None = None

    @classmethod
    def forward(cls, *emissions: Packet) -> "Decision":
        return cls(Verdict.FORWARD, list(emissions))

    @classmethod
    def drop(cls, reason: str = "app_drop") -> "Decision":
        return cls(Verdict.DROP, drop_reason=reason)

    @classmethod
    def consume(cls, *emissions: Packet) -> "Decision":
        return cls(Verdict.CONSUME, list(emissions))

    @classmethod
    def recirculate(cls) -> "Decision":
        return cls(Verdict.RECIRCULATE)

    def validate(self) -> None:
        """Check every emission names a destination (port or dst_ip)."""
        for packet in self.emissions:
            if packet.meta.egress_port is not None or packet.meta.egress_ports:
                continue
            if (
                packet.has_header("ipv4")
                and packet.header("ipv4")["dst_ip"] != 0
            ):
                # Fabric-addressed: the switch's route resolver maps the
                # destination IP to a next-hop port at TM admission.
                continue
            raise ConfigError(
                "emitted packet has no egress port assigned"
            )
