"""Command-line artifact reports: ``python -m repro [artifact ...]``.

Prints the paper's regenerated tables and claims without pytest, for
quick inspection or embedding in scripts.  Artifacts:

``table2``, ``table3``, ``claims``, ``frontier``, ``congestion``,
``multiclock``, ``keyrate``, ``scheduling``, ``all`` (default).
"""

from __future__ import annotations

from .errors import ConfigError


def report_table2() -> list[str]:
    from .analytical.scaling import table2_rows

    lines = ["Table 2 — port multiplexing poor scalability"]
    for row in table2_rows():
        lines.append(
            f"  {row.port_speed_gbps:>5.0f} G x {str(row.ports_per_pipeline):>3} "
            f"p/pipe, {row.min_packet_bytes:>4.0f} B -> "
            f"{row.computed_freq_ghz:.3f} GHz (paper {row.paper_freq_ghz})"
        )
    return lines


def report_table3() -> list[str]:
    from .analytical.scaling import table3_rows

    lines = ["Table 3 — port demultiplexing examples"]
    for row in table3_rows():
        lines.append(
            f"  {row.port_speed_gbps:>5.0f} G x {str(row.ports_per_pipeline):>3} "
            f"p/pipe, {row.min_packet_bytes:>4.0f} B -> "
            f"{row.computed_freq_ghz:.3f} GHz (paper {row.paper_freq_ghz})"
        )
    return lines


def report_claims() -> list[str]:
    from .units import BPPS, ETHERNET_MIN_WIRE_BYTES, GBPS, MPPS, packet_rate

    lines = ["Inline claims (§2(3), §3.3)"]
    lines.append(
        f"  64 x 10 G  -> "
        f"{packet_rate(640 * GBPS, ETHERNET_MIN_WIRE_BYTES) / MPPS:.0f} Mpps "
        f"(paper ~952)"
    )
    lines.append(
        f"  64 x 100 G -> "
        f"{packet_rate(6400 * GBPS, ETHERNET_MIN_WIRE_BYTES) / BPPS:.2f} Bpps "
        f"(paper ~9.5)"
    )
    lines.append(
        f"  1 x 1.6 T  -> "
        f"{packet_rate(1600 * GBPS, ETHERNET_MIN_WIRE_BYTES) / BPPS:.2f} Bpps "
        f"(paper ~2.38)"
    )
    return lines


def report_frontier() -> list[str]:
    from .analytical.frontier import demux_frontier, required_demux_factor

    lines = ["Feasibility frontier — required demux per port speed"]
    for speed in (400, 800, 1600, 3200):
        m = required_demux_factor(speed)
        point = demux_frontier(speed, (m,))[0]
        lines.append(
            f"  {speed:>5} G: 1:{m} demux -> {point.freq_ghz:.2f} GHz at 84 B"
        )
    return lines


def report_congestion() -> list[str]:
    from .feasibility.congestion import (
        RoutingEstimator,
        tm_netlist_interleaved,
        tm_netlist_monolithic,
    )
    from .feasibility.floorplan import (
        interleaved_tm_floorplan,
        monolithic_tm_floorplan,
    )

    lines = ["§4 routing congestion — monolithic vs interleaved TM"]
    for n in (4, 8, 16):
        mono = RoutingEstimator(monolithic_tm_floorplan(n)).estimate(
            tm_netlist_monolithic(n, 512)
        )
        inter = RoutingEstimator(interleaved_tm_floorplan(n)).estimate(
            tm_netlist_interleaved(n, 512)
        )
        lines.append(
            f"  {n:>2} pipelines: peak {mono.max_congestion:5.1f} vs "
            f"{inter.max_congestion:4.1f} "
            f"({mono.max_congestion / inter.max_congestion:.1f}x relief)"
        )
    return lines


def report_multiclock() -> list[str]:
    from .adcp.multiclock import MultiClockMatMemory
    from .units import GHZ

    lines = ["§4 multi-clock MAT memory — max feasible array width"]
    for clock in (0.3, 0.6, 1.19, 1.62):
        width = MultiClockMatMemory(clock * GHZ, 1).max_feasible_width
        lines.append(f"  {clock:>5.2f} GHz lane -> width {width}")
    return lines


def report_keyrate() -> list[str]:
    from .analytical.keyrate import KeyRateModel

    model = KeyRateModel(packet_rate_pps=6e9)
    lines = ["§3.2 key rate vs array width (6 Bpps budget)"]
    for width in (1, 2, 4, 8, 16):
        lines.append(
            f"  {width:>2}-wide: {model.key_rate(width) / 1e9:5.1f} Bkeys/s, "
            f"goodput {model.goodput(width):5.1%}"
        )
    return lines


def report_scheduling() -> list[str]:
    from .coflow.scheduler import (
        FairSharingScheduler,
        FifoCoflowScheduler,
        SebfScheduler,
    )
    from .coflow.workload import synthesize_workload
    from .sim.rng import make_rng
    from .units import GBPS

    coflows = list(synthesize_workload(40, 16, make_rng(17)))
    lines = ["§5 coflow-aware TM scheduling (40-coflow mix)"]
    for policy in (FifoCoflowScheduler, FairSharingScheduler, SebfScheduler):
        result = policy().schedule(coflows, 100 * GBPS)
        lines.append(
            f"  {policy.name:>5}: avg CCT {result.average_cct * 1e6:6.2f} us"
        )
    return lines


ARTIFACTS = {
    "table2": report_table2,
    "table3": report_table3,
    "claims": report_claims,
    "frontier": report_frontier,
    "congestion": report_congestion,
    "multiclock": report_multiclock,
    "keyrate": report_keyrate,
    "scheduling": report_scheduling,
}


def run_structured(names: list[str] | None = None) -> dict[str, list[str]]:
    """Produce the requested artifact reports keyed by artifact name.

    Validates every requested name before generating anything, so an
    unknown artifact is always a clean usage error — never a partial
    report.  ``None`` or ``"all"`` selects every artifact.
    """
    selected = names or ["all"]
    if "all" in selected:
        selected = list(ARTIFACTS)
    for name in selected:
        if name not in ARTIFACTS:
            raise ConfigError(
                f"unknown artifact {name!r}; choose from "
                f"{', '.join(sorted(ARTIFACTS))}, all"
            )
    return {name: ARTIFACTS[name]() for name in selected}


def run(names: list[str] | None = None) -> list[str]:
    """Produce the requested artifact reports (all when None)."""
    lines: list[str] = []
    for report in run_structured(names).values():
        lines.extend(report)
        lines.append("")
    return lines
