"""Database analytics: filter-aggregate-reshuffle (Table 1, row 2).

"Servers with local storage engage in a pattern of filter-aggregate-
reshuffle of data to solve queries over large amounts of data in
parallel."  The switch executes all three relational steps:

- **Filter** at ingress (stateless): elements failing a predicate are
  removed from the packet; empty packets are dropped.
- **Aggregate** in the state partitions: per-group running sums.
- **Reshuffle** on emission: each group's total is sent to the reducer
  that owns the group's key (hash partitioning across reducer ports).

Aggregation is a blocking operator, so each mapper flow ends with flush
markers — one per state partition, since a partition can only emit once
*its* inputs are complete.  The app knows its placement policy (it defined
it), so it synthesizes one flush key per partition.
"""

from __future__ import annotations

from typing import Iterator

from ..arch.app import PipelineContext, SwitchApp
from ..arch.decision import Decision
from ..errors import ConfigError
from ..net.packet import Element, Packet
from ..net.phv import PHV
from ..net.traffic import DeterministicSource, make_coflow_packet, merge_sources
from ..sim.rng import stable_hash64
from .base import OP_DATA, OP_FLUSH, OP_RESULT


class DBShuffleApp(SwitchApp):
    """Switch-executed filter / group-by / reshuffle.

    Attributes:
        mapper_ports: Ports streaming raw (key, value) elements in.
        reducer_ports: Ports owning the output groups (hash of group key).
        groups: Number of distinct group keys.
        filter_modulus: Elements whose value is not divisible by this are
            filtered out at ingress (a cheap stand-in for a predicate).
    """

    def __init__(
        self,
        mapper_ports: list[int],
        reducer_ports: list[int],
        groups: int,
        filter_modulus: int = 2,
        elements_per_packet: int = 1,
        coflow_id: int = 11,
    ) -> None:
        super().__init__("dbshuffle", elements_per_packet)
        if not mapper_ports or not reducer_ports:
            raise ConfigError("shuffle needs mappers and reducers")
        if groups < 1:
            raise ConfigError("need at least one group")
        if filter_modulus < 1:
            raise ConfigError("filter modulus must be >= 1")
        self.mapper_ports = list(mapper_ports)
        self.reducer_ports = list(reducer_ports)
        self.groups = groups
        self.filter_modulus = filter_modulus
        self.coflow_id = coflow_id
        self._flushes_seen: dict[int, int] = {}
        self._emitted: set[int] = set()
        self.filtered_elements = 0
        self.results_emitted = 0

    def uses_central_state(self) -> bool:
        return True

    def bind_placement(self, partitions: int) -> None:
        super().bind_placement(partitions)
        self._flushes_seen = {p: 0 for p in range(partitions)}
        self._emitted = set()

    def placement_key(self, packet: Packet) -> int:
        if packet.payload is None or len(packet.payload) == 0:
            raise ConfigError("shuffle packet carries no elements")
        return packet.payload[0].key

    def reducer_of(self, group_key: int) -> int:
        """Reshuffle destination of a group (hash partitioning)."""
        return self.reducer_ports[stable_hash64(group_key) % len(self.reducer_ports)]

    # --- hooks -----------------------------------------------------------------------

    def ingress(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Filter: strip elements failing the predicate."""
        if packet.header("coflow")["opcode"] != OP_DATA:
            return Decision.forward()
        assert packet.payload is not None
        keep = [
            e for e in packet.payload if e.value % self.filter_modulus == 0
        ]
        removed = len(packet.payload) - len(keep)
        self.filtered_elements += removed
        if not keep:
            return Decision.drop("filtered")
        if removed:
            # Replace the element set through the deparser's override
            # channel; mutating packet.payload directly would be undone
            # when the PHV's (fixed-length) array view is deparsed back.
            phv.set_meta(
                "payload_override", [(e.key, e.value) for e in keep]
            )
        return Decision.forward()

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Aggregate per group; emit the partition's totals on final flush."""
        opcode = packet.header("coflow")["opcode"]
        partition = ctx.pipeline_index
        acc = ctx.register("group_sum", self.groups, width_bits=64)
        touched = ctx.register("group_touched", self.groups, width_bits=1)

        if opcode == OP_FLUSH:
            self._flushes_seen[partition] += 1
            if (
                self._flushes_seen[partition] == len(self.mapper_ports)
                and partition not in self._emitted
            ):
                self._emitted.add(partition)
                return Decision.consume(*self._emit_partition(partition, acc, touched))
            return Decision.consume()

        if opcode != OP_DATA:
            return Decision.forward()
        assert packet.payload is not None
        assert self.placement_policy is not None
        for element in packet.payload:
            if not 0 <= element.key < self.groups:
                raise ConfigError(
                    f"group key {element.key} out of range [0, {self.groups})"
                )
            if self.placement_policy.place(element.key) != partition:
                raise ConfigError(
                    f"group {element.key} batched onto partition {partition}; "
                    f"batches must be partition-local"
                )
            acc.add(element.key, element.value)
            touched.write(element.key, 1)
        return Decision.consume()

    def _emit_partition(self, partition: int, acc, touched) -> list[Packet]:
        """Build result packets for the groups this partition owns."""
        assert self.placement_policy is not None
        by_reducer: dict[int, list[Element]] = {}
        for key in range(self.groups):
            if self.placement_policy.place(key) != partition:
                continue
            if not touched.read(key):
                continue
            by_reducer.setdefault(self.reducer_of(key), []).append(
                Element(key, acc.read(key))
            )
        emissions: list[Packet] = []
        for port, elements in sorted(by_reducer.items()):
            for i in range(0, len(elements), self.elements_per_packet):
                batch = elements[i : i + self.elements_per_packet]
                result = make_coflow_packet(
                    self.coflow_id,
                    flow_id=0xFFFD,
                    seq=self.results_emitted,
                    elements=[(e.key, e.value) for e in batch],
                    opcode=OP_RESULT,
                )
                result.meta.egress_port = port
                emissions.append(result)
                self.results_emitted += 1
        return emissions

    # --- workload ---------------------------------------------------------------------

    def flush_keys(self) -> list[int]:
        """One key per state partition, used to address flush markers."""
        if self.placement_policy is None:
            raise ConfigError("placement not bound yet (construct the switch first)")
        needed = set(range(self.placement_policy.partitions))
        keys: dict[int, int] = {}
        key = 0
        while needed:
            partition = self.placement_policy.place(key)
            if partition in needed:
                keys[partition] = key
                needed.discard(partition)
            key += 1
            if key > 1_000_000:
                raise ConfigError("could not find flush keys for all partitions")
        return [keys[p] for p in sorted(keys)]

    def workload(
        self,
        port_speed_bps: float,
        elements_per_mapper: int,
        value_fn=None,
    ) -> Iterator[tuple[float, Packet]]:
        """Mapper streams plus per-partition flush markers.

        ``value_fn(key, mapper)`` produces element values (defaults to
        ``key * 2`` so everything passes the default filter).
        """
        fn = value_fn or (lambda key, mapper: key * 2)
        flush_keys = self.flush_keys()
        assert self.placement_policy is not None  # flush_keys checked
        sources = []
        for mapper, port in enumerate(self.mapper_ports):
            # Bucket elements by placement partition so every multi-element
            # packet is servable on a single central pipeline (the app
            # defines the placement, so it owns the packet format too).
            buckets: dict[int, list[tuple[int, int]]] = {}
            for i in range(elements_per_mapper):
                key = i % self.groups
                partition = self.placement_policy.place(key)
                buckets.setdefault(partition, []).append((key, fn(key, mapper)))
            packets: list[Packet] = []
            seq = 0
            for _, elements_in_bucket in sorted(buckets.items()):
                for start in range(0, len(elements_in_bucket), self.elements_per_packet):
                    elements = elements_in_bucket[
                        start : start + self.elements_per_packet
                    ]
                    packet = make_coflow_packet(
                        self.coflow_id, mapper, seq, elements, opcode=OP_DATA,
                        worker_id=mapper,
                    )
                    packet.meta.ingress_port = port
                    packets.append(packet)
                    seq += 1
            for flush_key in flush_keys:
                marker = make_coflow_packet(
                    self.coflow_id, mapper, seq, [(flush_key, 0)],
                    opcode=OP_FLUSH, worker_id=mapper,
                )
                marker.meta.ingress_port = port
                packets.append(marker)
                seq += 1
            sources.append(DeterministicSource(port, port_speed_bps, packets))
        return merge_sources(sources)

    def expected_result(self, elements_per_mapper: int, value_fn=None) -> dict[int, int]:
        """Ground truth group totals after filtering, across all mappers."""
        fn = value_fn or (lambda key, mapper: key * 2)
        totals: dict[int, int] = {}
        for mapper in range(len(self.mapper_ports)):
            for i in range(elements_per_mapper):
                key = i % self.groups
                value = fn(key, mapper)
                if value % self.filter_modulus != 0:
                    continue
                totals[key] = totals.get(key, 0) + value
        return totals

    @staticmethod
    def collect_results(delivered: list[Packet]) -> dict[int, int]:
        """Extract group totals from delivered result packets."""
        results: dict[int, int] = {}
        for packet in delivered:
            if packet.header("coflow")["opcode"] != OP_RESULT:
                continue
            assert packet.payload is not None
            for element in packet.payload:
                if element.key in results:
                    raise ConfigError(
                        f"group {element.key} emitted twice"
                    )
                results[element.key] = element.value
        return results
