"""In-network ML parameter aggregation (Table 1, row 1).

"Every server sends the switch a different flow containing a vector of
machine learning model weights.  The parameter server running on the
switch coordinates an aggregation operation among all participating
servers over the weights, sending out the results in a very different
output flow scheme than the input coflow."

The app keeps, per state partition, an accumulator register and a
contribution counter per weight slot.  When a slot has heard from every
worker it is *complete*; completed slots are batched
``elements_per_packet`` at a time into result packets multicast to all
workers.  Because each partition knows exactly which slots the placement
policy assigns to it, the final short batch is emitted the moment the
partition's last slot completes — no end-of-flow markers needed.

On the ADCP this runs in the central area with array-wide register
updates.  On RMT the same code runs, but the switch model forces scalar
packets (one weight per packet) and hosts the state via egress pinning or
recirculation — the comparison benchmarks price both.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..arch.app import PipelineContext, SwitchApp
from ..arch.decision import Decision
from ..coflow.model import Coflow
from ..coflow.placement import HashPlacement
from ..errors import ConfigError
from ..net.packet import Element, Packet
from ..net.phv import PHV
from ..net.traffic import make_coflow_packet
from .base import OP_DATA, OP_RESULT, coflow_arrivals


class ParameterServerApp(SwitchApp):
    """Switch-resident parameter server.

    Attributes:
        worker_ports: Ports of the participating workers; results are
            multicast to all of them (the all-reduce pattern).
        vector_elements: Length of the weight vector being aggregated.
        elements_per_packet: Packing factor of both input and result
            packets (1 on scalar targets).
    """

    def __init__(
        self,
        worker_ports: list[int],
        vector_elements: int,
        elements_per_packet: int = 1,
        coflow_id: int = 1,
    ) -> None:
        super().__init__("paramserver", elements_per_packet)
        if len(worker_ports) < 2:
            raise ConfigError("aggregation needs at least two workers")
        if len(set(worker_ports)) != len(worker_ports):
            raise ConfigError("worker ports must be distinct")
        if vector_elements < 1:
            raise ConfigError("vector must have at least one element")
        self.worker_ports = list(worker_ports)
        self.vector_elements = vector_elements
        self.coflow_id = coflow_id
        self._pending: dict[int, list[Element]] = {}
        self._completed: dict[int, int] = {}
        self._expected: dict[int, int] = {}
        self.results_emitted = 0

    # --- placement ---------------------------------------------------------------

    def uses_central_state(self) -> bool:
        return True

    def bind_placement(self, partitions: int) -> None:
        """Hash-place weight *chunks* and precompute per-partition counts.

        Placement granularity is one packet's worth of contiguous slots:
        TM1 routes a packet by its first element's key, so every slot in a
        chunk lives on the chunk's partition.  Workers pack identically
        (same base, same packing factor), so all contributions to a slot
        meet on one partition.
        """
        self.placement_policy = HashPlacement(partitions)
        self._expected = {p: 0 for p in range(partitions)}
        step = self.elements_per_packet
        for chunk_start in range(0, self.vector_elements, step):
            chunk_size = min(step, self.vector_elements - chunk_start)
            partition = self.placement_policy.place(chunk_start)
            self._expected[partition] += chunk_size
        self._pending = {p: [] for p in range(partitions)}
        self._completed = {p: 0 for p in range(partitions)}

    def placement_key(self, packet: Packet) -> int:
        if packet.payload is None or len(packet.payload) == 0:
            raise ConfigError("parameter packet carries no elements")
        return packet.payload[0].key

    # --- hooks -----------------------------------------------------------------------

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Fold the packet's weights into the accumulators; emit completions."""
        if packet.header("coflow")["opcode"] != OP_DATA:
            return Decision.consume()
        partition = ctx.pipeline_index
        acc = ctx.register("agg_acc", self.vector_elements, width_bits=64)
        count = ctx.register("agg_cnt", self.vector_elements, width_bits=32)
        num_workers = len(self.worker_ports)
        assert packet.payload is not None
        for element in packet.payload:
            total = acc.add(element.key, element.value)
            seen = count.add(element.key, 1)
            if seen == num_workers:
                self._pending[partition].append(Element(element.key, total))
                self._completed[partition] += 1

        emissions = self._drain_emissions(partition)
        return Decision.consume(*emissions)

    def _drain_emissions(self, partition: int) -> list[Packet]:
        pending = self._pending[partition]
        done = self._completed[partition] >= self._expected.get(partition, 0)
        emissions: list[Packet] = []
        while len(pending) >= self.elements_per_packet or (done and pending):
            batch = pending[: self.elements_per_packet]
            del pending[: self.elements_per_packet]
            emissions.append(self._result_packet(batch))
        return emissions

    def _result_packet(self, batch: list[Element]) -> Packet:
        packet = make_coflow_packet(
            self.coflow_id,
            flow_id=0xFFFF,
            seq=self.results_emitted,
            elements=[(e.key, e.value) for e in batch],
            opcode=OP_RESULT,
        )
        packet.meta.egress_ports = tuple(self.worker_ports)
        self.results_emitted += 1
        return packet

    # --- workload ----------------------------------------------------------------------

    def coflow(self) -> Coflow:
        """The aggregation coflow this app instance serves."""
        from ..coflow.workload import aggregation_coflow

        return aggregation_coflow(
            self.coflow_id, self.worker_ports, self.vector_elements
        )

    def workload(
        self,
        port_speed_bps: float,
        value_fn: Callable[[int], int] | None = None,
    ) -> Iterator[tuple[float, Packet]]:
        """Timed input packets: every worker streams its vector at line rate."""
        return coflow_arrivals(
            self.coflow(),
            port_speed_bps,
            self.elements_per_packet,
            value_fn=value_fn or (lambda key: key + 1),
        )

    # --- verification -------------------------------------------------------------------

    def expected_result(
        self, value_fn: Callable[[int], int] | None = None
    ) -> dict[int, int]:
        """Ground truth: key -> aggregated value across all workers."""
        fn = value_fn or (lambda key: key + 1)
        workers = len(self.worker_ports)
        return {key: fn(key) * workers for key in range(self.vector_elements)}

    @staticmethod
    def collect_results(delivered: list[Packet]) -> dict[int, int]:
        """Extract (key -> aggregate) from delivered result packets.

        Results are multicast, so duplicates across ports are collapsed;
        conflicting duplicates raise, as that indicates a state bug.
        """
        results: dict[int, int] = {}
        for packet in delivered:
            if packet.header("coflow")["opcode"] != OP_RESULT:
                continue
            assert packet.payload is not None
            for element in packet.payload:
                if element.key in results and results[element.key] != element.value:
                    raise ConfigError(
                        f"conflicting aggregates for key {element.key}: "
                        f"{results[element.key]} vs {element.value}"
                    )
                results[element.key] = element.value
        return results
