"""Shared application plumbing: opcodes and workload materialization."""

from __future__ import annotations

from typing import Iterator

from ..coflow.model import Coflow, Flow
from ..errors import ConfigError
from ..net.headers import (  # noqa: F401 - canonical home is the net layer
    OP_DATA,
    OP_FLUSH,
    OP_GET,
    OP_PUT,
    OP_REPLY,
    OP_RESULT,
)
from ..net.packet import Packet
from ..net.traffic import DeterministicSource, merge_sources


def coflow_arrivals(
    coflow: Coflow,
    port_speed_bps: float,
    elements_per_packet: int,
    value_fn=None,
    opcode: int = OP_DATA,
    flush: bool = False,
    start_time: float = 0.0,
) -> Iterator[tuple[float, Packet]]:
    """Materialize a coflow's input flows as a merged timed arrival stream.

    Every input flow becomes a back-to-back line-rate stream on its source
    port (ports send concurrently, as coordinated workers do).  With
    ``flush`` set, each flow is terminated by an OP_FLUSH marker packet so
    streaming operators know when to emit partial state.

    Keys are globally indexed per flow position (``key = element index``)
    so that aggregation workloads see every worker contribute the same key
    set — the parameter-server pattern.
    """
    if elements_per_packet < 1:
        raise ConfigError("elements per packet must be >= 1")
    sources = []
    for flow in coflow.input_flows:
        packets = flow.packets(
            coflow.coflow_id,
            elements_per_packet,
            key_base=0,
            value_fn=value_fn,
            opcode=opcode,
        )
        if flush:
            packets.append(_flush_packet(coflow, flow))
        sources.append(
            DeterministicSource(
                flow.src_port, port_speed_bps, packets, start_time=start_time
            )
        )
    if not sources:
        raise ConfigError(f"coflow {coflow.coflow_id} has no input flows")
    return merge_sources(sources)


def _flush_packet(coflow: Coflow, flow: Flow) -> Packet:
    from ..net.traffic import make_coflow_packet

    packet = make_coflow_packet(
        coflow.coflow_id,
        flow.flow_id,
        seq=flow.packet_count(1) + 1,
        elements=[(0, 0)],
        element_width_bytes=flow.element_width_bytes,
        opcode=OP_FLUSH,
        worker_id=flow.worker_id,
    )
    packet.meta.ingress_port = flow.src_port
    packet.meta.egress_port = flow.dst_port
    return packet


def shuffled_destination(key: int, reducer_ports: list[int]) -> int:
    """Deterministic reshuffle target for a key (hash partitioning)."""
    from ..sim.rng import stable_hash64

    if not reducer_ports:
        raise ConfigError("need at least one reducer port")
    return reducer_ports[stable_hash64(key) % len(reducer_ports)]
