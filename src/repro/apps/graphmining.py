"""BSP-style graph pattern mining support (Table 1, row 3).

"Large graphs are partitioned across several servers who then engage in a
BSP-style communication exploring increasingly large patterns in the
graph at each iteration."  The dominant network work in such systems
(GraphINC is the paper's reference [14]) is exchanging *frontier*
vertices between partitions, with massive duplication — many workers
discover the same vertex in the same superstep.

The switch deduplicates the frontier in flight: a visited-bitmap per
state partition lets only the first occurrence of each vertex through,
forwarded to the server that owns it.  Everything else is absorbed at
the switch, saving the fan-in bandwidth at the servers.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..arch.app import PipelineContext, SwitchApp
from ..arch.decision import Decision
from ..errors import ConfigError
from ..net.packet import Element, Packet
from ..net.phv import PHV
from ..net.traffic import DeterministicSource, make_coflow_packet, merge_sources
from ..sim.rng import stable_hash64
from .base import OP_DATA, OP_RESULT


class GraphMiningApp(SwitchApp):
    """Frontier deduplication for BSP graph exploration.

    Attributes:
        partition_ports: Ports of the graph-partition servers.
        num_vertices: Vertex id space (sizes the visited bitmaps).
    """

    def __init__(
        self,
        partition_ports: list[int],
        num_vertices: int,
        elements_per_packet: int = 1,
        coflow_id: int = 13,
    ) -> None:
        super().__init__("graphmining", elements_per_packet)
        if len(partition_ports) < 2:
            raise ConfigError("graph mining needs at least two partitions")
        if num_vertices < 1:
            raise ConfigError("need at least one vertex")
        self.partition_ports = list(partition_ports)
        self.num_vertices = num_vertices
        self.coflow_id = coflow_id
        self.duplicates_absorbed = 0
        self.uniques_forwarded = 0
        self.results_emitted = 0

    def uses_central_state(self) -> bool:
        return True

    def placement_key(self, packet: Packet) -> int:
        if packet.payload is None or len(packet.payload) == 0:
            raise ConfigError("frontier packet carries no elements")
        return packet.payload[0].key

    def owner_of(self, vertex: int) -> int:
        """Server port owning a vertex (hash partitioning of the graph)."""
        return self.partition_ports[
            stable_hash64(vertex) % len(self.partition_ports)
        ]

    # --- hooks -----------------------------------------------------------------------

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Pass each vertex at most once, toward its owning partition."""
        if packet.header("coflow")["opcode"] != OP_DATA:
            return Decision.forward()
        visited = ctx.register("visited", self.num_vertices, width_bits=1)
        assert packet.payload is not None
        assert self.placement_policy is not None

        fresh_by_owner: dict[int, list[Element]] = {}
        for element in packet.payload:
            if not 0 <= element.key < self.num_vertices:
                raise ConfigError(
                    f"vertex {element.key} out of range [0, {self.num_vertices})"
                )
            if self.placement_policy.place(element.key) != ctx.pipeline_index:
                raise ConfigError(
                    f"vertex {element.key} batched onto partition "
                    f"{ctx.pipeline_index}; batches must be partition-local"
                )
            if visited.read(element.key):
                self.duplicates_absorbed += 1
                continue
            visited.write(element.key, 1)
            self.uniques_forwarded += 1
            fresh_by_owner.setdefault(self.owner_of(element.key), []).append(
                element
            )

        emissions: list[Packet] = []
        for port, elements in sorted(fresh_by_owner.items()):
            for i in range(0, len(elements), self.elements_per_packet):
                batch = elements[i : i + self.elements_per_packet]
                out = make_coflow_packet(
                    self.coflow_id,
                    flow_id=0xFFFC,
                    seq=self.results_emitted,
                    elements=[(e.key, e.value) for e in batch],
                    opcode=OP_RESULT,
                )
                out.meta.egress_port = port
                emissions.append(out)
                self.results_emitted += 1
        return Decision.consume(*emissions)

    # --- workload ---------------------------------------------------------------------

    def _partition_local_batches(self, vertices: list[int]) -> list[list[int]]:
        """Pack vertices into packets that respect partition locality.

        The visited bitmap is partitioned across central pipelines, so
        every vertex in one packet must place to the same partition —
        otherwise two copies of a vertex could dodge deduplication by
        landing on different bitmaps.
        """
        if self.elements_per_packet == 1:
            return [[v] for v in vertices]
        if self.placement_policy is None:
            raise ConfigError(
                "placement not bound yet: construct the switch before "
                "generating a wide-packet workload"
            )
        buckets: dict[int, list[int]] = {}
        for vertex in vertices:
            buckets.setdefault(self.placement_policy.place(vertex), []).append(vertex)
        batches: list[list[int]] = []
        for _, bucket in sorted(buckets.items()):
            for start in range(0, len(bucket), self.elements_per_packet):
                batches.append(bucket[start : start + self.elements_per_packet])
        return batches

    def superstep_workload(
        self,
        port_speed_bps: float,
        frontier_size: int,
        duplication: float,
        rng: np.random.Generator,
    ) -> Iterator[tuple[float, Packet]]:
        """One BSP superstep: every partition announces frontier vertices.

        ``duplication`` is the expected number of *extra* copies of each
        frontier vertex across partitions (0 = no duplication; BSP rounds
        on dense patterns easily reach several).
        """
        if frontier_size < 1:
            raise ConfigError("frontier must have at least one vertex")
        if duplication < 0:
            raise ConfigError("duplication must be non-negative")
        frontier = rng.choice(
            self.num_vertices, size=min(frontier_size, self.num_vertices),
            replace=False,
        )
        announcements: list[int] = []
        for vertex in frontier:
            copies = 1 + rng.poisson(duplication)
            announcements.extend([int(vertex)] * int(copies))
        rng.shuffle(announcements)

        per_port: dict[int, list[int]] = {p: [] for p in self.partition_ports}
        for i, vertex in enumerate(announcements):
            port = self.partition_ports[i % len(self.partition_ports)]
            per_port[port].append(vertex)

        sources = []
        for worker, port in enumerate(self.partition_ports):
            vertices = per_port[port]
            batches = self._partition_local_batches(vertices)
            packets: list[Packet] = []
            for seq, batch in enumerate(batches):
                packet = make_coflow_packet(
                    self.coflow_id, worker, seq,
                    [(v, 0) for v in batch],
                    opcode=OP_DATA, worker_id=worker,
                )
                packet.meta.ingress_port = port
                packets.append(packet)
            if packets:
                sources.append(DeterministicSource(port, port_speed_bps, packets))
        if not sources:
            raise ConfigError("superstep produced no traffic")
        return merge_sources(sources)

    @staticmethod
    def collect_forwarded(delivered: list[Packet]) -> set[int]:
        """Vertices that made it through deduplication."""
        vertices: set[int] = set()
        for packet in delivered:
            if packet.header("coflow")["opcode"] != OP_RESULT:
                continue
            assert packet.payload is not None
            for element in packet.payload:
                vertices.add(element.key)
        return vertices
