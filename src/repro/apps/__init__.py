"""In-network applications — the Table 1 workloads.

Each application implements :class:`repro.arch.app.SwitchApp` once and
runs unchanged on both targets; the architectural differences (where state
lives, scalar vs array processing, output reachability) come entirely from
the switch models.

- :class:`~repro.apps.paramserver.ParameterServerApp` — ML training
  parameter aggregation (all-to-all exchange via switch reduction).
- :class:`~repro.apps.kvcache.KVCacheApp` — NetCache-style key/value
  cache with switch-resident hot items.
- :class:`~repro.apps.dbshuffle.DBShuffleApp` — database analytics
  filter-aggregate-reshuffle.
- :class:`~repro.apps.graphmining.GraphMiningApp` — BSP-style graph
  pattern mining rounds with frontier deduplication.
- :class:`~repro.apps.groupcomm.GroupCommApp` — switch-initiated group
  data transfer (multicast).
"""

from .base import (
    OP_DATA,
    OP_FLUSH,
    OP_GET,
    OP_PUT,
    OP_REPLY,
    coflow_arrivals,
)
from .dbshuffle import DBShuffleApp
from .graphmining import GraphMiningApp
from .groupcomm import GroupCommApp
from .kvcache import KVCacheApp
from .mergejoin import SortMergeJoinApp
from .paramserver import ParameterServerApp

__all__ = [
    "DBShuffleApp",
    "GraphMiningApp",
    "GroupCommApp",
    "KVCacheApp",
    "SortMergeJoinApp",
    "OP_DATA",
    "OP_FLUSH",
    "OP_GET",
    "OP_PUT",
    "OP_REPLY",
    "ParameterServerApp",
    "coflow_arrivals",
]
