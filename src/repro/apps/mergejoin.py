"""Streaming sort-merge join over TM1's order-preserving merge.

The payoff of section 3.1's expanded TM semantics: because TM1 "could
keep a sort order while it merges flows that are themselves sorted", the
central pipelines can run a *streaming* merge join — two sorted relations
arrive as flows, TM1 interleaves them in key order, and each central
partition joins matching keys with O(duplicates) state instead of
buffering a whole relation.

Without ordered delivery (classic FIFO TM), the same join needs a hash
table sized for the full build side; with it, the switch state is a pair
of per-key buffers that drain as soon as the key advances.  The app
*requires* an :class:`~repro.adcp.switch.ADCPSwitch` constructed with
``ordered_flows=[LEFT_FLOW, RIGHT_FLOW]``.

Placement note: any placement policy works, because each partition
receives a *subsequence* of the globally sorted stream — still sorted —
and both relations' copies of a key land on the same partition.
"""

from __future__ import annotations

from typing import Iterator

from ..arch.app import PipelineContext, SwitchApp
from ..arch.decision import Decision
from ..errors import ConfigError
from ..net.headers import OP_DATA, OP_FLUSH, OP_RESULT
from ..net.packet import Packet
from ..net.phv import PHV
from ..net.traffic import DeterministicSource, make_coflow_packet, merge_sources

LEFT_FLOW = 0
RIGHT_FLOW = 1

SENTINEL_BASE = 1 << 20
"""Relation keys must stay below this; sentinel keys live above it."""


class SortMergeJoinApp(SwitchApp):
    """Switch-resident streaming join of two sorted relations.

    Attributes:
        left_port / right_port: Ingress ports of the two relations.
        output_port: Where joined tuples are emitted.
    """

    def __init__(
        self,
        left_port: int,
        right_port: int,
        output_port: int,
        coflow_id: int = 23,
    ) -> None:
        super().__init__("mergejoin", elements_per_packet=1)
        if len({left_port, right_port, output_port}) != 3:
            raise ConfigError("join ports must be distinct")
        self.left_port = left_port
        self.right_port = right_port
        self.output_port = output_port
        self.coflow_id = coflow_id
        # Per-partition streaming state: the current key and the values
        # seen for it from each side.  Python-side mirrors of what the
        # data plane would keep in registers; sizes are O(duplicates).
        self._current_key: dict[int, int | None] = {}
        self._left_values: dict[int, list[int]] = {}
        self._right_values: dict[int, list[int]] = {}
        self.matches_emitted = 0
        self.max_buffered_values = 0

    def uses_central_state(self) -> bool:
        return True

    def ordered_flows(self) -> list[int]:
        """The flow ids the ADCP switch must register with TM1's merge."""
        return [LEFT_FLOW, RIGHT_FLOW]

    def placement_key(self, packet: Packet) -> int:
        if packet.payload is None or len(packet.payload) == 0:
            raise ConfigError("join packet carries no elements")
        return packet.payload[0].key

    # --- hooks -----------------------------------------------------------------------

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Join step: fold the tuple in; emit matches when the key closes.

        Correctness leans on TM1's guarantee: keys arrive nondecreasing
        per partition, so once a strictly larger key shows up, the
        previous key is complete and its matches can be emitted.
        """
        header = packet.header("coflow")
        if header["opcode"] != OP_DATA:
            return Decision.consume(*self._close_key(ctx.pipeline_index))
        assert packet.payload is not None
        element = packet.payload[0]
        partition = ctx.pipeline_index
        current = self._current_key.get(partition)

        emissions: list[Packet] = []
        if current is not None and element.key < current:
            raise ConfigError(
                f"key {element.key} after {current} on partition "
                f"{partition}: the switch was built without ordered_flows"
            )
        if current is not None and element.key > current:
            emissions.extend(self._close_key(partition))
        if self._current_key.get(partition) != element.key:
            self._current_key[partition] = element.key
            self._left_values[partition] = []
            self._right_values[partition] = []

        side = (
            self._left_values
            if header["flow_id"] == LEFT_FLOW
            else self._right_values
        )
        side[partition].append(element.value)
        buffered = len(self._left_values[partition]) + len(
            self._right_values[partition]
        )
        self.max_buffered_values = max(self.max_buffered_values, buffered)
        return Decision.consume(*emissions)

    def _close_key(self, partition: int) -> list[Packet]:
        """Emit the cross product of the completed key's two sides."""
        key = self._current_key.get(partition)
        if key is None:
            return []
        lefts = self._left_values.get(partition, [])
        rights = self._right_values.get(partition, [])
        self._current_key[partition] = None
        emissions: list[Packet] = []
        for left in lefts:
            for right in rights:
                result = make_coflow_packet(
                    self.coflow_id,
                    flow_id=0xFFFB,
                    seq=self.matches_emitted,
                    elements=[(key, left * 1_000_000 + right)],
                    opcode=OP_RESULT,
                )
                result.meta.egress_port = self.output_port
                emissions.append(result)
                self.matches_emitted += 1
        return emissions

    # --- workload ---------------------------------------------------------------------

    def workload(
        self,
        port_speed_bps: float,
        left: list[tuple[int, int]],
        right: list[tuple[int, int]],
    ) -> Iterator[tuple[float, Packet]]:
        """Two sorted relations as line-rate flows plus flush markers.

        ``left``/``right`` are (key, value) lists sorted by key.
        """
        for name, relation in (("left", left), ("right", right)):
            keys = [k for k, _ in relation]
            if keys != sorted(keys):
                raise ConfigError(f"{name} relation must be sorted by key")
            if keys and keys[-1] >= SENTINEL_BASE:
                raise ConfigError(
                    f"{name} relation keys must stay below {SENTINEL_BASE}"
                )
        sources = []
        for flow_id, port, relation, sentinel_base in (
            (LEFT_FLOW, self.left_port, left, SENTINEL_BASE),
            (RIGHT_FLOW, self.right_port, right, SENTINEL_BASE * 2),
        ):
            packets: list[Packet] = []
            seq = 0
            for key, value in relation:
                packet = make_coflow_packet(
                    self.coflow_id, flow_id, seq, [(key, value)],
                    opcode=OP_DATA, worker_id=flow_id,
                )
                packet.meta.ingress_port = port
                packets.append(packet)
                seq += 1
            # Per-partition sentinel keys close each partition's last real
            # key at the central hook (the flush below never reaches
            # central: TM1's merge front-end absorbs it).  Left and right
            # sentinels use disjoint key ranges so they never join.
            for key in self._sentinel_keys(sentinel_base):
                sentinel = make_coflow_packet(
                    self.coflow_id, flow_id, seq, [(key, 0)],
                    opcode=OP_DATA, worker_id=flow_id,
                )
                sentinel.meta.ingress_port = port
                packets.append(sentinel)
                seq += 1
            flush = make_coflow_packet(
                self.coflow_id, flow_id, seq,
                [(1 << 30, 0)], opcode=OP_FLUSH, worker_id=flow_id,
            )
            flush.meta.ingress_port = port
            packets.append(flush)
            sources.append(DeterministicSource(port, port_speed_bps, packets))
        return merge_sources(sources)

    def _sentinel_keys(self, base: int) -> list[int]:
        """Ascending keys >= base covering every state partition."""
        if self.placement_policy is None:
            raise ConfigError(
                "placement not bound yet: construct the switch before "
                "generating the workload"
            )
        needed = set(range(self.placement_policy.partitions))
        keys: list[int] = []
        key = base
        while needed:
            partition = self.placement_policy.place(key)
            if partition in needed:
                keys.append(key)
                needed.discard(partition)
            key += 1
            if key > base + 1_000_000:
                raise ConfigError("could not find sentinel keys")
        return sorted(keys)

    # --- verification -----------------------------------------------------------------

    @staticmethod
    def expected_join(
        left: list[tuple[int, int]], right: list[tuple[int, int]]
    ) -> set[tuple[int, int, int]]:
        """Ground truth: {(key, left_value, right_value)}."""
        from collections import defaultdict

        rights = defaultdict(list)
        for key, value in right:
            rights[key].append(value)
        matches = set()
        for key, left_value in left:
            for right_value in rights.get(key, []):
                matches.add((key, left_value, right_value))
        return matches

    @staticmethod
    def collect_matches(delivered: list[Packet]) -> set[tuple[int, int, int]]:
        matches = set()
        for packet in delivered:
            if packet.header("coflow")["opcode"] != OP_RESULT:
                continue
            assert packet.payload is not None
            for element in packet.payload:
                left, right = divmod(element.value, 1_000_000)
                matches.add((element.key, left, right))
        return matches
