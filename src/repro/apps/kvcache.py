"""NetCache-style in-network key/value cache (the paper's reference [19]).

Hot items live on the switch; GETs for cached keys are answered directly
from switch state, and misses are forwarded to the backing store's port.
PUTs write through: the switch updates its copy (if cached) and forwards
the write to the store.

The cache is the paper's canonical "hash table over coflows": its state is
keyed by *data* (the item key), not by port, so on RMT it must go scalar
and pay the state-placement tax; on the ADCP the hash table partitions
naturally across the central area and requests carrying up to
``array_width`` keys are served in one pass.
"""

from __future__ import annotations

import numpy as np

from ..arch.app import PipelineContext, SwitchApp
from ..arch.decision import Decision
from ..errors import ConfigError
from ..net.packet import Element, Packet
from ..net.phv import PHV
from ..net.traffic import make_coflow_packet
from .base import OP_GET, OP_PUT, OP_REPLY


class KVCacheApp(SwitchApp):
    """Switch-resident cache in front of a storage server.

    Attributes:
        server_port: Port of the backing store (miss traffic goes there).
        client_ports: Ports of the requesting clients, indexed by the
            ``worker_id`` header field.
        capacity_per_partition: Value-register cells per state partition.
        hot_items: Keys (with values) pre-installed by the control plane.
    """

    def __init__(
        self,
        server_port: int,
        client_ports: list[int],
        hot_items: dict[int, int],
        capacity_per_partition: int = 65536,
        elements_per_packet: int = 1,
        coflow_id: int = 7,
    ) -> None:
        super().__init__("kvcache", elements_per_packet)
        if not client_ports:
            raise ConfigError("cache needs at least one client port")
        if server_port in client_ports:
            raise ConfigError("server port must differ from client ports")
        if capacity_per_partition < 1:
            raise ConfigError("cache capacity must be positive")
        self.server_port = server_port
        self.client_ports = list(client_ports)
        self.capacity_per_partition = capacity_per_partition
        self.hot_items = dict(hot_items)
        self.coflow_id = coflow_id
        # Control-plane index: key -> (partition, register slot).  The
        # data plane would realize this as an exact-match table per
        # partition; the compiler experiments account for that memory.
        self._slot_of: dict[int, int] = {}
        self._slots_used: dict[int, int] = {}
        self._downloaded: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.replies_emitted = 0

    def uses_central_state(self) -> bool:
        return True

    def bind_placement(self, partitions: int) -> None:
        super().bind_placement(partitions)
        self._slot_of.clear()
        self._downloaded.clear()
        self._slots_used = {p: 0 for p in range(partitions)}
        for key in sorted(self.hot_items):
            self._install(key)

    def _install(self, key: int) -> int:
        assert self.placement_policy is not None
        partition = self.placement_policy.place(key)
        slot = self._slots_used[partition]
        if slot >= self.capacity_per_partition:
            raise ConfigError(
                f"partition {partition} is out of cache slots installing "
                f"key {key}"
            )
        self._slots_used[partition] = slot + 1
        self._slot_of[key] = slot
        return slot

    def placement_key(self, packet: Packet) -> int:
        if packet.payload is None or len(packet.payload) == 0:
            raise ConfigError("cache request carries no elements")
        return packet.payload[0].key

    # --- hooks -----------------------------------------------------------------------

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Serve GETs from switch state; write through PUTs; forward misses.

        Batched requests must be partition-local: every key of a multi-key
        packet must place to the same partition the packet was routed to
        (the application defines the placement, so it also owns the packet
        format — :meth:`request_stream` groups keys accordingly).
        """
        opcode = packet.header("coflow")["opcode"]
        values = ctx.register(
            "cache_values", self.capacity_per_partition, width_bits=64
        )
        valid = ctx.register(
            "cache_valid", self.capacity_per_partition, width_bits=1
        )
        assert packet.payload is not None
        assert self.placement_policy is not None
        for element in packet.payload:
            if (
                element.key in self._slot_of
                and self.placement_policy.place(element.key) != ctx.pipeline_index
            ):
                raise ConfigError(
                    f"cached key {element.key} batched into a packet placed "
                    f"on partition {ctx.pipeline_index}; batches must be "
                    f"partition-local"
                )
        if ctx.pipeline_index not in self._downloaded:
            # Control-plane download: preloaded hot items materialize in
            # this partition's registers on first touch.
            self._downloaded.add(ctx.pipeline_index)
            for key, value in self.hot_items.items():
                if self.placement_policy.place(key) != ctx.pipeline_index:
                    continue
                slot = self._slot_of[key]
                values.write(slot, value)
                valid.write(slot, 1)

        if opcode == OP_PUT:
            for element in packet.payload:
                slot = self._slot_of.get(element.key)
                if slot is not None:
                    values.write(slot, element.value)
                    valid.write(slot, 1)
            packet.meta.egress_port = self.server_port  # write-through
            return Decision.forward()

        if opcode != OP_GET:
            return Decision.forward()

        hit_elements: list[Element] = []
        miss_elements: list[Element] = []
        for element in packet.payload:
            slot = self._slot_of.get(element.key)
            if slot is not None and valid.read(slot):
                hit_elements.append(Element(element.key, values.read(slot)))
                self.hits += 1
            else:
                miss_elements.append(element)
                self.misses += 1

        worker = packet.header("coflow")["worker_id"]
        if worker >= len(self.client_ports):
            raise ConfigError(f"request from unknown worker {worker}")
        client_port = self.client_ports[worker]

        emissions: list[Packet] = []
        if hit_elements:
            emissions.append(self._reply_packet(hit_elements, client_port, worker))
        if miss_elements:
            # The remaining keys travel on to the store as a trimmed request.
            miss = make_coflow_packet(
                self.coflow_id,
                packet.header("coflow")["flow_id"],
                packet.header("coflow")["seq"],
                [(e.key, e.value) for e in miss_elements],
                opcode=OP_GET,
                worker_id=worker,
            )
            miss.meta.egress_port = self.server_port
            emissions.append(miss)
        return Decision.consume(*emissions)

    def _reply_packet(
        self, elements: list[Element], client_port: int, worker: int
    ) -> Packet:
        reply = make_coflow_packet(
            self.coflow_id,
            flow_id=0xFFFE,
            seq=self.replies_emitted,
            elements=[(e.key, e.value) for e in elements],
            opcode=OP_REPLY,
            worker_id=worker,
        )
        reply.meta.egress_port = client_port
        self.replies_emitted += 1
        return reply

    # --- workload ---------------------------------------------------------------------

    def request_stream(
        self,
        num_requests: int,
        rng: np.random.Generator,
        zipf_s: float = 1.2,
        key_space: int | None = None,
    ) -> list[Packet]:
        """Zipf-skewed GET requests from round-robin clients.

        Skewed access is the NetCache setting: a few hot keys dominate,
        which is why a small switch cache absorbs most load.
        """
        if num_requests < 1:
            raise ConfigError("need at least one request")
        space = key_space or max(self.hot_items, default=0) * 4 + 64
        ranks = rng.zipf(zipf_s, size=num_requests * self.elements_per_packet)
        keys = [int(r - 1) % space for r in ranks]
        batches = self._partition_local_batches(keys, num_requests)
        packets: list[Packet] = []
        for i, batch in enumerate(batches):
            worker = i % len(self.client_ports)
            packet = make_coflow_packet(
                self.coflow_id,
                flow_id=worker,
                seq=i,
                elements=[(k, 0) for k in batch],
                opcode=OP_GET,
                worker_id=worker,
            )
            packet.meta.ingress_port = self.client_ports[worker]
            packets.append(packet)
        return packets

    def _partition_local_batches(
        self, keys: list[int], num_requests: int
    ) -> list[list[int]]:
        """Group keys into batches that respect partition locality.

        Scalar requests pass through unchanged; wide requests bucket keys
        by placement partition (when a policy is bound) so every batch is
        servable on one central pipeline.
        """
        if self.elements_per_packet == 1:
            return [[k] for k in keys[:num_requests]]
        if self.placement_policy is None:
            groups: dict[int, list[int]] = {0: list(keys)}
        else:
            groups = {}
            for key in keys:
                groups.setdefault(self.placement_policy.place(key), []).append(key)
        batches: list[list[int]] = []
        for _, bucket in sorted(groups.items()):
            for start in range(0, len(bucket), self.elements_per_packet):
                batches.append(bucket[start : start + self.elements_per_packet])
        return batches[:num_requests]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
