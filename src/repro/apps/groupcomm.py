"""Switch-initiated group communication (Table 1, row 4).

"The switch initiates group data transfer within servers running the same
application even if some of the servers have different NIC capabilities."
(The paper's reference [16], zero-sided RDMA shuffling.)

A sender addresses a *group id*, not a port list; the switch resolves the
membership from its own state and replicates the payload to every member.
Membership is data-keyed state (group id -> member set), so it is central
state in the architectural sense: on RMT it pins to a pipeline, on the
ADCP it lives in the global area and the replicated copies can exit any
port via TM2.
"""

from __future__ import annotations

from typing import Iterator

from ..arch.app import PipelineContext, SwitchApp
from ..arch.decision import Decision
from ..errors import ConfigError
from ..net.packet import Packet
from ..net.phv import PHV
from ..net.traffic import DeterministicSource, make_coflow_packet, merge_sources
from .base import OP_DATA


class GroupCommApp(SwitchApp):
    """Group-id addressed multicast with switch-resident membership.

    Attributes:
        groups: Mapping from group id to the member ports.
    """

    def __init__(
        self,
        groups: dict[int, list[int]],
        elements_per_packet: int = 1,
        coflow_id: int = 17,
    ) -> None:
        super().__init__("groupcomm", elements_per_packet)
        if not groups:
            raise ConfigError("need at least one group")
        for gid, members in groups.items():
            if not members:
                raise ConfigError(f"group {gid} has no members")
            if len(set(members)) != len(members):
                raise ConfigError(f"group {gid} has duplicate members")
        self.groups = {gid: list(members) for gid, members in groups.items()}
        self.coflow_id = coflow_id
        self.transfers_started = 0
        self.copies_created = 0

    def uses_central_state(self) -> bool:
        return True

    def placement_key(self, packet: Packet) -> int:
        """Groups place by group id (carried in the first element key)."""
        if packet.payload is None or len(packet.payload) == 0:
            raise ConfigError("group packet carries no elements")
        return packet.payload[0].key

    # --- hooks -----------------------------------------------------------------------

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        """Resolve the group and fan the payload out to every member."""
        if packet.header("coflow")["opcode"] != OP_DATA:
            return Decision.forward()
        assert packet.payload is not None
        group_id = packet.payload[0].key
        members = self.groups.get(group_id)
        if members is None:
            return Decision.drop("unknown_group")
        self.transfers_started += 1
        copy = packet.copy()
        copy.meta.egress_ports = tuple(members)
        copy.meta.central_done = True
        self.copies_created += len(members)
        return Decision.consume(copy)

    # --- workload ---------------------------------------------------------------------

    def workload(
        self,
        port_speed_bps: float,
        senders: dict[int, int],
        transfers_per_sender: int,
    ) -> Iterator[tuple[float, Packet]]:
        """``senders`` maps sender port -> group id it addresses."""
        if transfers_per_sender < 1:
            raise ConfigError("need at least one transfer per sender")
        sources = []
        for worker, (port, group_id) in enumerate(sorted(senders.items())):
            if group_id not in self.groups:
                raise ConfigError(f"sender on port {port} targets unknown group {group_id}")
            packets: list[Packet] = []
            for seq in range(transfers_per_sender):
                elements = [(group_id, seq)] + [
                    (group_id, seq * 1000 + i)
                    for i in range(1, self.elements_per_packet)
                ]
                packet = make_coflow_packet(
                    self.coflow_id, worker, seq, elements,
                    opcode=OP_DATA, worker_id=worker,
                )
                packet.meta.ingress_port = port
                packets.append(packet)
            sources.append(DeterministicSource(port, port_speed_bps, packets))
        return merge_sources(sources)

    @staticmethod
    def deliveries_per_port(delivered: list[Packet]) -> dict[int, int]:
        """Count of delivered copies per egress port."""
        counts: dict[int, int] = {}
        for packet in delivered:
            port = packet.meta.egress_port
            if port is not None:
                counts[port] = counts.get(port, 0) + 1
        return counts
