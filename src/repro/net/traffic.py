"""Traffic sources: turn flow descriptions into timed packet streams.

Sources generate ``(arrival_time, Packet)`` pairs for a port.  Two arrival
processes are provided: deterministic (back-to-back at a configured rate,
the worst case line-rate pattern the paper's frequency math assumes) and
Poisson (for queueing behaviour in the traffic managers).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ConfigError
from ..units import BITS_PER_BYTE
from .headers import coflow_header, standard_stack
from .packet import Element, ElementArray, Packet

_TEMPLATE_HEADERS: list | None = None


def make_coflow_packet(
    coflow_id: int,
    flow_id: int,
    seq: int,
    elements: list[tuple[int, int]],
    element_width_bytes: int = 8,
    opcode: int = 0,
    worker_id: int = 0,
    round_: int = 0,
    src_ip: int = 0,
    dst_ip: int = 0,
) -> Packet:
    """Build a fully-formed coflow packet (Eth/IP/UDP/coflow + array).

    Workload generators call this once per packet, so the fixed parts of
    the stack (Ethernet/IPv4/UDP with their next-protocol wiring) come
    from a shared template and only the variable fields are set — with
    the same range validation ``instantiate`` performs.
    """
    global _TEMPLATE_HEADERS
    template = _TEMPLATE_HEADERS
    if template is None:
        template = _TEMPLATE_HEADERS = standard_stack()
        template.append(coflow_header(0, 0))
    eth, ip, udp, coflow = (h.copy() for h in template)
    if src_ip or dst_ip:
        ip["src_ip"] = src_ip
        ip["dst_ip"] = dst_ip
    coflow["coflow_id"] = coflow_id
    coflow["flow_id"] = flow_id
    coflow["seq"] = seq
    coflow["opcode"] = opcode
    coflow["element_count"] = len(elements)
    coflow["element_width_bytes"] = element_width_bytes
    coflow["worker_id"] = worker_id
    coflow["round"] = round_
    payload = ElementArray(
        [Element(k, v) for k, v in elements], element_width_bytes
    )
    return Packet([eth, ip, udp, coflow], payload)


class TrafficSource:
    """Base class: an iterator of timed packets bound to an ingress port."""

    def __init__(self, port: int, start_time: float = 0.0) -> None:
        if port < 0:
            raise ConfigError(f"port must be non-negative, got {port}")
        self.port = port
        self.start_time = start_time

    def packets(self) -> Iterator[tuple[float, Packet]]:
        """Yield (arrival_time_seconds, packet) in nondecreasing time order."""
        raise NotImplementedError


class DeterministicSource(TrafficSource):
    """Back-to-back packets at a fixed link rate.

    Each packet's start time follows the previous packet's wire time
    exactly, i.e. the link runs at 100% utilization — the case that pins a
    pipeline at its peak packet rate.
    """

    def __init__(
        self,
        port: int,
        link_bps: float,
        packets: list[Packet],
        start_time: float = 0.0,
    ) -> None:
        super().__init__(port, start_time)
        if link_bps <= 0:
            raise ConfigError(f"link speed must be positive, got {link_bps}")
        self.link_bps = link_bps
        self._packets = packets

    def packets(self) -> Iterator[tuple[float, Packet]]:
        time = self.start_time
        for packet in self._packets:
            packet.meta.ingress_port = self.port
            packet.meta.arrival_time = time
            yield time, packet
            time += packet.wire_bytes * BITS_PER_BYTE / self.link_bps


class PoissonSource(TrafficSource):
    """Packets with exponential inter-arrivals at a target load.

    ``load`` is the fraction of ``link_bps`` consumed on average; the
    source thins arrivals so the long-run offered rate matches.
    """

    def __init__(
        self,
        port: int,
        link_bps: float,
        packets: list[Packet],
        load: float,
        rng: np.random.Generator,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(port, start_time)
        if link_bps <= 0:
            raise ConfigError(f"link speed must be positive, got {link_bps}")
        if not 0.0 < load <= 1.0:
            raise ConfigError(f"load must be in (0, 1], got {load}")
        self.link_bps = link_bps
        self.load = load
        self._packets = packets
        self._rng = rng

    def packets(self) -> Iterator[tuple[float, Packet]]:
        if not self._packets:
            return
        mean_wire_bits = (
            sum(p.wire_bytes for p in self._packets)
            * BITS_PER_BYTE
            / len(self._packets)
        )
        rate_pps = self.link_bps * self.load / mean_wire_bits
        time = self.start_time
        for packet in self._packets:
            time += float(self._rng.exponential(1.0 / rate_pps))
            packet.meta.ingress_port = self.port
            packet.meta.arrival_time = time
            yield time, packet


def batch_arrivals(
    timed_packets,
) -> Iterator[tuple[float, list[Packet]]]:
    """Group a time-ordered ``(time, packet)`` stream into clock edges.

    Yields ``(time, [packets...])`` with one entry per distinct
    timestamp, packets in stream order.  Used by the switch run loops to
    admit a whole same-timestamp burst with one kernel event instead of
    one event per packet: because every injection is scheduled at the
    default priority and the kernel breaks (time, priority) ties by
    schedule order, servicing the burst in stream order inside one event
    dispatches in exactly the order the per-packet events would have.
    """
    batch_time: float | None = None
    batch: list[Packet] = []
    for time, packet in timed_packets:
        if time != batch_time and batch:
            yield batch_time, batch
            batch = []
        batch_time = time
        batch.append(packet)
    if batch:
        yield batch_time, batch


def merge_sources(sources: list[TrafficSource]) -> Iterator[tuple[float, Packet]]:
    """Merge several sources into one globally time-ordered stream.

    Uses a k-way merge over the per-source iterators, which are each
    time-ordered by construction.
    """
    import heapq

    streams = []
    for index, source in enumerate(sources):
        iterator = source.packets()
        first = next(iterator, None)
        if first is not None:
            time, packet = first
            streams.append((time, index, packet, iterator))
    heapq.heapify(streams)
    while streams:
        time, index, packet, iterator = heapq.heappop(streams)
        yield time, packet
        nxt = next(iterator, None)
        if nxt is not None:
            next_time, next_packet = nxt
            heapq.heappush(streams, (next_time, index, next_packet, iterator))
