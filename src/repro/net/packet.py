"""Packets and array payloads.

The paper's second architectural challenge is "breaking the notion that a
packet is a unit of information": a packet routinely carries an *array* of
data elements (weights, key/value pairs), each of which needs its own
match-action lookup.  :class:`ElementArray` models that payload explicitly,
and :class:`Packet` carries a header stack plus at most one element array,
along with the switch-internal metadata (ingress port, timestamps) that
forwarding decisions read and write.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigError
from ..units import (
    ETHERNET_FCS_BYTES,
    ETHERNET_MIN_FRAME_BYTES,
    ETHERNET_OVERHEAD_BYTES,
)
from .headers import Header

_packet_ids = itertools.count()


@dataclass
class Element:
    """One data element of an array payload: a key and a value.

    Pure-value payloads (e.g. ML weights) use ``key`` as the element index;
    key/value workloads (caches, joins) use both.
    """

    key: int
    value: int


class ElementArray:
    """A fixed-element-width array payload.

    ``element_width_bytes`` covers one key+value pair on the wire; the
    goodput math in :mod:`repro.coflow.metrics` uses it to compare packing
    schemes (1 element per packet vs 16).
    """

    def __init__(
        self,
        elements: Iterable[Element] | Sequence[tuple[int, int]],
        element_width_bytes: int = 8,
    ) -> None:
        if element_width_bytes <= 0:
            raise ConfigError(
                f"element width must be positive, got {element_width_bytes}"
            )
        converted: list[Element] = []
        for item in elements:
            if isinstance(item, Element):
                converted.append(item)
            else:
                key, value = item
                converted.append(Element(key, value))
        self.elements = converted
        self.element_width_bytes = element_width_bytes

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __getitem__(self, index: int) -> Element:
        return self.elements[index]

    @property
    def width_bytes(self) -> int:
        """Total payload bytes occupied by the array."""
        return len(self.elements) * self.element_width_bytes

    def keys(self) -> list[int]:
        return [e.key for e in self.elements]

    def values(self) -> list[int]:
        return [e.value for e in self.elements]

    def copy(self) -> "ElementArray":
        return ElementArray(
            [Element(e.key, e.value) for e in self.elements],
            self.element_width_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ElementArray n={len(self.elements)} w={self.element_width_bytes}B>"


@dataclass
class PacketMetadata:
    """Switch-internal metadata that travels with a packet but not on the wire."""

    ingress_port: int | None = None
    egress_port: int | None = None
    egress_ports: tuple[int, ...] = ()  # multicast fan-out, if any
    ingress_pipeline: int | None = None
    egress_pipeline: int | None = None
    central_pipeline: int | None = None
    lane: int | None = None  # ADCP demux lane within a port
    arrival_time: float = 0.0
    departure_time: float = 0.0
    recirculations: int = 0
    drop_reason: str | None = None
    central_done: bool = False
    """Whether the app's stateful (central) hook already ran on this packet."""

    @property
    def dropped(self) -> bool:
        return self.drop_reason is not None


class Packet:
    """A header stack plus an optional array payload plus metadata.

    ``extra_payload_bytes`` accounts for opaque payload beyond the element
    array (padding, application framing) so total sizes can match any wire
    format under study.
    """

    def __init__(
        self,
        headers: Sequence[Header],
        payload: ElementArray | None = None,
        extra_payload_bytes: int = 0,
    ) -> None:
        if extra_payload_bytes < 0:
            raise ConfigError(
                f"extra payload must be non-negative, got {extra_payload_bytes}"
            )
        self.headers = list(headers)
        self.payload = payload
        self.extra_payload_bytes = extra_payload_bytes
        self.meta = PacketMetadata()
        self.packet_id = next(_packet_ids)

    # --- header access -------------------------------------------------------

    def header(self, type_name: str) -> Header:
        """Return the first header of the given type name."""
        for header in self.headers:
            if header.type.name == type_name:
                return header
        raise ConfigError(f"packet has no {type_name!r} header")

    def has_header(self, type_name: str) -> bool:
        return any(h.type.name == type_name for h in self.headers)

    # --- sizes ----------------------------------------------------------------

    @property
    def header_bytes(self) -> int:
        return sum(h.type.width_bytes for h in self.headers)

    @property
    def payload_bytes(self) -> int:
        array = self.payload.width_bytes if self.payload else 0
        return array + self.extra_payload_bytes

    @property
    def frame_bytes(self) -> int:
        """Ethernet frame size, padded to the 64 B minimum, including FCS."""
        raw = self.header_bytes + self.payload_bytes + ETHERNET_FCS_BYTES
        return max(raw, ETHERNET_MIN_FRAME_BYTES)

    @property
    def wire_bytes(self) -> int:
        """Wire footprint: frame plus preamble and inter-frame gap."""
        return self.frame_bytes + ETHERNET_OVERHEAD_BYTES

    @property
    def goodput_bytes(self) -> int:
        """Application-useful bytes: the element array only."""
        return self.payload.width_bytes if self.payload else 0

    @property
    def element_count(self) -> int:
        return len(self.payload) if self.payload else 0

    def copy(self) -> "Packet":
        """Deep copy with fresh packet id and reset metadata."""
        clone = Packet(
            [h.copy() for h in self.headers],
            self.payload.copy() if self.payload else None,
            self.extra_payload_bytes,
        )
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = "/".join(h.type.name for h in self.headers)
        return (
            f"<Packet #{self.packet_id} {names} "
            f"{self.frame_bytes}B elems={self.element_count}>"
        )
