"""Packets and array payloads.

The paper's second architectural challenge is "breaking the notion that a
packet is a unit of information": a packet routinely carries an *array* of
data elements (weights, key/value pairs), each of which needs its own
match-action lookup.  :class:`ElementArray` models that payload explicitly,
and :class:`Packet` carries a header stack plus at most one element array,
along with the switch-internal metadata (ingress port, timestamps) that
forwarding decisions read and write.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigError
from ..units import (
    ETHERNET_FCS_BYTES,
    ETHERNET_MIN_FRAME_BYTES,
    ETHERNET_OVERHEAD_BYTES,
)
from .headers import Header

_packet_ids = itertools.count()


def consume_packet_id() -> int:
    """Draw (and discard) the next global packet id.

    Fast paths that skip constructing a transient :class:`Packet` (e.g.
    the deparser bypass in ``Pipeline.service``) call this so the id
    stream — and therefore every downstream packet's id — is identical
    to the instrumented path's.
    """
    return next(_packet_ids)


@dataclass
class Element:
    """One data element of an array payload: a key and a value.

    Pure-value payloads (e.g. ML weights) use ``key`` as the element index;
    key/value workloads (caches, joins) use both.
    """

    key: int
    value: int


class ElementArray:
    """A fixed-element-width array payload.

    ``element_width_bytes`` covers one key+value pair on the wire; the
    goodput math in :mod:`repro.coflow.metrics` uses it to compare packing
    schemes (1 element per packet vs 16).
    """

    def __init__(
        self,
        elements: Iterable[Element] | Sequence[tuple[int, int]],
        element_width_bytes: int = 8,
    ) -> None:
        if element_width_bytes <= 0:
            raise ConfigError(
                f"element width must be positive, got {element_width_bytes}"
            )
        converted: list[Element] = []
        for item in elements:
            if isinstance(item, Element):
                converted.append(item)
            else:
                key, value = item
                converted.append(Element(key, value))
        self.elements = converted
        self.element_width_bytes = element_width_bytes

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __getitem__(self, index: int) -> Element:
        return self.elements[index]

    @property
    def width_bytes(self) -> int:
        """Total payload bytes occupied by the array."""
        return len(self.elements) * self.element_width_bytes

    def keys(self) -> list[int]:
        return [e.key for e in self.elements]

    def values(self) -> list[int]:
        return [e.value for e in self.elements]

    def copy(self) -> "ElementArray":
        return ElementArray(
            [Element(e.key, e.value) for e in self.elements],
            self.element_width_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ElementArray n={len(self.elements)} w={self.element_width_bytes}B>"


@dataclass(slots=True)
class PacketMetadata:
    """Switch-internal metadata that travels with a packet but not on the wire."""

    ingress_port: int | None = None
    egress_port: int | None = None
    egress_ports: tuple[int, ...] = ()  # multicast fan-out, if any
    ingress_pipeline: int | None = None
    egress_pipeline: int | None = None
    central_pipeline: int | None = None
    lane: int | None = None  # ADCP demux lane within a port
    arrival_time: float = 0.0
    departure_time: float = 0.0
    origin_time: float | None = None
    """First transmission time at the originating host NIC, surviving
    per-hop meta resets (:func:`~repro.fabric.link.switch_handoff`) so
    serve mode can report end-to-end latency.  Result packets emitted by
    an aggregation inherit the origin of the data packet that completed
    the chunk.  None for runs that don't track end-to-end latency."""
    recirculations: int = 0
    drop_reason: str | None = None
    central_done: bool = False
    """Whether the app's stateful (central) hook already ran on this packet."""
    span: int | None = None
    """Span id attached by head-based sampling at injection, surviving
    per-hop meta resets (:func:`~repro.fabric.link.switch_handoff`) so one
    sampled packet — and every ``OP_RESULT`` emission it triggers, which
    inherits the id — yields a causal cross-switch trace.  None for
    unsampled packets; see :mod:`repro.telemetry.spans`."""

    @property
    def dropped(self) -> bool:
        return self.drop_reason is not None


class Packet:
    """A header stack plus an optional array payload plus metadata.

    ``extra_payload_bytes`` accounts for opaque payload beyond the element
    array (padding, application framing) so total sizes can match any wire
    format under study.
    """

    def __init__(
        self,
        headers: Sequence[Header],
        payload: ElementArray | None = None,
        extra_payload_bytes: int = 0,
    ) -> None:
        if extra_payload_bytes < 0:
            raise ConfigError(
                f"extra payload must be non-negative, got {extra_payload_bytes}"
            )
        self._headers = list(headers)
        self._payload = payload
        self.extra_payload_bytes = extra_payload_bytes
        self.meta = PacketMetadata()
        self.packet_id = next(_packet_ids)
        # Size, header-index, and parser-verdict caches, rebuilt lazily
        # after the headers or payload attribute is reassigned (the only
        # mutations the pipeline performs).
        self._sizes: tuple[int, int, int, int] | None = None
        self._by_type: dict[str, Header] | None = None
        self._accepts_memo: tuple | None = None

    # --- header access -------------------------------------------------------

    @property
    def headers(self) -> list[Header]:
        return self._headers

    @headers.setter
    def headers(self, value) -> None:
        self._headers = value if type(value) is list else list(value)
        self._sizes = None
        self._by_type = None
        self._accepts_memo = None

    @property
    def payload(self) -> ElementArray | None:
        return self._payload

    @payload.setter
    def payload(self, value: ElementArray | None) -> None:
        self._payload = value
        self._sizes = None
        self._accepts_memo = None

    def _header_index(self) -> dict[str, Header]:
        """First-header-of-each-type lookup table (parse/deparse hot path)."""
        index = self._by_type
        if index is None:
            index = {}
            for header in self._headers:
                index.setdefault(header.type.name, header)
            self._by_type = index
        return index

    def header(self, type_name: str) -> Header:
        """Return the first header of the given type name."""
        header = self._header_index().get(type_name)
        if header is None:
            raise ConfigError(f"packet has no {type_name!r} header")
        return header

    def has_header(self, type_name: str) -> bool:
        return type_name in self._header_index()

    # --- sizes ----------------------------------------------------------------

    def _size_tuple(self) -> tuple[int, int, int, int]:
        sizes = self._sizes
        if sizes is None:
            header_bytes = sum(h.type._width_bytes for h in self._headers)
            payload = self._payload
            payload_bytes = (
                payload.width_bytes if payload else 0
            ) + self.extra_payload_bytes
            frame = max(
                header_bytes + payload_bytes + ETHERNET_FCS_BYTES,
                ETHERNET_MIN_FRAME_BYTES,
            )
            sizes = self._sizes = (
                header_bytes,
                payload_bytes,
                frame,
                frame + ETHERNET_OVERHEAD_BYTES,
            )
        return sizes

    @property
    def header_bytes(self) -> int:
        return self._size_tuple()[0]

    @property
    def payload_bytes(self) -> int:
        return self._size_tuple()[1]

    @property
    def frame_bytes(self) -> int:
        """Ethernet frame size, padded to the 64 B minimum, including FCS."""
        return self._size_tuple()[2]

    @property
    def wire_bytes(self) -> int:
        """Wire footprint: frame plus preamble and inter-frame gap."""
        return self._size_tuple()[3]

    @property
    def goodput_bytes(self) -> int:
        """Application-useful bytes: the element array only."""
        return self._payload.width_bytes if self._payload else 0

    @property
    def element_count(self) -> int:
        payload = self._payload
        return len(payload.elements) if payload else 0

    def copy(self) -> "Packet":
        """Deep copy with fresh packet id and reset metadata."""
        clone = Packet(
            [h.copy() for h in self._headers],
            self._payload.copy() if self._payload else None,
            self.extra_payload_bytes,
        )
        # A copy starts bit-identical, so it can share the parent's size
        # tuple and parser verdict (immutable; both sides invalidate on
        # header mutation).
        clone._sizes = self._sizes
        clone._accepts_memo = self._accepts_memo
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = "/".join(h.type.name for h in self.headers)
        return (
            f"<Packet #{self.packet_id} {names} "
            f"{self.frame_bytes}B elems={self.element_count}>"
        )
