"""Declarative packet header formats.

A :class:`HeaderType` is an ordered list of :class:`FieldSpec` (name, width
in bits); a :class:`Header` is an instance with concrete field values.  The
module ships the standard Ethernet/IPv4/UDP stack plus the application
header the in-network apps use: a *coflow header* carrying coflow id, flow
id, sequence number, operation code, and an element count describing the
array payload that follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass(frozen=True)
class FieldSpec:
    """One field of a header: a name and a bit width."""

    name: str
    width_bits: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("field name must be non-empty")
        if self.width_bits <= 0:
            raise ConfigError(
                f"field {self.name!r} width must be positive, got {self.width_bits}"
            )

    @property
    def max_value(self) -> int:
        return (1 << self.width_bits) - 1


@dataclass(frozen=True)
class HeaderType:
    """An ordered, fixed-layout header format."""

    name: str
    fields: tuple[FieldSpec, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise ConfigError(f"header type {self.name!r} has no fields")
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ConfigError(f"header type {self.name!r} has duplicate fields")
        # Layout caches: header types are frozen, and field lookups /
        # width sums sit on the per-packet parse and deparse paths, so
        # pay for them once at construction.
        object.__setattr__(self, "_by_name", {f.name: f for f in self.fields})
        object.__setattr__(
            self, "_max_by_name", {f.name: f.max_value for f in self.fields}
        )
        object.__setattr__(self, "_zero_values", {f.name: 0 for f in self.fields})
        bits = sum(f.width_bits for f in self.fields)
        object.__setattr__(self, "_width_bits", bits)
        object.__setattr__(self, "_width_bytes", (bits + 7) // 8)
        # Deparse plan: per field, the PHV-qualified name ("type.field"),
        # the bare field name, and the max value for range re-checks.
        object.__setattr__(
            self,
            "_deparse_plan",
            tuple(
                (f"{self.name}.{f.name}", f.name, f.max_value)
                for f in self.fields
            ),
        )

    @property
    def width_bits(self) -> int:
        return self._width_bits

    @property
    def width_bytes(self) -> int:
        return self._width_bytes

    def field(self, name: str) -> FieldSpec:
        spec = self._by_name.get(name)
        if spec is None:
            raise ConfigError(f"header type {self.name!r} has no field {name!r}")
        return spec

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def instantiate(self, **values: int) -> "Header":
        """Create a header instance, defaulting unset fields to zero."""
        return Header(self, dict(values))


class Header:
    """A concrete header: a type plus field values.

    Values are plain ints, range-checked against field widths on set.
    """

    def __init__(self, header_type: HeaderType, values: dict[str, int] | None = None):
        self.type = header_type
        self._values: dict[str, int] = dict(header_type._zero_values)
        if values:
            for name, value in values.items():
                self[name] = value

    def __getitem__(self, name: str) -> int:
        if name not in self._values:
            raise ConfigError(
                f"header {self.type.name!r} has no field {name!r}"
            )
        return self._values[name]

    def __setitem__(self, name: str, value: int) -> None:
        max_value = self.type._max_by_name.get(name)
        if max_value is None:
            self.type.field(name)  # raises the no-such-field ConfigError
        if not 0 <= value <= max_value:
            spec = self.type.field(name)
            raise ConfigError(
                f"value {value} out of range for {self.type.name}.{name} "
                f"({spec.width_bits} bits)"
            )
        self._values[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def items(self):
        return self._values.items()

    def copy(self) -> "Header":
        # Values in an existing header already passed range validation,
        # so the copy skips __init__ entirely (deparse copies every
        # header of every serviced packet).
        clone = Header.__new__(Header)
        clone.type = self.type
        clone._values = dict(self._values)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Header):
            return NotImplemented
        return self.type == other.type and self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in self._values.items())
        return f"<{self.type.name} {inner}>"


# --- Standard header formats -------------------------------------------------

ETHERNET = HeaderType(
    "ethernet",
    (
        FieldSpec("dst_mac", 48),
        FieldSpec("src_mac", 48),
        FieldSpec("ethertype", 16),
    ),
)

IPV4 = HeaderType(
    "ipv4",
    (
        FieldSpec("version_ihl", 8),
        FieldSpec("dscp_ecn", 8),
        FieldSpec("total_length", 16),
        FieldSpec("identification", 16),
        FieldSpec("flags_fragment", 16),
        FieldSpec("ttl", 8),
        FieldSpec("protocol", 8),
        FieldSpec("checksum", 16),
        FieldSpec("src_ip", 32),
        FieldSpec("dst_ip", 32),
    ),
)

UDP = HeaderType(
    "udp",
    (
        FieldSpec("src_port", 16),
        FieldSpec("dst_port", 16),
        FieldSpec("length", 16),
        FieldSpec("checksum", 16),
    ),
)

COFLOW_HEADER = HeaderType(
    "coflow",
    (
        FieldSpec("coflow_id", 32),
        FieldSpec("flow_id", 32),
        FieldSpec("seq", 32),
        FieldSpec("opcode", 8),
        FieldSpec("element_count", 8),
        FieldSpec("element_width_bytes", 8),
        FieldSpec("worker_id", 16),
        FieldSpec("round", 16),
    ),
)

ETHERTYPE_IPV4 = 0x0800
IP_PROTO_UDP = 17
COFLOW_UDP_PORT = 0x4D43  # "MC": the in-network compute service port

# --- coflow opcodes -----------------------------------------------------------
# Wire-level operation codes carried in the coflow header's ``opcode``
# field.  Defined here (not in repro.apps) because switch models also
# interpret some of them (e.g. FLUSH finishing a merge-scheduled flow).

OP_DATA = 0
"""Payload-bearing packet of an input flow."""

OP_FLUSH = 1
"""End-of-flow marker: tells streaming operators to emit partials and
order-preserving schedulers that the flow is complete."""

OP_GET = 2
"""Key/value read request."""

OP_PUT = 3
"""Key/value write request."""

OP_REPLY = 4
"""Switch-generated response."""

OP_RESULT = 5
"""Switch-generated result of an aggregate computation."""


def standard_stack(
    src_ip: int = 0,
    dst_ip: int = 0,
    src_port: int = 0,
    dst_port: int = COFLOW_UDP_PORT,
) -> list[Header]:
    """Ethernet/IPv4/UDP headers wired together with correct next-protocol
    fields, ready to prepend to an application header."""
    eth = ETHERNET.instantiate(ethertype=ETHERTYPE_IPV4)
    ip = IPV4.instantiate(
        version_ihl=0x45, ttl=64, protocol=IP_PROTO_UDP, src_ip=src_ip, dst_ip=dst_ip
    )
    udp = UDP.instantiate(src_port=src_port, dst_port=dst_port)
    return [eth, ip, udp]


def coflow_header(
    coflow_id: int,
    flow_id: int,
    seq: int = 0,
    opcode: int = 0,
    element_count: int = 0,
    element_width_bytes: int = 4,
    worker_id: int = 0,
    round_: int = 0,
) -> Header:
    """Build a coflow application header."""
    return COFLOW_HEADER.instantiate(
        coflow_id=coflow_id,
        flow_id=flow_id,
        seq=seq,
        opcode=opcode,
        element_count=element_count,
        element_width_bytes=element_width_bytes,
        worker_id=worker_id,
        round=round_,
    )
