"""Programmable packet parsing.

Parsers in programmable switches are state machines over a *parse graph*
(Gibb et al., cited by the paper as [11]): each state extracts one header
and selects the next state from a field value.  The paper leans on the
observation that "parsing efficiency is linked to the complexity of
structure within packets rather than port speed", which this model makes
measurable: the parser reports how many states it visited and how many
bytes it examined per packet.

The ADCP extension is array extraction: a terminal state may extract the
packet's :class:`~repro.net.packet.ElementArray` into a PHV array view, up
to a configurable width, which is the entry point for array processing in
the pipeline (section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError, ParseError
from .headers import HeaderType
from .packet import Packet
from .phv import PHV, PHVLayout, containers_needed


@dataclass
class ParseState:
    """One state of the parse graph.

    Attributes:
        name: State label; ``"accept"`` and ``"reject"`` are reserved.
        header_type: Header extracted on entering this state (None for a
            metadata-only state).
        select_field: Field of the just-extracted header whose value picks
            the next state.  None means unconditional transition.
        transitions: Mapping from select-field value to next state name;
            the ``default`` key gives the fallback.
        extract_array: When set, extract the packet's element array into a
            PHV array view of this name.
        max_array_elements: Cap on extracted elements (the hardware's lane
            width); extra elements raise ParseError, as the program and the
            packet format must agree.
    """

    name: str
    header_type: HeaderType | None = None
    select_field: str | None = None
    transitions: dict[int | str, str] = field(default_factory=dict)
    extract_array: str | None = None
    max_array_elements: int = 16

    def next_state(self, selector: int | None) -> str:
        if self.select_field is None or selector is None:
            return str(self.transitions.get("default", "accept"))
        if selector in self.transitions:
            return str(self.transitions[selector])
        if "default" in self.transitions:
            return str(self.transitions["default"])
        return "reject"


class ParseGraph:
    """A named collection of parse states with a start state."""

    RESERVED = ("accept", "reject")

    def __init__(self, start: str = "start") -> None:
        self.start = start
        self._states: dict[str, ParseState] = {}

    def add(self, state: ParseState) -> "ParseGraph":
        if state.name in self.RESERVED:
            raise ConfigError(f"state name {state.name!r} is reserved")
        if state.name in self._states:
            raise ConfigError(f"duplicate parse state {state.name!r}")
        self._states[state.name] = state
        return self

    def state(self, name: str) -> ParseState:
        if name not in self._states:
            raise ConfigError(f"parse graph has no state {name!r}")
        return self._states[name]

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def __len__(self) -> int:
        return len(self._states)

    def validate(self) -> None:
        """Check every transition targets an existing or terminal state."""
        if self.start not in self._states:
            raise ConfigError(f"start state {self.start!r} is not defined")
        for state in self._states.values():
            for target in state.transitions.values():
                target_name = str(target)
                if target_name not in self._states and target_name not in self.RESERVED:
                    raise ConfigError(
                        f"state {state.name!r} targets unknown state {target_name!r}"
                    )

    @classmethod
    def standard_coflow_graph(cls, array_name: str = "elems", max_elements: int = 16) -> "ParseGraph":
        """Parse graph for the Ethernet/IPv4/UDP/coflow stack.

        Terminal coflow state extracts the element array (width-capped),
        which is exactly the structure the in-network apps ship.
        """
        from .headers import (
            COFLOW_HEADER,
            COFLOW_UDP_PORT,
            ETHERNET,
            ETHERTYPE_IPV4,
            IP_PROTO_UDP,
            IPV4,
            UDP,
        )

        graph = cls(start="ethernet")
        graph.add(
            ParseState(
                "ethernet",
                header_type=ETHERNET,
                select_field="ethertype",
                transitions={ETHERTYPE_IPV4: "ipv4", "default": "accept"},
            )
        )
        graph.add(
            ParseState(
                "ipv4",
                header_type=IPV4,
                select_field="protocol",
                transitions={IP_PROTO_UDP: "udp", "default": "accept"},
            )
        )
        graph.add(
            ParseState(
                "udp",
                header_type=UDP,
                select_field="dst_port",
                transitions={COFLOW_UDP_PORT: "coflow", "default": "accept"},
            )
        )
        graph.add(
            ParseState(
                "coflow",
                header_type=COFLOW_HEADER,
                transitions={"default": "accept"},
                extract_array=array_name,
                max_array_elements=max_elements,
            )
        )
        graph.validate()
        return graph


@dataclass
class ParseResult:
    """Outcome of parsing one packet."""

    phv: PHV
    accepted: bool
    states_visited: int
    bytes_examined: int
    headers_extracted: tuple[str, ...]


#: Interned accept-walk signatures (see Parser._accept_sig).
_ACCEPT_SIGS: dict = {}


class Parser:
    """Executes a parse graph against packets, producing PHVs.

    ``max_depth`` bounds state visits (loop protection).  When
    ``array_capable`` is False (classic RMT), array extraction states fall
    back to extracting only the first element as a scalar — this models
    RMT's 1 key : 1 packet restriction and is what the Figure 3/6
    experiments compare against.
    """

    def __init__(
        self,
        graph: ParseGraph,
        layout: PHVLayout | None = None,
        max_depth: int = 32,
        array_capable: bool = True,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.layout = layout or PHVLayout()
        self.max_depth = max_depth
        self.array_capable = array_capable
        self.packets_parsed = 0
        self.packets_rejected = 0
        # Per-state extraction plans, precomputed once: the PHV-qualified
        # name, bare field name, container class, and container count of
        # every field.  The parse loop walks these instead of re-deriving
        # strings and container math per packet.
        self._field_plans: dict[str, tuple] = {}
        for state_name in graph._states:
            state = graph._states[state_name]
            if state.header_type is not None:
                header_type = state.header_type
                rows = [
                    (
                        f"{header_type.name}.{spec.name}",
                        spec.name,
                        *containers_needed(spec.width_bits),
                    )
                    for spec in header_type.fields
                ]
                totals: dict = {}
                for _, _, cls, count in rows:
                    totals[cls] = totals.get(cls, 0) + count
                self._field_plans[state_name] = (rows, tuple(totals.items()))
        # Compiled accept program: one flat tuple per state, so the
        # verdict-only walk touches no ParseState attributes or method
        # calls.  Row: (header name or None, select field, transitions
        # with stringified targets, default target, array cap or -1).
        self._accept_prog: dict[str, tuple] = {}
        for state_name, state in graph._states.items():
            transitions = {k: str(v) for k, v in state.transitions.items()}
            self._accept_prog[state_name] = (
                state.header_type.name if state.header_type else None,
                state.select_field,
                transitions,
                transitions.get("default", "accept"),
                state.max_array_elements
                if state.extract_array is not None
                else -1,
            )
        # Structural signature of the verdict-only walk: two parsers with
        # the same signature accept/reject/raise on exactly the same
        # packets, so a verdict memoized on the packet by one is valid
        # for the other (cross-pipeline reuse).  Interned so the hot
        # check is a single identity comparison.
        signature = (
            graph.start,
            max_depth,
            array_capable,
            tuple(
                sorted(
                    (
                        name,
                        row[0],
                        row[1],
                        tuple(sorted(row[2].items(), key=repr)),
                        row[3],
                        row[4],
                    )
                    for name, row in self._accept_prog.items()
                )
            ),
        )
        self._accept_sig = _ACCEPT_SIGS.setdefault(signature, signature)

    def parse(self, packet: Packet) -> ParseResult:
        """Parse ``packet`` into a fresh PHV."""
        phv = PHV(self.layout)
        accepted, visited, bytes_examined, extracted = self._parse_into(
            phv, packet
        )
        if accepted:
            self.packets_parsed += 1
        else:
            self.packets_rejected += 1
        return ParseResult(phv, accepted, visited, bytes_examined, extracted)

    def _parse_into(
        self, phv: PHV, packet: Packet
    ) -> tuple[bool, int, int, tuple[str, ...]]:
        """Graph walk + container fill into ``phv``, without accounting.

        Shared by :meth:`parse` (which adds the parsed/rejected counts)
        and :class:`LazyPHV` materialization (whose verdict and counts
        were already taken by :meth:`accepts`, so filling must not count
        the packet a second time).
        """
        headers_by_type = packet._header_index()
        visited = 0
        bytes_examined = 0
        extracted: list[str] = []
        state_name = self.graph.start
        states = self.graph._states
        plans = self._field_plans

        while state_name not in ParseGraph.RESERVED:
            if visited >= self.max_depth:
                raise ParseError(
                    f"parse depth exceeded {self.max_depth} (loop in graph?)"
                )
            state = states.get(state_name)
            if state is None:
                state = self.graph.state(state_name)  # raises ConfigError
            visited += 1
            selector: int | None = None

            header_type = state.header_type
            if header_type is not None:
                header = headers_by_type.get(header_type.name)
                if header is None:
                    return False, visited, bytes_examined, tuple(extracted)
                bytes_examined += header_type.width_bytes
                rows, totals = plans[state_name]
                phv._allocate_planned(rows, totals, header._values)
                extracted.append(header_type.name)
                if state.select_field is not None:
                    selector = header[state.select_field]

            if state.extract_array is not None:
                self._extract_array(state, packet, phv)
                if packet.payload is not None:
                    bytes_examined += packet.payload.width_bytes

            state_name = state.next_state(selector)

        accepted = state_name == "accept"
        return accepted, visited, bytes_examined, tuple(extracted)

    def accepts(self, packet: Packet) -> bool:
        """Walk the parse graph without materializing a PHV.

        The forwarding fast path (no application hook, no tracing) only
        needs the accept/reject verdict; this performs the identical
        graph walk — same depth bound, same array-width check, same
        ``packets_parsed``/``packets_rejected`` accounting — while
        skipping container allocation entirely.  Any packet this method
        accepts (or rejects, or raises on), :meth:`parse` treats the
        same way.

        The verdict is memoized on the packet (invalidated when its
        headers or payload are reassigned — the only mutations the
        pipeline performs) so the egress pass, recirculations, and
        multicast copies skip the walk; a hit still performs the same
        parsed/rejected accounting.  Walks that raise are never
        memoized, so repeat offenders raise identically.
        """
        sig = self._accept_sig
        memo = packet._accepts_memo
        if memo is not None and memo[0] is sig:
            accepted = memo[1]
            if accepted:
                self.packets_parsed += 1
            else:
                self.packets_rejected += 1
            return accepted
        headers_by_type = packet._header_index()
        prog = self._accept_prog
        max_depth = self.max_depth
        array_capable = self.array_capable
        visited = 0
        state_name = self.graph.start

        while state_name != "accept" and state_name != "reject":
            if visited >= max_depth:
                raise ParseError(
                    f"parse depth exceeded {max_depth} (loop in graph?)"
                )
            row = prog.get(state_name)
            if row is None:
                self.graph.state(state_name)  # raises ConfigError
            visited += 1
            header_name, select_field, transitions, default, array_max = row
            selector: int | None = None

            if header_name is not None:
                header = headers_by_type.get(header_name)
                if header is None:
                    self.packets_rejected += 1
                    packet._accepts_memo = (sig, False)
                    return False
                if select_field is not None:
                    selector = header[select_field]

            if array_max >= 0 and array_capable:
                payload = packet.payload
                if payload is not None and len(payload) > array_max:
                    raise ParseError(
                        f"packet carries {len(payload)} elements but state "
                        f"{state_name!r} extracts at most {array_max}"
                    )

            if selector is None:
                state_name = default
            else:
                state_name = (
                    transitions.get(selector)
                    or transitions.get("default")
                    or "reject"
                )

        accepted = state_name == "accept"
        if accepted:
            self.packets_parsed += 1
        else:
            self.packets_rejected += 1
        packet._accepts_memo = (sig, accepted)
        return accepted

    def lazy_phv(self, packet: Packet) -> "LazyPHV":
        """A PHV whose container fill is deferred until first access.

        Pair with :meth:`accepts`: the verdict and parser accounting come
        from the walk, and the containers are only materialized if the
        application hook actually reads or writes the PHV.  Hooks that
        work off the packet alone (common for array apps, which consume
        the payload directly) never pay for allocation at all.
        """
        return LazyPHV(self, packet)

    def _extract_array(self, state: ParseState, packet: Packet, phv: PHV) -> None:
        name = state.extract_array
        assert name is not None
        payload = packet.payload
        if payload is None or len(payload) == 0:
            return
        if self.array_capable:
            if len(payload) > state.max_array_elements:
                raise ParseError(
                    f"packet carries {len(payload)} elements but state "
                    f"{state.name!r} extracts at most {state.max_array_elements}"
                )
            phv._allocate_array_planned(f"{name}.key", payload.keys())
            phv._allocate_array_planned(f"{name}.value", payload.values())
        else:
            # Classic RMT: only the first element is liftable as scalars.
            first = payload[0]
            phv.allocate(f"{name}.key[0]", 32, first.key)
            phv.allocate(f"{name}.value[0]", 32, first.value)
            phv._values[f"{name}.key.length"] = 1
            phv._values[f"{name}.value.length"] = 1


class LazyPHV(PHV):
    """A PHV that materializes its containers on first touch.

    Created by :meth:`Parser.lazy_phv` on the untraced hook path after
    :meth:`Parser.accepts` has already delivered the verdict and taken
    the parsed/rejected counts.  Every field accessor and mutator below
    first runs the parser's fill walk (:meth:`Parser._parse_into`, which
    performs no accounting) and then behaves as a plain PHV; intrinsic
    metadata reads stay lazy because they never depend on the fill.

    A hook that never touches the PHV leaves it empty and clean, which is
    indistinguishable from an eagerly parsed PHV the hook did not modify:
    the pipeline's deparse-skip only consults ``_dirty``.
    """

    def __init__(self, parser: Parser, packet: Packet) -> None:
        super().__init__(parser.layout)
        self._parser: Parser | None = parser
        self._packet: Packet | None = packet

    def _materialize(self) -> None:
        parser = self._parser
        if parser is not None:
            packet = self._packet
            self._parser = None
            self._packet = None
            parser._parse_into(self, packet)

    def __contains__(self, name: str) -> bool:
        self._materialize()
        return PHV.__contains__(self, name)

    def __getitem__(self, name: str) -> int:
        self._materialize()
        return PHV.__getitem__(self, name)

    def __setitem__(self, name: str, value: int) -> None:
        self._materialize()
        PHV.__setitem__(self, name, value)

    def get(self, name: str, default: int | None = None) -> int | None:
        self._materialize()
        return PHV.get(self, name, default)

    def fields(self):
        self._materialize()
        return PHV.fields(self)

    def used(self, cls) -> int:
        self._materialize()
        return PHV.used(self, cls)

    @property
    def used_bits(self) -> int:
        self._materialize()
        return PHV.used_bits.fget(self)

    def allocate(self, name: str, width_bits: int, value: int = 0) -> None:
        self._materialize()
        PHV.allocate(self, name, width_bits, value)

    def allocate_array(
        self, name: str, length: int, element_width_bits: int = 32
    ) -> None:
        self._materialize()
        PHV.allocate_array(self, name, length, element_width_bits)

    def array_length(self, name: str) -> int:
        self._materialize()
        return PHV.array_length(self, name)

    def array(self, name: str) -> list[int]:
        self._materialize()
        return PHV.array(self, name)

    def set_array(self, name: str, values: list[int]) -> None:
        self._materialize()
        PHV.set_array(self, name, values)

    def set_meta(self, name: str, value) -> None:
        # Metadata is outside the container budget, but a dirty PHV is
        # deparsed — which reads every container — so mutation of any
        # kind forces the fill.
        self._materialize()
        PHV.set_meta(self, name, value)
