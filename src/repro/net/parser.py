"""Programmable packet parsing.

Parsers in programmable switches are state machines over a *parse graph*
(Gibb et al., cited by the paper as [11]): each state extracts one header
and selects the next state from a field value.  The paper leans on the
observation that "parsing efficiency is linked to the complexity of
structure within packets rather than port speed", which this model makes
measurable: the parser reports how many states it visited and how many
bytes it examined per packet.

The ADCP extension is array extraction: a terminal state may extract the
packet's :class:`~repro.net.packet.ElementArray` into a PHV array view, up
to a configurable width, which is the entry point for array processing in
the pipeline (section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError, ParseError
from .headers import HeaderType
from .packet import Packet
from .phv import PHV, PHVLayout


@dataclass
class ParseState:
    """One state of the parse graph.

    Attributes:
        name: State label; ``"accept"`` and ``"reject"`` are reserved.
        header_type: Header extracted on entering this state (None for a
            metadata-only state).
        select_field: Field of the just-extracted header whose value picks
            the next state.  None means unconditional transition.
        transitions: Mapping from select-field value to next state name;
            the ``default`` key gives the fallback.
        extract_array: When set, extract the packet's element array into a
            PHV array view of this name.
        max_array_elements: Cap on extracted elements (the hardware's lane
            width); extra elements raise ParseError, as the program and the
            packet format must agree.
    """

    name: str
    header_type: HeaderType | None = None
    select_field: str | None = None
    transitions: dict[int | str, str] = field(default_factory=dict)
    extract_array: str | None = None
    max_array_elements: int = 16

    def next_state(self, selector: int | None) -> str:
        if self.select_field is None or selector is None:
            return str(self.transitions.get("default", "accept"))
        if selector in self.transitions:
            return str(self.transitions[selector])
        if "default" in self.transitions:
            return str(self.transitions["default"])
        return "reject"


class ParseGraph:
    """A named collection of parse states with a start state."""

    RESERVED = ("accept", "reject")

    def __init__(self, start: str = "start") -> None:
        self.start = start
        self._states: dict[str, ParseState] = {}

    def add(self, state: ParseState) -> "ParseGraph":
        if state.name in self.RESERVED:
            raise ConfigError(f"state name {state.name!r} is reserved")
        if state.name in self._states:
            raise ConfigError(f"duplicate parse state {state.name!r}")
        self._states[state.name] = state
        return self

    def state(self, name: str) -> ParseState:
        if name not in self._states:
            raise ConfigError(f"parse graph has no state {name!r}")
        return self._states[name]

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def __len__(self) -> int:
        return len(self._states)

    def validate(self) -> None:
        """Check every transition targets an existing or terminal state."""
        if self.start not in self._states:
            raise ConfigError(f"start state {self.start!r} is not defined")
        for state in self._states.values():
            for target in state.transitions.values():
                target_name = str(target)
                if target_name not in self._states and target_name not in self.RESERVED:
                    raise ConfigError(
                        f"state {state.name!r} targets unknown state {target_name!r}"
                    )

    @classmethod
    def standard_coflow_graph(cls, array_name: str = "elems", max_elements: int = 16) -> "ParseGraph":
        """Parse graph for the Ethernet/IPv4/UDP/coflow stack.

        Terminal coflow state extracts the element array (width-capped),
        which is exactly the structure the in-network apps ship.
        """
        from .headers import (
            COFLOW_HEADER,
            COFLOW_UDP_PORT,
            ETHERNET,
            ETHERTYPE_IPV4,
            IP_PROTO_UDP,
            IPV4,
            UDP,
        )

        graph = cls(start="ethernet")
        graph.add(
            ParseState(
                "ethernet",
                header_type=ETHERNET,
                select_field="ethertype",
                transitions={ETHERTYPE_IPV4: "ipv4", "default": "accept"},
            )
        )
        graph.add(
            ParseState(
                "ipv4",
                header_type=IPV4,
                select_field="protocol",
                transitions={IP_PROTO_UDP: "udp", "default": "accept"},
            )
        )
        graph.add(
            ParseState(
                "udp",
                header_type=UDP,
                select_field="dst_port",
                transitions={COFLOW_UDP_PORT: "coflow", "default": "accept"},
            )
        )
        graph.add(
            ParseState(
                "coflow",
                header_type=COFLOW_HEADER,
                transitions={"default": "accept"},
                extract_array=array_name,
                max_array_elements=max_elements,
            )
        )
        graph.validate()
        return graph


@dataclass
class ParseResult:
    """Outcome of parsing one packet."""

    phv: PHV
    accepted: bool
    states_visited: int
    bytes_examined: int
    headers_extracted: tuple[str, ...]


class Parser:
    """Executes a parse graph against packets, producing PHVs.

    ``max_depth`` bounds state visits (loop protection).  When
    ``array_capable`` is False (classic RMT), array extraction states fall
    back to extracting only the first element as a scalar — this models
    RMT's 1 key : 1 packet restriction and is what the Figure 3/6
    experiments compare against.
    """

    def __init__(
        self,
        graph: ParseGraph,
        layout: PHVLayout | None = None,
        max_depth: int = 32,
        array_capable: bool = True,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.layout = layout or PHVLayout()
        self.max_depth = max_depth
        self.array_capable = array_capable
        self.packets_parsed = 0
        self.packets_rejected = 0

    def parse(self, packet: Packet) -> ParseResult:
        """Parse ``packet`` into a fresh PHV."""
        phv = PHV(self.layout)
        headers_by_type = {h.type.name: h for h in packet.headers}
        visited = 0
        bytes_examined = 0
        extracted: list[str] = []
        state_name = self.graph.start

        while state_name not in ParseGraph.RESERVED:
            if visited >= self.max_depth:
                raise ParseError(
                    f"parse depth exceeded {self.max_depth} (loop in graph?)"
                )
            state = self.graph.state(state_name)
            visited += 1
            selector: int | None = None

            if state.header_type is not None:
                header = headers_by_type.get(state.header_type.name)
                if header is None:
                    self.packets_rejected += 1
                    return ParseResult(phv, False, visited, bytes_examined, tuple(extracted))
                bytes_examined += state.header_type.width_bytes
                for spec in state.header_type.fields:
                    phv.allocate(
                        f"{state.header_type.name}.{spec.name}",
                        spec.width_bits,
                        header[spec.name],
                    )
                extracted.append(state.header_type.name)
                if state.select_field is not None:
                    selector = header[state.select_field]

            if state.extract_array is not None:
                self._extract_array(state, packet, phv)
                if packet.payload is not None:
                    bytes_examined += packet.payload.width_bytes

            state_name = state.next_state(selector)

        accepted = state_name == "accept"
        if accepted:
            self.packets_parsed += 1
        else:
            self.packets_rejected += 1
        return ParseResult(phv, accepted, visited, bytes_examined, tuple(extracted))

    def _extract_array(self, state: ParseState, packet: Packet, phv: PHV) -> None:
        name = state.extract_array
        assert name is not None
        payload = packet.payload
        if payload is None or len(payload) == 0:
            return
        if self.array_capable:
            if len(payload) > state.max_array_elements:
                raise ParseError(
                    f"packet carries {len(payload)} elements but state "
                    f"{state.name!r} extracts at most {state.max_array_elements}"
                )
            phv.allocate_array(f"{name}.key", len(payload))
            phv.allocate_array(f"{name}.value", len(payload))
            phv.set_array(f"{name}.key", payload.keys())
            phv.set_array(f"{name}.value", payload.values())
        else:
            # Classic RMT: only the first element is liftable as scalars.
            first = payload[0]
            phv.allocate(f"{name}.key[0]", 32, first.key)
            phv.allocate(f"{name}.value[0]", 32, first.value)
            phv._values[f"{name}.key.length"] = 1
            phv._values[f"{name}.value.length"] = 1
