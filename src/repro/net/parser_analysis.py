"""Parser complexity and bandwidth analysis.

Section 3.3's caveat on demultiplexing: "parsing still needs to be done
at port speed, but parsing efficiency is linked to the complexity of
structure within packets rather than port speed" (citing Gibb et al.'s
design principles for packet parsers).

This module quantifies both halves of that sentence for a given parse
graph and packet format:

- **structural complexity** — states, worst-case parse depth, distinct
  header bytes examined, and the fan-out of select fields, all properties
  of the *graph*, independent of the link;
- **bandwidth requirement** — the bytes/second a port-speed parser front
  end must inspect, and the parser clock needed given a lookahead window
  (bytes examined per parser cycle).

The ADCP's demux point sits *after* the parser, so the parser runs at
port rate while the match-action lanes run at 1/m of it — the analysis
shows the parser stays feasible because its work scales with header
structure, not with the payload bytes that dominate fast links.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import BITS_PER_BYTE
from .packet import Packet
from .parser import ParseGraph, Parser


@dataclass(frozen=True)
class GraphComplexity:
    """Structural metrics of a parse graph."""

    states: int
    max_depth: int
    max_header_bytes: int
    max_fanout: int

    @property
    def is_trivial(self) -> bool:
        return self.states <= 1


def analyze_graph(graph: ParseGraph) -> GraphComplexity:
    """Compute structural complexity via DFS over the parse graph.

    ``max_depth`` and ``max_header_bytes`` follow the longest acyclic
    path; cycles (TLV-style loops) are cut at first revisit, matching the
    hardware's bounded parse depth.
    """
    graph.validate()

    best = {"depth": 0, "bytes": 0}

    def walk(state_name: str, depth: int, header_bytes: int, seen: frozenset) -> None:
        if state_name in ParseGraph.RESERVED or state_name in seen:
            best["depth"] = max(best["depth"], depth)
            best["bytes"] = max(best["bytes"], header_bytes)
            return
        state = graph.state(state_name)
        width = state.header_type.width_bytes if state.header_type else 0
        targets = set(str(t) for t in state.transitions.values()) or {"accept"}
        for target in targets:
            walk(target, depth + 1, header_bytes + width, seen | {state_name})

    walk(graph.start, 0, 0, frozenset())

    fanout = 0
    states = 0
    for name in list(getattr(graph, "_states", {})):
        state = graph.state(name)
        states += 1
        fanout = max(fanout, len(set(str(t) for t in state.transitions.values())))
    return GraphComplexity(states, best["depth"], best["bytes"], fanout)


@dataclass(frozen=True)
class ParserRequirement:
    """What a front-end parser must sustain for one port."""

    port_speed_bps: float
    min_wire_packet_bytes: float
    header_bytes_per_packet: int
    lookahead_bytes: int

    def __post_init__(self) -> None:
        if self.port_speed_bps <= 0:
            raise ConfigError("port speed must be positive")
        if self.min_wire_packet_bytes <= 0:
            raise ConfigError("minimum packet must be positive")
        if self.header_bytes_per_packet < 0:
            raise ConfigError("header bytes must be non-negative")
        if self.lookahead_bytes < 1:
            raise ConfigError("lookahead must be at least one byte")

    @property
    def packet_rate_pps(self) -> float:
        return self.port_speed_bps / (self.min_wire_packet_bytes * BITS_PER_BYTE)

    @property
    def header_bandwidth_bps(self) -> float:
        """Bytes/s the parser actually inspects (headers only)."""
        return self.packet_rate_pps * self.header_bytes_per_packet * BITS_PER_BYTE

    @property
    def header_fraction(self) -> float:
        """Share of the link the parser must examine: the 'complexity of
        structure within packets' knob."""
        return min(1.0, self.header_bytes_per_packet / self.min_wire_packet_bytes)

    @property
    def parser_clock_hz(self) -> float:
        """Clock of a parser consuming ``lookahead_bytes`` per cycle."""
        cycles_per_packet = max(
            1,
            -(-self.header_bytes_per_packet // self.lookahead_bytes),
        )
        return self.packet_rate_pps * cycles_per_packet


def parser_requirement(
    graph: ParseGraph,
    port_speed_bps: float,
    min_wire_packet_bytes: float = 84.0,
    lookahead_bytes: int = 32,
) -> ParserRequirement:
    """Requirement for parsing ``graph``'s worst-case header stack at a
    given port speed."""
    complexity = analyze_graph(graph)
    return ParserRequirement(
        port_speed_bps,
        min_wire_packet_bytes,
        complexity.max_header_bytes,
        lookahead_bytes,
    )


def measure_parser_work(parser: Parser, packets: list[Packet]) -> dict[str, float]:
    """Empirical counterpart: drive real packets, report mean states
    visited and bytes examined per packet."""
    if not packets:
        raise ConfigError("need at least one packet")
    states = 0
    examined = 0
    accepted = 0
    for packet in packets:
        result = parser.parse(packet)
        states += result.states_visited
        examined += result.bytes_examined
        accepted += int(result.accepted)
    count = len(packets)
    return {
        "mean_states": states / count,
        "mean_bytes_examined": examined / count,
        "accept_rate": accepted / count,
    }
