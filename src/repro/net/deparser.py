"""Deparsing: reassembling packets from PHVs.

"When data arrives at the end of the ingress pipeline, it is deparsed into
a packet taking the data modifications into consideration" (paper,
section 2).  The deparser here writes modified PHV fields back into the
packet's headers and, when an array view exists, rebuilds the element array
— which is how ADCP programs emit output coflows whose packets differ in
shape from the inputs.
"""

from __future__ import annotations

from ..errors import DeparseError
from .headers import Header
from .packet import Element, ElementArray, Packet
from .phv import PHV, _element_names


_MISSING = object()


class Deparser:
    """Rebuilds a packet from a PHV plus the original packet skeleton.

    The original packet supplies header ordering and any payload the parser
    never lifted; every field present in the PHV overwrites the packet's
    copy.  ``array_name`` selects which PHV array view (if any) becomes the
    output element array.
    """

    def __init__(self, array_name: str = "elems") -> None:
        self.array_name = array_name
        self.packets_deparsed = 0

    def deparse(self, phv: PHV, original: Packet) -> Packet:
        """Return a new packet reflecting PHV modifications."""
        phv_values = phv._values
        headers: list[Header] = []
        for header in original.headers:
            rebuilt = header.copy()
            rebuilt_values = rebuilt._values
            # The per-type plan carries precomputed qualified names and
            # max values; the range check mirrors Header.__setitem__
            # (hooks can write out-of-range values into the PHV, and the
            # deparser is where that must surface).
            for phv_name, field_name, max_value in header.type._deparse_plan:
                value = phv_values.get(phv_name, _MISSING)
                if value is _MISSING:
                    continue
                if 0 <= value <= max_value:
                    rebuilt_values[field_name] = value
                else:
                    rebuilt[field_name] = value  # raises the range ConfigError
            headers.append(rebuilt)

        payload = self._rebuild_array(phv, original)
        packet = Packet(headers, payload, original.extra_payload_bytes)
        packet.meta = original.meta
        if packet.has_header("coflow") and payload is not None:
            packet.header("coflow")["element_count"] = len(payload)
        self.packets_deparsed += 1
        return packet

    def _rebuild_array(self, phv: PHV, original: Packet) -> ElementArray | None:
        override = phv.get_meta("payload_override")
        if override is not None:
            # A hook replaced the element set wholesale (e.g. an ingress
            # filter dropping elements): honor it over the parsed view,
            # whose array containers are fixed-length and cannot shrink.
            width = (
                original.payload.element_width_bytes if original.payload else 8
            )
            return ElementArray(
                [Element(k, v) for k, v in override], width
            )
        key_array = f"{self.array_name}.key"
        value_array = f"{self.array_name}.value"
        if f"{key_array}.length" not in phv:
            # Parser never lifted the array; pass the payload through.
            return original.payload.copy() if original.payload else None

        key_len = phv.array_length(key_array)
        if f"{value_array}.length" not in phv:
            raise DeparseError(
                f"PHV has keys for array {self.array_name!r} but no values"
            )
        value_len = phv.array_length(value_array)
        if key_len != value_len:
            raise DeparseError(
                f"array {self.array_name!r} key/value lengths differ "
                f"({key_len} vs {value_len})"
            )
        phv_values = phv._values
        keys = [phv_values[n] for n in _element_names(key_array, key_len)]
        values = [phv_values[n] for n in _element_names(value_array, value_len)]
        width = (
            original.payload.element_width_bytes if original.payload else 8
        )
        return ElementArray(
            [Element(k, v) for k, v in zip(keys, values)], width
        )
