"""The Packet Header Vector (PHV).

In RMT, "each stage communicates with the next through large register files
called packet header vectors ... its elements are scalars extracted from the
packets" (paper, section 2).  The PHV here is a bounded pool of containers
of a few fixed widths; the parser allocates containers for header fields,
and — in the ADCP extension — for array payload elements, which is what lets
a stage's match-action units consume a whole array at once.

Container capacity limits are real constraints on RMT programs, so the
layout is explicit and allocation failures raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from ..errors import ConfigError


class ContainerClass(Enum):
    """PHV container widths, mirroring commercial RMT chip classes."""

    BYTE = 8
    HALF = 16
    WORD = 32

    # Enum's default __hash__ hashes the member *name* string on every
    # call; members are singletons, so identity hashing is equivalent and
    # much cheaper for the per-field ``_used``/``_caps`` dict operations.
    __hash__ = object.__hash__

    @classmethod
    def for_width(cls, width_bits: int) -> "ContainerClass":
        """Smallest container class that fits a field of ``width_bits``.

        Fields wider than a word (e.g. 48-bit MACs) are split across
        multiple word containers by the allocator.
        """
        if width_bits <= 8:
            return cls.BYTE
        if width_bits <= 16:
            return cls.HALF
        return cls.WORD


def containers_needed(width_bits: int) -> "tuple[ContainerClass, int]":
    """Container class and count for a field of ``width_bits``.

    Memoized per width: enum construction and ``.value`` reads are
    surprisingly expensive and this runs for every parsed field.
    """
    cached = _NEEDED_BY_WIDTH.get(width_bits)
    if cached is None:
        cls = ContainerClass.for_width(width_bits)
        if width_bits <= cls.value:
            cached = (cls, 1)
        else:
            word = ContainerClass.WORD.value
            cached = (ContainerClass.WORD, (width_bits + word - 1) // word)
        _NEEDED_BY_WIDTH[width_bits] = cached
    return cached


_NEEDED_BY_WIDTH: dict[int, tuple[ContainerClass, int]] = {}


def _element_names(array_name: str, length: int) -> list[str]:
    """Memoized ``name[i]`` strings for array views (hot in parse/deparse)."""
    key = (array_name, length)
    names = _ELEMENT_NAMES.get(key)
    if names is None:
        names = [f"{array_name}[{i}]" for i in range(length)]
        _ELEMENT_NAMES[key] = names
    return names


_ELEMENT_NAMES: dict[tuple[str, int], list[str]] = {}


@dataclass(frozen=True)
class PHVLayout:
    """Capacity of a PHV: number of containers of each class.

    The default mirrors published RMT figures (64 of each class, 4 kb
    total is the right order of magnitude).
    """

    byte_containers: int = 64
    half_containers: int = 96
    word_containers: int = 64

    def capacity(self, cls: ContainerClass) -> int:
        if cls is ContainerClass.BYTE:
            return self.byte_containers
        if cls is ContainerClass.HALF:
            return self.half_containers
        return self.word_containers

    @property
    def total_bits(self) -> int:
        return (
            self.byte_containers * 8
            + self.half_containers * 16
            + self.word_containers * 32
        )


class PHV:
    """A populated packet header vector.

    Fields are addressed as ``"<header>.<field>"``; array elements as
    ``"<array>[i]"``.  The PHV tracks how many containers of each class are
    in use against its layout and refuses to over-allocate — this is exactly
    the resource the paper's array-support argument is about.
    """

    def __init__(self, layout: PHVLayout | None = None) -> None:
        layout = layout or PHVLayout()
        self.layout = layout
        self._values: dict[str, int] = {}
        self._containers: dict[str, tuple[ContainerClass, int]] = {}
        self._used: dict[ContainerClass, int] = {
            ContainerClass.BYTE: 0,
            ContainerClass.HALF: 0,
            ContainerClass.WORD: 0,
        }
        # The capacity table is read-only and identical for every PHV of
        # a layout, so it is built once and cached on the (frozen) layout.
        caps = getattr(layout, "_caps", None)
        if caps is None:
            caps = {
                ContainerClass.BYTE: layout.byte_containers,
                ContainerClass.HALF: layout.half_containers,
                ContainerClass.WORD: layout.word_containers,
            }
            object.__setattr__(layout, "_caps", caps)
        self._caps: dict[ContainerClass, int] = caps
        self._meta: dict[str, object] = {}
        # Set by every post-parse mutator (hook-facing APIs); parser bulk
        # allocation leaves it clear.  A clean PHV lets the pipeline skip
        # the deparse rebuild: writing unmodified values back produces a
        # packet equal to the original.
        self._dirty = False

    # --- intrinsic metadata ----------------------------------------------------
    # Forwarding decisions (egress port, drop flag) live outside the
    # container budget, like the intrinsic metadata bus of real chips.

    def set_meta(self, name: str, value) -> None:
        """Set an intrinsic-metadata field (not charged against containers)."""
        self._meta[name] = value
        self._dirty = True

    def get_meta(self, name: str, default=None):
        """Read an intrinsic-metadata field."""
        return self._meta.get(name, default)

    def has_meta(self, name: str) -> bool:
        return name in self._meta

    def _containers_needed(self, width_bits: int) -> tuple[ContainerClass, int]:
        return containers_needed(width_bits)

    def allocate(self, name: str, width_bits: int, value: int = 0) -> None:
        """Allocate containers for ``name`` and set its value."""
        if name in self._values:
            raise ConfigError(f"PHV field {name!r} already allocated")
        cls, count = containers_needed(width_bits)
        used = self._used[cls]
        if used + count > self._caps[cls]:
            raise ConfigError(
                f"PHV out of {cls.name} containers allocating {name!r} "
                f"({used}+{count} > {self._caps[cls]})"
            )
        self._used[cls] = used + count
        self._containers[name] = (cls, count)
        self._values[name] = value
        self._dirty = True

    def _allocate_planned(
        self,
        plan: "list[tuple[str, str, ContainerClass, int]]",
        class_totals: "tuple[tuple[ContainerClass, int], ...]",
        header_values: dict[str, int],
    ) -> None:
        """Bulk :meth:`allocate` over a parser field plan.

        ``plan`` rows are ``(qualified_name, field_name, class, count)``
        and ``class_totals`` the per-class container sums, both
        precomputed at parser construction.  When the whole plan fits,
        capacity is charged per class rather than per field; when it
        does not (or a name collides), the per-field loop below raises
        the same errors :meth:`allocate` would.  Per-name container
        records are not kept on this path — nothing reads them, and
        :meth:`used`/:attr:`used_bits` come from the per-class totals.
        """
        values = self._values
        used = self._used
        caps = self._caps
        fits = True
        for cls, total in class_totals:
            if used[cls] + total > caps[cls]:
                fits = False
                break
        if fits:
            collide = False
            for qname, fname, cls, count in plan:
                if qname in values:
                    collide = True
                    break
                values[qname] = header_values[fname]
            if not collide:
                for cls, total in class_totals:
                    used[cls] += total
                return
            raise ConfigError(f"PHV field {qname!r} already allocated")
        for qname, fname, cls, count in plan:
            if qname in values:
                raise ConfigError(f"PHV field {qname!r} already allocated")
            in_use = used[cls]
            if in_use + count > caps[cls]:
                raise ConfigError(
                    f"PHV out of {cls.name} containers allocating {qname!r} "
                    f"({in_use}+{count} > {caps[cls]})"
                )
            used[cls] = in_use + count
            values[qname] = header_values[fname]

    def _allocate_array_planned(
        self, name: str, element_values: list[int]
    ) -> None:
        """Bulk :meth:`allocate_array` + :meth:`set_array` for 32-bit
        elements, with identical collision/capacity semantics."""
        values = self._values
        used = self._used
        word = ContainerClass.WORD
        cap = self._caps[word]
        length = len(element_values)
        names = _element_names(name, length)
        if used[word] + length <= cap:
            for qname, value in zip(names, element_values):
                if qname in values:
                    raise ConfigError(
                        f"PHV field {qname!r} already allocated"
                    )
                values[qname] = value
            used[word] += length
        else:
            for qname, value in zip(names, element_values):
                if qname in values:
                    raise ConfigError(
                        f"PHV field {qname!r} already allocated"
                    )
                in_use = used[word]
                if in_use + 1 > cap:
                    raise ConfigError(
                        f"PHV out of WORD containers allocating {qname!r} "
                        f"({in_use}+1 > {cap})"
                    )
                used[word] = in_use + 1
                values[qname] = value
        values[f"{name}.length"] = length

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __getitem__(self, name: str) -> int:
        if name not in self._values:
            raise ConfigError(f"PHV has no field {name!r}")
        return self._values[name]

    def __setitem__(self, name: str, value: int) -> None:
        if name not in self._values:
            raise ConfigError(
                f"PHV field {name!r} was never allocated by the parser"
            )
        self._values[name] = value
        self._dirty = True

    def get(self, name: str, default: int | None = None) -> int | None:
        return self._values.get(name, default)

    def fields(self) -> Iterator[tuple[str, int]]:
        return iter(self._values.items())

    def used(self, cls: ContainerClass) -> int:
        return self._used[cls]

    @property
    def used_bits(self) -> int:
        return sum(cls.value * n for cls, n in self._used.items())

    # --- array views (ADCP extension) ----------------------------------------

    def allocate_array(
        self, name: str, length: int, element_width_bits: int = 32
    ) -> None:
        """Allocate ``length`` contiguous containers as an array view.

        Elements become addressable as ``name[i]`` and as a block via
        :meth:`array`.  On classic RMT this is just sugar over scalar
        containers; the ADCP array MAU consumes the whole view per cycle.
        """
        if length <= 0:
            raise ConfigError(f"array length must be positive, got {length}")
        for i in range(length):
            self.allocate(f"{name}[{i}]", element_width_bits)
        self._values[f"{name}.length"] = length
        self._containers[f"{name}.length"] = (ContainerClass.BYTE, 0)
        # length is bookkeeping, not a real container; record zero usage.

    def array_length(self, name: str) -> int:
        length = self._values.get(f"{name}.length")
        if length is None:
            raise ConfigError(f"PHV has no array {name!r}")
        return length

    def array(self, name: str) -> list[int]:
        """Return the array view's values as a list."""
        vals = self._values
        try:
            return [
                vals[n] for n in _element_names(name, self.array_length(name))
            ]
        except KeyError as missing:
            raise ConfigError(f"PHV has no field {missing.args[0]!r}") from None

    def set_array(self, name: str, values: list[int]) -> None:
        """Overwrite an array view in place (length must match)."""
        length = self.array_length(name)
        if len(values) != length:
            raise ConfigError(
                f"array {name!r} has length {length}, got {len(values)} values"
            )
        vals = self._values
        for element, value in zip(_element_names(name, length), values):
            if element not in vals:
                raise ConfigError(
                    f"PHV field {element!r} was never allocated by the parser"
                )
            vals[element] = value
        self._dirty = True
