"""The Packet Header Vector (PHV).

In RMT, "each stage communicates with the next through large register files
called packet header vectors ... its elements are scalars extracted from the
packets" (paper, section 2).  The PHV here is a bounded pool of containers
of a few fixed widths; the parser allocates containers for header fields,
and — in the ADCP extension — for array payload elements, which is what lets
a stage's match-action units consume a whole array at once.

Container capacity limits are real constraints on RMT programs, so the
layout is explicit and allocation failures raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from ..errors import ConfigError


class ContainerClass(Enum):
    """PHV container widths, mirroring commercial RMT chip classes."""

    BYTE = 8
    HALF = 16
    WORD = 32

    @classmethod
    def for_width(cls, width_bits: int) -> "ContainerClass":
        """Smallest container class that fits a field of ``width_bits``.

        Fields wider than a word (e.g. 48-bit MACs) are split across
        multiple word containers by the allocator.
        """
        if width_bits <= 8:
            return cls.BYTE
        if width_bits <= 16:
            return cls.HALF
        return cls.WORD


@dataclass(frozen=True)
class PHVLayout:
    """Capacity of a PHV: number of containers of each class.

    The default mirrors published RMT figures (64 of each class, 4 kb
    total is the right order of magnitude).
    """

    byte_containers: int = 64
    half_containers: int = 96
    word_containers: int = 64

    def capacity(self, cls: ContainerClass) -> int:
        if cls is ContainerClass.BYTE:
            return self.byte_containers
        if cls is ContainerClass.HALF:
            return self.half_containers
        return self.word_containers

    @property
    def total_bits(self) -> int:
        return (
            self.byte_containers * 8
            + self.half_containers * 16
            + self.word_containers * 32
        )


class PHV:
    """A populated packet header vector.

    Fields are addressed as ``"<header>.<field>"``; array elements as
    ``"<array>[i]"``.  The PHV tracks how many containers of each class are
    in use against its layout and refuses to over-allocate — this is exactly
    the resource the paper's array-support argument is about.
    """

    def __init__(self, layout: PHVLayout | None = None) -> None:
        self.layout = layout or PHVLayout()
        self._values: dict[str, int] = {}
        self._containers: dict[str, tuple[ContainerClass, int]] = {}
        self._used: dict[ContainerClass, int] = {
            ContainerClass.BYTE: 0,
            ContainerClass.HALF: 0,
            ContainerClass.WORD: 0,
        }
        self._meta: dict[str, object] = {}

    # --- intrinsic metadata ----------------------------------------------------
    # Forwarding decisions (egress port, drop flag) live outside the
    # container budget, like the intrinsic metadata bus of real chips.

    def set_meta(self, name: str, value) -> None:
        """Set an intrinsic-metadata field (not charged against containers)."""
        self._meta[name] = value

    def get_meta(self, name: str, default=None):
        """Read an intrinsic-metadata field."""
        return self._meta.get(name, default)

    def has_meta(self, name: str) -> bool:
        return name in self._meta

    def _containers_needed(self, width_bits: int) -> tuple[ContainerClass, int]:
        cls = ContainerClass.for_width(width_bits)
        if width_bits <= cls.value:
            return cls, 1
        count = (width_bits + ContainerClass.WORD.value - 1) // ContainerClass.WORD.value
        return ContainerClass.WORD, count

    def allocate(self, name: str, width_bits: int, value: int = 0) -> None:
        """Allocate containers for ``name`` and set its value."""
        if name in self._values:
            raise ConfigError(f"PHV field {name!r} already allocated")
        cls, count = self._containers_needed(width_bits)
        if self._used[cls] + count > self.layout.capacity(cls):
            raise ConfigError(
                f"PHV out of {cls.name} containers allocating {name!r} "
                f"({self._used[cls]}+{count} > {self.layout.capacity(cls)})"
            )
        self._used[cls] += count
        self._containers[name] = (cls, count)
        self._values[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __getitem__(self, name: str) -> int:
        if name not in self._values:
            raise ConfigError(f"PHV has no field {name!r}")
        return self._values[name]

    def __setitem__(self, name: str, value: int) -> None:
        if name not in self._values:
            raise ConfigError(
                f"PHV field {name!r} was never allocated by the parser"
            )
        self._values[name] = value

    def get(self, name: str, default: int | None = None) -> int | None:
        return self._values.get(name, default)

    def fields(self) -> Iterator[tuple[str, int]]:
        return iter(self._values.items())

    def used(self, cls: ContainerClass) -> int:
        return self._used[cls]

    @property
    def used_bits(self) -> int:
        return sum(cls.value * n for cls, n in self._used.items())

    # --- array views (ADCP extension) ----------------------------------------

    def allocate_array(
        self, name: str, length: int, element_width_bits: int = 32
    ) -> None:
        """Allocate ``length`` contiguous containers as an array view.

        Elements become addressable as ``name[i]`` and as a block via
        :meth:`array`.  On classic RMT this is just sugar over scalar
        containers; the ADCP array MAU consumes the whole view per cycle.
        """
        if length <= 0:
            raise ConfigError(f"array length must be positive, got {length}")
        for i in range(length):
            self.allocate(f"{name}[{i}]", element_width_bits)
        self._values[f"{name}.length"] = length
        self._containers[f"{name}.length"] = (ContainerClass.BYTE, 0)
        # length is bookkeeping, not a real container; record zero usage.

    def array_length(self, name: str) -> int:
        length = self._values.get(f"{name}.length")
        if length is None:
            raise ConfigError(f"PHV has no array {name!r}")
        return length

    def array(self, name: str) -> list[int]:
        """Return the array view's values as a list."""
        return [self[f"{name}[{i}]"] for i in range(self.array_length(name))]

    def set_array(self, name: str, values: list[int]) -> None:
        """Overwrite an array view in place (length must match)."""
        length = self.array_length(name)
        if len(values) != length:
            raise ConfigError(
                f"array {name!r} has length {length}, got {len(values)} values"
            )
        for i, value in enumerate(values):
            self[f"{name}[{i}]"] = value
