"""Packet substrate: headers, packets, PHVs, parsing, and traffic sources.

The RMT and ADCP models both consume this layer.  It provides:

- :class:`~repro.net.headers.FieldSpec` / :class:`~repro.net.headers.HeaderType`
  / :class:`~repro.net.headers.Header` — declarative header formats and
  instances, plus the standard Ethernet/IPv4/UDP stack and the
  application-level coflow header used by the in-network apps.
- :class:`~repro.net.packet.Packet` and
  :class:`~repro.net.packet.ElementArray` — a packet is a header stack plus
  an optional *array payload* (the paper's central observation is that one
  packet often carries many data elements).
- :class:`~repro.net.phv.PHV` — the packet header vector, a bounded set of
  scalar containers; the ADCP extension adds array views over containers.
- :class:`~repro.net.parser.ParseGraph` / :class:`~repro.net.parser.Parser`
  and :class:`~repro.net.deparser.Deparser` — extraction and reassembly.
- :mod:`~repro.net.traffic` — deterministic and Poisson packet sources.
"""

from .deparser import Deparser
from .headers import (
    COFLOW_HEADER,
    ETHERNET,
    IPV4,
    UDP,
    FieldSpec,
    Header,
    HeaderType,
    coflow_header,
    standard_stack,
)
from .packet import ElementArray, Packet
from .parser import ParseGraph, Parser, ParseState
from .parser_analysis import (
    GraphComplexity,
    ParserRequirement,
    analyze_graph,
    measure_parser_work,
    parser_requirement,
)
from .phv import PHV, ContainerClass, PHVLayout
from .traffic import DeterministicSource, PoissonSource, TrafficSource

__all__ = [
    "COFLOW_HEADER",
    "ETHERNET",
    "IPV4",
    "UDP",
    "ContainerClass",
    "Deparser",
    "DeterministicSource",
    "ElementArray",
    "FieldSpec",
    "GraphComplexity",
    "Header",
    "HeaderType",
    "PHV",
    "PHVLayout",
    "Packet",
    "ParseGraph",
    "ParseState",
    "Parser",
    "ParserRequirement",
    "PoissonSource",
    "TrafficSource",
    "analyze_graph",
    "measure_parser_work",
    "parser_requirement",
    "coflow_header",
    "standard_stack",
]
