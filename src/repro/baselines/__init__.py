"""Alternative switch designs the paper positions itself against (§1).

"Classic programmable switches operate at line rate but impose
significant limitations on the expressiveness of their programming
models.  In contrast, alternative designs relax the strict line rate
requirement but are more easily programmable."

Two representatives are modeled so the opening tension is measurable:

- :class:`~repro.baselines.rtc.RunToCompletionSwitch` — the BMv2-style
  software switch: a pool of cores, each holding a packet "until an
  arbitrary length computation is completed", with one shared memory (no
  placement restrictions at all).  Maximally expressive, line rate only
  while the offered packet rate stays under ``cores x clock / cost``.
- :class:`~repro.baselines.threaded.ThreadedSwitch` — the Trio-style
  hardware design: many more, slower hardware threads over shared
  memory; the same discipline at a different (cores, clock) point, which
  "still compromises line rate, even if to a lesser extent than
  software-based switches".

Both run the same :class:`repro.arch.app.SwitchApp` programs as the RMT
and ADCP models, with an explicit per-packet instruction-cost model in
place of the pipeline's fixed one-cycle service.
"""

from .cost import InstructionCostModel
from .rtc import RunToCompletionSwitch, RtcConfig
from .threaded import ThreadedSwitch, threaded_config

__all__ = [
    "InstructionCostModel",
    "RtcConfig",
    "RunToCompletionSwitch",
    "ThreadedSwitch",
    "threaded_config",
]
