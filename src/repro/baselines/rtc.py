"""The run-to-completion switch (BMv2-class software dataplane).

Structure: one shared packet queue feeding a pool of cores over one
shared memory.  Each core "holds a packet in the switch until an
arbitrary length computation is completed" — all three application hooks
run in a single pass, state is globally reachable (no placement
constraints, no recirculation, no scalar restriction), and emissions go
straight to the TX ports.

The price is the service rate: a packet costs
:meth:`~repro.baselines.cost.InstructionCostModel.packet_cycles` cycles
of one core, so aggregate throughput is ``cores x clock / cost`` packets
per second — orders of magnitude under line rate for small packets, which
is the §1 tension the F0 benchmark measures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..arch.app import SwitchApp
from ..arch.decision import Decision, Verdict
from ..arch.port import TxPort
from ..errors import ConfigError
from ..net.packet import Packet
from ..net.parser import ParseGraph, Parser
from ..net.deparser import Deparser
from ..rmt.switch import SwitchRunResult
from ..sim.component import Component
from ..tables.mat import MatchTable
from ..tables.registers import RegisterArray
from ..units import GBPS, GHZ
from .cost import InstructionCostModel


@dataclass(frozen=True)
class RtcConfig:
    """Design parameters of a run-to-completion switch."""

    num_ports: int = 8
    port_speed_bps: float = 100 * GBPS
    cores: int = 16
    clock_hz: float = 3.0 * GHZ
    queue_packets: int = 16384
    cost: InstructionCostModel = InstructionCostModel()

    def __post_init__(self) -> None:
        if self.num_ports < 1:
            raise ConfigError("switch needs at least one port")
        if self.cores < 1:
            raise ConfigError("need at least one core")
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.queue_packets < 1:
            raise ConfigError("queue must hold at least one packet")

    @property
    def throughput_bps(self) -> float:
        return self.num_ports * self.port_speed_bps


class SharedMemoryContext:
    """The :class:`~repro.arch.app.PipelineContext` of a shared-memory
    target: one state namespace, every port reachable, unlimited arrays."""

    def __init__(self, switch: "RunToCompletionSwitch") -> None:
        self._switch = switch
        self.now = 0.0

    @property
    def pipeline_index(self) -> int:
        return 0  # one logical processor

    @property
    def region(self) -> str:
        return "shared"

    @property
    def array_width(self) -> int:
        return 1 << 16  # effectively unbounded: software loops

    @property
    def attached_ports(self) -> tuple[int, ...]:
        return tuple(range(self._switch.config.num_ports))

    def register(self, name: str, size: int, width_bits: int = 32) -> RegisterArray:
        return self._switch.get_register(name, size, width_bits)

    def table(self, name: str) -> MatchTable:
        return self._switch.get_table(name)


class RunToCompletionSwitch(Component):
    """Executable model of a BMv2-class run-to-completion dataplane."""

    def __init__(self, config: RtcConfig, app: SwitchApp | None = None) -> None:
        super().__init__("rtc")
        self.config = config
        self.app = app
        if app is not None:
            # One shared memory: a single state partition.
            app.bind_placement(1)
        self.parser = Parser(ParseGraph.standard_coflow_graph(max_elements=255))
        self.deparser = Deparser()
        self.tx_ports = [
            TxPort(p, config.port_speed_bps) for p in range(config.num_ports)
        ]
        self._registers: dict[str, RegisterArray] = {}
        self._tables: dict[str, MatchTable] = {}
        self._core_free = [0.0] * config.cores
        self._result = SwitchRunResult()
        self.busy_core_seconds = 0.0

    # --- shared state --------------------------------------------------------------

    def get_register(self, name: str, size: int, width_bits: int = 32) -> RegisterArray:
        if name not in self._registers:
            self._registers[name] = RegisterArray(f"rtc.{name}", size, width_bits)
        register = self._registers[name]
        if register.size != size:
            raise ConfigError(
                f"register {name!r} exists with size {register.size}, "
                f"requested {size}"
            )
        return register

    def install_table(self, table: MatchTable) -> None:
        if table.name in self._tables:
            raise ConfigError(f"table {table.name!r} already installed")
        self._tables[table.name] = table

    def get_table(self, name: str) -> MatchTable:
        if name not in self._tables:
            raise ConfigError(f"no table {name!r} installed")
        return self._tables[name]

    @property
    def registers(self) -> dict[str, RegisterArray]:
        return dict(self._registers)

    # --- run loop -------------------------------------------------------------------

    def run(self, timed_packets, until: float | None = None) -> SwitchRunResult:
        """Process a time-ordered iterable of ``(time, packet)``.

        Cores are assigned earliest-free-first; within the pool, packets
        start service in arrival order (one shared FIFO), which also
        defines the shared-memory mutation order.
        """
        pending_starts: list[float] = []  # service-start times not yet reached
        for time, packet in timed_packets:
            if until is not None and time > until:
                break
            while pending_starts and pending_starts[0] <= time:
                heapq.heappop(pending_starts)
            if len(pending_starts) >= self.config.queue_packets:
                packet.meta.drop_reason = "rtc_queue_full"
                self._result.dropped.append(packet)
                self.counter("queue_drops").add()
                continue
            start = self._serve(packet, time)
            if start > time:
                heapq.heappush(pending_starts, start)
        self._result.duration_s = max(self._core_free + [0.0])
        self._result.counters = self.stats.snapshot()
        return self._result

    def _serve(self, packet: Packet, arrival: float) -> float:
        """Process one packet; returns its service-start time."""
        core = min(range(self.config.cores), key=lambda c: self._core_free[c])
        start = max(arrival, self._core_free[core])

        result = self.parser.parse(packet)
        decision = Decision.forward()
        if result.accepted and self.app is not None:
            ctx = SharedMemoryContext(self)
            ctx.now = start
            for hook in (self.app.ingress, self.app.central, self.app.egress):
                decision = hook(ctx, packet, result.phv)
                decision.validate()
                if decision.verdict is not Verdict.FORWARD or decision.emissions:
                    break
        deparsed = self.deparser.deparse(result.phv, packet)
        packet.headers = deparsed.headers
        packet.payload = deparsed.payload

        cycles = self.config.cost.packet_cycles(packet, len(decision.emissions))
        service = cycles / self.config.clock_hz
        done = start + service
        self._core_free[core] = done
        self.busy_core_seconds += service
        self.counter("served").add()

        for emission in decision.emissions:
            emission.meta.arrival_time = packet.meta.arrival_time
            self._transmit_any(emission, done)

        if decision.verdict is Verdict.DROP:
            packet.meta.drop_reason = decision.drop_reason or "dropped"
            self._result.dropped.append(packet)
        elif decision.verdict is Verdict.CONSUME:
            self._result.consumed += 1
        elif decision.verdict is Verdict.RECIRCULATE:
            raise ConfigError(
                "run-to-completion programs never recirculate: keep "
                "computing instead"
            )
        else:
            self._transmit_any(packet, done)
        return start

    def _transmit_any(self, packet: Packet, ready: float) -> None:
        if packet.meta.egress_ports:
            for port in packet.meta.egress_ports:
                copy = packet.copy()
                copy.meta.arrival_time = packet.meta.arrival_time
                copy.meta.egress_port = port
                self.tx_ports[port].transmit(copy, ready)
                self._result.delivered.append(copy)
                self.counter("delivered").add()
            return
        port = packet.meta.egress_port
        if port is None:
            packet.meta.drop_reason = "no_route"
            self._result.dropped.append(packet)
            self.counter("no_route_drops").add()
            return
        self.tx_ports[port].transmit(packet, ready)
        self._result.delivered.append(packet)
        self.counter("delivered").add()

    # --- capacity queries -------------------------------------------------------------

    def sustained_pps(self, sample: Packet) -> float:
        """Aggregate service rate for packets shaped like ``sample``."""
        return self.config.cost.sustained_pps(
            self.config.cores, self.config.clock_hz, sample
        )

    def line_rate_pps(self, wire_packet_bytes: float = 84.0) -> float:
        """What line rate would require at the given minimum packet."""
        return self.config.throughput_bps / (wire_packet_bytes * 8)
