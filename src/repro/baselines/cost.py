"""Per-packet instruction cost for run-to-completion processing.

Pipelined switches pay a fixed cycle per packet regardless of program
complexity (that is the whole design); run-to-completion targets pay for
what the program actually does.  The model charges:

    cycles = parse + per_header x headers
           + hook_base + per_element x elements
           + emit x emissions

Defaults approximate a software dataplane's instruction counts (hundreds
of cycles per packet), and can be retuned for hardware-threaded designs
where the same work costs tens of cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..net.packet import Packet


@dataclass(frozen=True)
class InstructionCostModel:
    """Cycle cost of processing one packet to completion."""

    parse_cycles: int = 60
    per_header_cycles: int = 25
    hook_base_cycles: int = 80
    per_element_cycles: int = 30
    emit_cycles: int = 50
    deparse_cycles: int = 40

    def __post_init__(self) -> None:
        for name, value in (
            ("parse_cycles", self.parse_cycles),
            ("per_header_cycles", self.per_header_cycles),
            ("hook_base_cycles", self.hook_base_cycles),
            ("per_element_cycles", self.per_element_cycles),
            ("emit_cycles", self.emit_cycles),
            ("deparse_cycles", self.deparse_cycles),
        ):
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")

    def packet_cycles(self, packet: Packet, emissions: int = 0) -> int:
        """Cycles one core spends on ``packet`` (plus its emissions)."""
        if emissions < 0:
            raise ConfigError("emissions must be non-negative")
        return (
            self.parse_cycles
            + self.per_header_cycles * len(packet.headers)
            + self.hook_base_cycles
            + self.per_element_cycles * packet.element_count
            + self.emit_cycles * emissions
            + self.deparse_cycles
        )

    def sustained_pps(self, cores: int, clock_hz: float, packet: Packet) -> float:
        """Aggregate packet rate the pool sustains for uniform traffic."""
        if cores < 1:
            raise ConfigError("need at least one core")
        if clock_hz <= 0:
            raise ConfigError("clock must be positive")
        return cores * clock_hz / self.packet_cycles(packet)
