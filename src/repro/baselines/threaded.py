"""The hardware-threaded switch (Trio-class chipset).

"Trio is a representative commercially-available example that replaces
the notion of processing pipelines with threads.  This approach still
compromises line rate, even if to a lesser extent than software-based
switches" (§1).

Structurally identical to the run-to-completion model — shared memory,
arbitrary-length programs — but at a hardware design point: an order of
magnitude more cores and an order of magnitude fewer cycles per packet,
so the throughput gap to line rate narrows without closing.
"""

from __future__ import annotations

from .cost import InstructionCostModel
from .rtc import RtcConfig, RunToCompletionSwitch
from ..units import GBPS, GHZ

HARDWARE_COST = InstructionCostModel(
    parse_cycles=20,
    per_header_cycles=6,
    hook_base_cycles=40,
    per_element_cycles=8,
    emit_cycles=20,
    deparse_cycles=14,
)
"""Per-packet cost at hardware-thread efficiency (~100 cycles for a
minimum coflow packet, versus several hundred in software)."""


def threaded_config(
    num_ports: int = 8,
    port_speed_bps: float = 100 * GBPS,
    cores: int = 80,
    clock_hz: float = 1.0 * GHZ,
    cost: InstructionCostModel = HARDWARE_COST,
) -> RtcConfig:
    """A Trio-class design point: many slow hardware threads, cheap ops.

    Scaled from the published packet-processing-engine counts of that
    chipset family (~160 engines for 1.6 Tbps -> 80 for this 0.8 Tbps
    configuration).  Deliberately lands *under* minimum-packet line rate:
    the approach "still compromises line rate, even if to a lesser
    extent than software-based switches".
    """
    return RtcConfig(
        num_ports=num_ports,
        port_speed_bps=port_speed_bps,
        cores=cores,
        clock_hz=clock_hz,
        cost=cost,
    )


class ThreadedSwitch(RunToCompletionSwitch):
    """A run-to-completion switch at the hardware-threaded design point."""

    def __init__(self, config: RtcConfig | None = None, app=None) -> None:
        super().__init__(config or threaded_config(), app)
