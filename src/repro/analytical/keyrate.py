"""The key-rate model of section 3.2.

"For applications, the performance of a switch is connected to the rate of
*keys* rather than the packets it can process."  RMT forces 1 key per
packet, so application throughput is capped by packet rate (5-6 Bpps on a
12.8 Tbps switch).  The switch has 16 match-action units per stage, so an
architecture that matches a 16-wide array per packet lifts the cap by 16x
— "requiring an application to go scalar misses a potential 16x
performance boost."

The model also accounts for the goodput side: packing more elements per
packet amortizes the fixed header bytes, so wire efficiency improves with
array width too.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import BITS_PER_BYTE, ETHERNET_MIN_FRAME_BYTES, wire_bytes

STANDARD_HEADER_BYTES = 46
"""Ethernet (14) + IPv4 (20) + UDP (8) + FCS (4) — fixed frame overhead."""

COFLOW_HEADER_BYTES = 18
"""The application header carried by every coflow packet."""


@dataclass(frozen=True)
class KeyRateModel:
    """Key-rate and goodput as a function of elements per packet.

    Attributes:
        packet_rate_pps: The switch's aggregate packet budget (e.g. 6 Bpps).
        element_width_bytes: Wire bytes per data element (key + value).
        header_bytes: Fixed frame bytes per packet excluding the payload.
        link_bps: Optional aggregate bandwidth; when set, the realizable
            packet rate for large packets is bandwidth-limited and the
            model reports min(packet budget, bandwidth / packet size).
    """

    packet_rate_pps: float
    element_width_bytes: int = 8
    header_bytes: int = STANDARD_HEADER_BYTES + COFLOW_HEADER_BYTES
    link_bps: float | None = None

    def __post_init__(self) -> None:
        if self.packet_rate_pps <= 0:
            raise ConfigError("packet rate must be positive")
        if self.element_width_bytes <= 0:
            raise ConfigError("element width must be positive")
        if self.header_bytes < 0:
            raise ConfigError("header bytes must be non-negative")

    def frame_bytes(self, elements_per_packet: int) -> int:
        """Frame size carrying ``elements_per_packet`` elements."""
        if elements_per_packet < 1:
            raise ConfigError("elements per packet must be >= 1")
        raw = self.header_bytes + elements_per_packet * self.element_width_bytes
        return max(raw, ETHERNET_MIN_FRAME_BYTES)

    def achievable_packet_rate(self, elements_per_packet: int) -> float:
        """Packet rate after both the pps budget and bandwidth are applied."""
        if elements_per_packet < 1:
            raise ConfigError("elements per packet must be >= 1")
        rate = self.packet_rate_pps
        if self.link_bps is not None:
            wire = wire_bytes(self.frame_bytes(elements_per_packet))
            bandwidth_rate = self.link_bps / (wire * BITS_PER_BYTE)
            rate = min(rate, bandwidth_rate)
        return rate

    def key_rate(self, elements_per_packet: int) -> float:
        """Keys (elements) per second at a given packing factor."""
        return self.achievable_packet_rate(elements_per_packet) * elements_per_packet

    def goodput(self, elements_per_packet: int) -> float:
        """Payload bytes / wire bytes at a given packing factor."""
        payload = elements_per_packet * self.element_width_bytes
        wire = wire_bytes(self.frame_bytes(elements_per_packet))
        return payload / wire

    def speedup(self, elements_per_packet: int) -> float:
        """Key-rate gain over the scalar (1 element) configuration."""
        return self.key_rate(elements_per_packet) / self.key_rate(1)


def rmt_key_rate_ceiling(
    packet_rate_pps: float = 6e9, maus_per_stage: int = 16
) -> dict[str, float]:
    """The section 3.2 headline numbers.

    Returns the scalar ceiling ("any application logic ... capped at
    6 Bops/s"), the per-stage MAU budget that goes unused, and the array
    ceiling at full MAU width.
    """
    if packet_rate_pps <= 0:
        raise ConfigError("packet rate must be positive")
    if maus_per_stage < 1:
        raise ConfigError("need at least one MAU per stage")
    return {
        "scalar_ops_per_s": packet_rate_pps,
        "maus_per_stage": float(maus_per_stage),
        "array_ops_per_s": packet_rate_pps * maus_per_stage,
        "missed_factor": float(maus_per_stage),
    }
