"""Port multiplexing/demultiplexing scaling math (Tables 2 and 3).

A pipeline that retires one packet per cycle must be clocked at the peak
packet rate of the traffic multiplexed into it:

    f = (port_speed x ports_per_pipeline) / (min_wire_packet_bytes x 8)

RMT designs (Table 2) pick ports_per_pipeline >= 1 and grow the assumed
minimum packet to keep f around 1.25-1.62 GHz; the paper shows this forces
495 B minimum packets at 25.6 Tbps and beyond.  The ADCP (Table 3) instead
picks ports_per_pipeline = 1/m < 1 — demultiplexing each port across m
pipelines — which drives f *down* while keeping the true 84 B Ethernet
minimum.

The module carries the paper's rows verbatim (``PAPER_TABLE2_ROWS``,
``PAPER_TABLE3_ROWS``) so the benchmark harness can diff model output
against the publication.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..errors import ConfigError
from ..units import (
    ETHERNET_MIN_WIRE_BYTES,
    GBPS,
    GHZ,
    pipeline_frequency,
)


@dataclass(frozen=True)
class SwitchConfig:
    """One switch design point — a row of Table 2 or Table 3.

    ``ports_per_pipeline`` is a :class:`~fractions.Fraction` so the ADCP's
    demultiplexed designs (the paper's "0.5 ports per pipeline") are exact.
    """

    throughput_bps: float
    port_speed_bps: float
    pipelines: int
    ports_per_pipeline: Fraction
    min_wire_packet_bytes: float

    def __post_init__(self) -> None:
        if self.throughput_bps <= 0:
            raise ConfigError("throughput must be positive")
        if self.port_speed_bps <= 0:
            raise ConfigError("port speed must be positive")
        if self.pipelines < 1:
            raise ConfigError("need at least one pipeline")
        if self.ports_per_pipeline <= 0:
            raise ConfigError("ports per pipeline must be positive")
        if self.min_wire_packet_bytes < ETHERNET_MIN_WIRE_BYTES - 1e-9:
            raise ConfigError(
                f"minimum wire packet {self.min_wire_packet_bytes} B is below "
                f"the Ethernet floor of {ETHERNET_MIN_WIRE_BYTES} B"
            )

    @property
    def num_ports(self) -> int:
        """Front-panel ports implied by throughput / port speed."""
        return round(self.throughput_bps / self.port_speed_bps)

    @property
    def pipeline_frequency_hz(self) -> float:
        """Clock needed to retire one packet per cycle at line rate."""
        return pipeline_frequency(
            self.port_speed_bps,
            float(self.ports_per_pipeline),
            self.min_wire_packet_bytes,
        )

    @property
    def demux_factor(self) -> int:
        """m such that each port feeds m pipelines (1 when multiplexing)."""
        if self.ports_per_pipeline >= 1:
            return 1
        return int(round(1 / self.ports_per_pipeline))

    @property
    def packet_rate_per_pipeline_pps(self) -> float:
        return self.pipeline_frequency_hz  # one packet per cycle

    @property
    def total_packet_rate_pps(self) -> float:
        return self.pipeline_frequency_hz * self.pipelines


def mux_config(
    throughput_bps: float,
    port_speed_bps: float,
    pipelines: int,
    min_wire_packet_bytes: float,
) -> SwitchConfig:
    """RMT-style design: ports multiplexed into pipelines (Table 2 rows)."""
    num_ports = round(throughput_bps / port_speed_bps)
    if num_ports % pipelines != 0:
        raise ConfigError(
            f"{num_ports} ports do not divide evenly into {pipelines} pipelines"
        )
    return SwitchConfig(
        throughput_bps,
        port_speed_bps,
        pipelines,
        Fraction(num_ports, pipelines),
        min_wire_packet_bytes,
    )


def demux_config(
    port_speed_bps: float,
    demux_factor: int,
    min_wire_packet_bytes: float = ETHERNET_MIN_WIRE_BYTES,
    num_ports: int = 64,
) -> SwitchConfig:
    """ADCP-style design: each port demultiplexed 1:m (Table 3 rows)."""
    if demux_factor < 1:
        raise ConfigError(f"demux factor must be >= 1, got {demux_factor}")
    return SwitchConfig(
        port_speed_bps * num_ports,
        port_speed_bps,
        num_ports * demux_factor,
        Fraction(1, demux_factor),
        min_wire_packet_bytes,
    )


@dataclass(frozen=True)
class TableRow:
    """A published row, for diffing model output against the paper."""

    throughput_gbps: float | None
    port_speed_gbps: float
    pipelines: int | None
    ports_per_pipeline: Fraction
    min_packet_bytes: float
    freq_ghz: float


PAPER_TABLE2_ROWS: tuple[TableRow, ...] = (
    TableRow(640, 10, 1, Fraction(64), 84, 0.95),
    TableRow(6400, 100, 4, Fraction(16), 160, 1.25),
    TableRow(12800, 400, 4, Fraction(8), 247, 1.62),
    TableRow(25600, 800, 8, Fraction(8), 495, 1.62),
    TableRow(51200, 1600, 8, Fraction(4), 495, 1.62),
)
"""Table 2 of the paper, "Port multiplexing poor scalability", verbatim."""

PAPER_TABLE3_ROWS: tuple[TableRow, ...] = (
    TableRow(None, 800, None, Fraction(8), 495, 1.62),
    TableRow(None, 800, None, Fraction(1, 2), 84, 0.60),
    TableRow(None, 1600, None, Fraction(4), 495, 1.62),
    TableRow(None, 1600, None, Fraction(1, 2), 84, 1.19),
)
"""Table 3 of the paper, "Port demultiplexing examples", verbatim."""


@dataclass(frozen=True)
class ComputedRow:
    """A model-derived row alongside the published frequency."""

    throughput_gbps: float | None
    port_speed_gbps: float
    pipelines: int | None
    ports_per_pipeline: Fraction
    min_packet_bytes: float
    computed_freq_ghz: float
    paper_freq_ghz: float

    @property
    def freq_error(self) -> float:
        """Relative error of the model against the published number."""
        return abs(self.computed_freq_ghz - self.paper_freq_ghz) / self.paper_freq_ghz


def _compute_row(row: TableRow) -> ComputedRow:
    freq = pipeline_frequency(
        row.port_speed_gbps * GBPS,
        float(row.ports_per_pipeline),
        row.min_packet_bytes,
    )
    return ComputedRow(
        row.throughput_gbps,
        row.port_speed_gbps,
        row.pipelines,
        row.ports_per_pipeline,
        row.min_packet_bytes,
        freq / GHZ,
        row.freq_ghz,
    )


def table2_rows() -> list[ComputedRow]:
    """Recompute every Table 2 row from first principles."""
    return [_compute_row(row) for row in PAPER_TABLE2_ROWS]


def table3_rows() -> list[ComputedRow]:
    """Recompute every Table 3 row from first principles."""
    return [_compute_row(row) for row in PAPER_TABLE3_ROWS]


def min_packet_for_frequency(
    port_speed_bps: float,
    ports_per_pipeline: Fraction | float,
    max_freq_hz: float,
) -> float:
    """Minimum wire packet size that keeps the pipeline at ``max_freq_hz``.

    This is the designer's lever in Table 2: given a frequency ceiling,
    how big must the assumed minimum packet grow?
    """
    if max_freq_hz <= 0:
        raise ConfigError("frequency ceiling must be positive")
    aggregate = port_speed_bps * float(ports_per_pipeline)
    return aggregate / (max_freq_hz * 8)
