"""Analytical scaling models reproducing the paper's quantitative tables.

- :mod:`~repro.analytical.scaling` — the multiplexing/demultiplexing
  arithmetic behind Table 2 ("Port multiplexing poor scalability") and
  Table 3 ("Port demultiplexing examples").
- :mod:`~repro.analytical.keyrate` — the key-rate model of section 3.2
  (packets per second x elements per packet), including the 16x headroom
  claim.
- :mod:`~repro.analytical.frontier` — feasibility-frontier sweeps: for a
  grid of port speeds and design knobs, which (frequency, min-packet)
  points are achievable under multiplexing vs demultiplexing.
"""

from .frontier import (
    DesignPoint,
    demux_frontier,
    mux_frontier,
    required_demux_factor,
    sweep_port_speeds,
)
from .keyrate import KeyRateModel, rmt_key_rate_ceiling
from .scaling import (
    PAPER_TABLE2_ROWS,
    PAPER_TABLE3_ROWS,
    SwitchConfig,
    demux_config,
    min_packet_for_frequency,
    mux_config,
    table2_rows,
    table3_rows,
)

__all__ = [
    "DesignPoint",
    "KeyRateModel",
    "PAPER_TABLE2_ROWS",
    "PAPER_TABLE3_ROWS",
    "SwitchConfig",
    "demux_config",
    "demux_frontier",
    "min_packet_for_frequency",
    "mux_config",
    "mux_frontier",
    "required_demux_factor",
    "rmt_key_rate_ceiling",
    "sweep_port_speeds",
    "table2_rows",
    "table3_rows",
]
