"""Feasibility-frontier sweeps over the design space.

Tables 2 and 3 are point samples; this module sweeps the underlying model
so the benchmarks can show the whole curve: for each port speed, what
(pipeline frequency, minimum packet) pairs are reachable by multiplexing
(RMT's lever) versus demultiplexing (ADCP's lever), and where multiplexing
stops being viable ("this path is not sustainable").
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..errors import ConfigError
from ..units import ETHERNET_MIN_WIRE_BYTES, GHZ, pipeline_frequency
from .scaling import min_packet_for_frequency

MAX_VIABLE_FREQ_GHZ = 1.7
"""Frequency ceiling for current fabrication, per the paper's 1.62 GHz cap."""


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: the knobs plus the resulting clock."""

    port_speed_gbps: float
    ports_per_pipeline: Fraction
    min_wire_packet_bytes: float
    freq_ghz: float

    @property
    def demux_factor(self) -> int:
        if self.ports_per_pipeline >= 1:
            return 1
        return int(round(1 / self.ports_per_pipeline))

    @property
    def viable(self) -> bool:
        """Within the frequency ceiling at the true Ethernet minimum?"""
        return self.freq_ghz <= MAX_VIABLE_FREQ_GHZ

    @property
    def honest_min_packet(self) -> bool:
        """True when the design supports real 84 B wire-minimum packets."""
        return self.min_wire_packet_bytes <= ETHERNET_MIN_WIRE_BYTES + 1e-9


def mux_frontier(
    port_speed_gbps: float,
    ports_per_pipeline_options: tuple[int, ...] = (64, 32, 16, 8, 4, 2, 1),
    max_freq_ghz: float = MAX_VIABLE_FREQ_GHZ,
) -> list[DesignPoint]:
    """RMT-style options for one port speed.

    For each multiplexing factor, computes the minimum packet size needed
    to stay under the frequency ceiling (floored at the 84 B Ethernet
    minimum) and the resulting clock.
    """
    if port_speed_gbps <= 0:
        raise ConfigError("port speed must be positive")
    points = []
    for ports in ports_per_pipeline_options:
        needed = min_packet_for_frequency(
            port_speed_gbps * 1e9, ports, max_freq_ghz * GHZ
        )
        min_packet = max(needed, ETHERNET_MIN_WIRE_BYTES)
        freq = pipeline_frequency(port_speed_gbps * 1e9, ports, min_packet)
        points.append(
            DesignPoint(port_speed_gbps, Fraction(ports), min_packet, freq / GHZ)
        )
    return points


def demux_frontier(
    port_speed_gbps: float,
    demux_factors: tuple[int, ...] = (1, 2, 4, 8),
    min_wire_packet_bytes: float = ETHERNET_MIN_WIRE_BYTES,
) -> list[DesignPoint]:
    """ADCP-style options: split each port across m pipelines.

    Always assumes honest 84 B minimum packets — the whole point is that
    demultiplexing makes that assumption affordable again.
    """
    if port_speed_gbps <= 0:
        raise ConfigError("port speed must be positive")
    points = []
    for m in demux_factors:
        if m < 1:
            raise ConfigError(f"demux factor must be >= 1, got {m}")
        ratio = Fraction(1, m)
        freq = pipeline_frequency(
            port_speed_gbps * 1e9, float(ratio), min_wire_packet_bytes
        )
        points.append(
            DesignPoint(port_speed_gbps, ratio, min_wire_packet_bytes, freq / GHZ)
        )
    return points


def sweep_port_speeds(
    port_speeds_gbps: tuple[float, ...] = (10, 100, 400, 800, 1600, 3200),
) -> dict[float, dict[str, list[DesignPoint]]]:
    """Full design-space sweep for the frontier benchmark.

    Returns, per port speed, the mux options (with the packet-size tax they
    pay) and the demux options (with honest minimum packets).
    """
    result: dict[float, dict[str, list[DesignPoint]]] = {}
    for speed in port_speeds_gbps:
        result[speed] = {
            "mux": mux_frontier(speed),
            "demux": demux_frontier(speed),
        }
    return result


def required_demux_factor(
    port_speed_gbps: float,
    max_freq_ghz: float = MAX_VIABLE_FREQ_GHZ,
    min_wire_packet_bytes: float = ETHERNET_MIN_WIRE_BYTES,
) -> int:
    """Smallest 1:m demux keeping honest-minimum packets under the ceiling.

    E.g. a 1.6 Tbps port needs 2.38 GHz at 84 B; with the 1.7 GHz ceiling
    the required demux factor is 2 (yielding 1.19 GHz).
    """
    if port_speed_gbps <= 0:
        raise ConfigError("port speed must be positive")
    m = 1
    while True:
        freq = pipeline_frequency(
            port_speed_gbps * 1e9, 1.0 / m, min_wire_packet_bytes
        )
        if freq / GHZ <= max_freq_ghz:
            return m
        m *= 2
        if m > 1024:
            raise ConfigError(
                f"no demux factor up to 1024 satisfies {max_freq_ghz} GHz "
                f"for {port_speed_gbps} Gbps ports"
            )
