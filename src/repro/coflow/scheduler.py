"""Coflow-aware scheduling — the section 5 extension.

"We believe intriguing opportunities can be unleashed when making the
scheduler programmable, especially in an architecture like the one
proposed here that heavily relies on multiple shared memory schedulers."

This module provides the substrate for that discussion: a fluid (rate-
based) fabric model over which pluggable coflow schedulers allocate port
bandwidth, and the three canonical policies from the coflow literature
(the paper's reference [6]):

- :class:`FifoCoflowScheduler` — strict arrival order (what a classic,
  application-blind TM effectively does);
- :class:`FairSharingScheduler` — per-flow max-min fairness (per-flow
  fair queueing, still coflow-blind);
- :class:`SebfScheduler` — Smallest Effective Bottleneck First, the
  classic coflow-aware heuristic: coflows ordered by the completion time
  of their most bottlenecked port, served with strict priority.

The fluid model advances between flow-completion events, recomputing
rates at each step, and reports per-coflow CCTs.  The A4 ablation bench
shows the coflow-aware policy beating the coflow-blind ones on average
CCT — the quantitative case for TM programmability.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import BITS_PER_BYTE
from .model import Coflow, FlowDirection


@dataclass
class _FlowState:
    coflow_id: int
    flow_id: int
    src_port: int
    dst_port: int
    remaining_bits: float
    finish_time: float | None = None


@dataclass
class ScheduleResult:
    """Per-coflow completion times plus run metadata."""

    cct: dict[int, float]
    makespan: float
    policy: str

    @property
    def average_cct(self) -> float:
        if not self.cct:
            raise ConfigError("schedule produced no completions")
        return sum(self.cct.values()) / len(self.cct)

    def slowdown_vs(self, other: "ScheduleResult") -> float:
        """Mean per-coflow CCT ratio of this schedule over ``other``."""
        if set(self.cct) != set(other.cct):
            raise ConfigError("schedules cover different coflows")
        ratios = [self.cct[c] / other.cct[c] for c in self.cct]
        return sum(ratios) / len(ratios)


class CoflowScheduler:
    """Base: a policy is an ordering + a bandwidth-sharing discipline."""

    name = "base"

    def priority_order(self, coflows: list[Coflow], port_bps: float) -> list[int]:
        """Coflow ids, highest priority first.  Ties by id."""
        raise NotImplementedError

    def schedule(self, coflows: list[Coflow], port_bps: float) -> ScheduleResult:
        """Run the fluid simulation under this policy."""
        if not coflows:
            raise ConfigError("need at least one coflow")
        if port_bps <= 0:
            raise ConfigError("port speed must be positive")
        flows = self._materialize(coflows)
        order = {cid: rank for rank, cid in
                 enumerate(self.priority_order(coflows, port_bps))}
        release = {c.coflow_id: c.release_time for c in coflows}
        now = 0.0
        active = [f for f in flows if f.finish_time is None]
        guard = 0
        while any(f.finish_time is None for f in flows):
            guard += 1
            if guard > 10 * len(flows) + 100:
                raise ConfigError("fluid schedule failed to converge")
            now, active = self._advance(flows, order, release, port_bps, now)

        cct = {}
        for coflow in coflows:
            finish = max(
                f.finish_time for f in flows if f.coflow_id == coflow.coflow_id
            )
            assert finish is not None
            cct[coflow.coflow_id] = finish - coflow.release_time
        return ScheduleResult(cct, now, self.name)

    # --- fluid mechanics ---------------------------------------------------------

    @staticmethod
    def _materialize(coflows: list[Coflow]) -> list[_FlowState]:
        flows: list[_FlowState] = []
        for coflow in coflows:
            for flow in coflow.flows:
                if flow.direction is not FlowDirection.INPUT:
                    continue
                if flow.element_count == 0:
                    continue
                flows.append(
                    _FlowState(
                        coflow.coflow_id,
                        flow.flow_id,
                        flow.src_port,
                        flow.dst_port,
                        flow.size_bytes * BITS_PER_BYTE,
                    )
                )
        if not flows:
            raise ConfigError("coflows contain no input flows")
        return flows

    def _rates(
        self,
        active: list[_FlowState],
        order: dict[int, int],
        port_bps: float,
    ) -> dict[tuple[int, int], float]:
        """Per-flow rates under strict coflow priority.

        Higher-priority coflows claim their fair share first on each port;
        leftovers cascade down.  Flows of one coflow share its claim on a
        port equally (the fluid analogue of per-flow fair queueing within
        a priority class).
        """
        remaining_src = {}
        remaining_dst = {}
        for flow in active:
            remaining_src.setdefault(flow.src_port, port_bps)
            remaining_dst.setdefault(flow.dst_port, port_bps)

        rates: dict[tuple[int, int], float] = {}
        ranked = sorted(active, key=lambda f: (order[f.coflow_id], f.flow_id))
        by_class: dict[int, list[_FlowState]] = {}
        for flow in ranked:
            by_class.setdefault(order[flow.coflow_id], []).append(flow)

        for rank in sorted(by_class):
            class_flows = by_class[rank]
            src_count: dict[int, int] = {}
            dst_count: dict[int, int] = {}
            for flow in class_flows:
                src_count[flow.src_port] = src_count.get(flow.src_port, 0) + 1
                dst_count[flow.dst_port] = dst_count.get(flow.dst_port, 0) + 1
            for flow in class_flows:
                share_src = remaining_src[flow.src_port] / src_count[flow.src_port]
                share_dst = remaining_dst[flow.dst_port] / dst_count[flow.dst_port]
                rate = min(share_src, share_dst)
                rates[(flow.coflow_id, flow.flow_id)] = rate
            for flow in class_flows:
                rate = rates[(flow.coflow_id, flow.flow_id)]
                remaining_src[flow.src_port] -= rate
                remaining_dst[flow.dst_port] -= rate
        return rates

    def _advance(self, flows, order, release, port_bps, now):
        active = [
            f for f in flows
            if f.finish_time is None and release[f.coflow_id] <= now + 1e-18
        ]
        if not active:
            # Jump to the next release.
            pending = [
                release[f.coflow_id] for f in flows if f.finish_time is None
            ]
            return min(pending), []
        rates = self._rates(active, order, port_bps)
        horizon = None
        next_release = min(
            (release[f.coflow_id] for f in flows
             if f.finish_time is None and release[f.coflow_id] > now),
            default=None,
        )
        for flow in active:
            rate = rates[(flow.coflow_id, flow.flow_id)]
            if rate <= 0:
                continue
            t = flow.remaining_bits / rate
            horizon = t if horizon is None else min(horizon, t)
        if horizon is None:
            raise ConfigError("no active flow can make progress")
        if next_release is not None:
            horizon = min(horizon, next_release - now)
        for flow in active:
            rate = rates[(flow.coflow_id, flow.flow_id)]
            flow.remaining_bits -= rate * horizon
            if flow.remaining_bits <= 1e-6:
                flow.remaining_bits = 0.0
                flow.finish_time = now + horizon
        return now + horizon, active


class FifoCoflowScheduler(CoflowScheduler):
    """Strict arrival order — the application-blind baseline."""

    name = "fifo"

    def priority_order(self, coflows: list[Coflow], port_bps: float) -> list[int]:
        return [
            c.coflow_id
            for c in sorted(coflows, key=lambda c: (c.release_time, c.coflow_id))
        ]


class FairSharingScheduler(CoflowScheduler):
    """Per-flow fairness: every active coflow shares one priority class."""

    name = "fair"

    def priority_order(self, coflows: list[Coflow], port_bps: float) -> list[int]:
        return [c.coflow_id for c in coflows]

    def _rates(self, active, order, port_bps):
        flat = {cid: 0 for cid in {f.coflow_id for f in active}}
        return super()._rates(active, flat, port_bps)


class SebfScheduler(CoflowScheduler):
    """Smallest Effective Bottleneck First — coflow-aware priority.

    A coflow's *effective bottleneck* is the drain time of its most
    loaded port at full port speed; serving small-bottleneck coflows
    first minimizes average CCT the way SJF minimizes average waiting
    time.
    """

    name = "sebf"

    @staticmethod
    def bottleneck_s(coflow: Coflow, port_bps: float) -> float:
        # RX and TX are independent resources (full duplex), so a flow
        # whose src and dst are the same port does not double-load it.
        rx: dict[int, float] = {}
        tx: dict[int, float] = {}
        for flow in coflow.input_flows:
            bits = flow.size_bytes * BITS_PER_BYTE
            rx[flow.src_port] = rx.get(flow.src_port, 0.0) + bits
            tx[flow.dst_port] = tx.get(flow.dst_port, 0.0) + bits
        if not rx:
            raise ConfigError(f"coflow {coflow.coflow_id} has no input flows")
        return max(max(rx.values()), max(tx.values())) / port_bps

    def priority_order(self, coflows: list[Coflow], port_bps: float) -> list[int]:
        return [
            c.coflow_id
            for c in sorted(
                coflows,
                key=lambda c: (self.bottleneck_s(c, port_bps), c.coflow_id),
            )
        ]
