"""Synthetic coflow workload generation.

Two layers:

1. Pattern constructors for the Table 1 applications —
   :func:`aggregation_coflow` (ML parameter aggregation, all-to-one-to-all),
   :func:`shuffle_coflow` (database filter-aggregate-reshuffle),
   :func:`bsp_round_coflow` (graph pattern mining, bulk-synchronous rounds),
   :func:`multicast_coflow` (switch-initiated group communication).
2. :func:`synthesize_workload` — a mixed workload whose coflow widths and
   sizes follow the heavy-tailed shape reported for the Facebook coflow
   trace (most coflows are narrow and small; a few wide, huge coflows carry
   most bytes).  We substitute synthesis for the proprietary trace; the
   shape parameters are exposed in :class:`WorkloadShape` and documented in
   DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .model import Coflow, Flow, FlowDirection


def aggregation_coflow(
    coflow_id: int,
    worker_ports: list[int],
    vector_elements: int,
    element_width_bytes: int = 8,
    result_ports: list[int] | None = None,
) -> Coflow:
    """All-to-all parameter aggregation (Table 1, ML training).

    Every worker sends a full vector of ``vector_elements`` weights in; the
    switch reduces element-wise and sends the aggregated vector back out to
    ``result_ports`` (defaults to all workers — the all-reduce pattern).
    """
    if not worker_ports:
        raise ConfigError("aggregation coflow needs at least one worker")
    if vector_elements <= 0:
        raise ConfigError("vector must have at least one element")
    result_ports = worker_ports if result_ports is None else result_ports
    coflow = Coflow(coflow_id, pattern="aggregation")
    flow_id = 0
    for worker, port in enumerate(worker_ports):
        coflow.add(
            Flow(
                flow_id,
                src_port=port,
                dst_port=port,
                element_count=vector_elements,
                element_width_bytes=element_width_bytes,
                direction=FlowDirection.INPUT,
                worker_id=worker,
            )
        )
        flow_id += 1
    for worker, port in enumerate(result_ports):
        coflow.add(
            Flow(
                flow_id,
                src_port=port,
                dst_port=port,
                element_count=vector_elements,
                element_width_bytes=element_width_bytes,
                direction=FlowDirection.OUTPUT,
                worker_id=worker,
            )
        )
        flow_id += 1
    return coflow


def shuffle_coflow(
    coflow_id: int,
    mapper_ports: list[int],
    reducer_ports: list[int],
    elements_per_mapper: int,
    element_width_bytes: int = 8,
) -> Coflow:
    """Filter-aggregate-reshuffle (Table 1, database analytics).

    Every mapper emits data that must be re-partitioned across all
    reducers: an m x r flow matrix.  Element counts are split evenly with
    the remainder spread over the first flows.
    """
    if not mapper_ports or not reducer_ports:
        raise ConfigError("shuffle needs mappers and reducers")
    coflow = Coflow(coflow_id, pattern="shuffle")
    flow_id = 0
    reducers = len(reducer_ports)
    for mapper, src in enumerate(mapper_ports):
        base, remainder = divmod(elements_per_mapper, reducers)
        for reducer, dst in enumerate(reducer_ports):
            count = base + (1 if reducer < remainder else 0)
            if count == 0:
                continue
            coflow.add(
                Flow(
                    flow_id,
                    src_port=src,
                    dst_port=dst,
                    element_count=count,
                    element_width_bytes=element_width_bytes,
                    direction=FlowDirection.INPUT,
                    worker_id=mapper,
                )
            )
            flow_id += 1
    return coflow


def bsp_round_coflow(
    coflow_id: int,
    partition_ports: list[int],
    frontier_elements: int,
    round_: int,
    growth: float = 1.6,
    element_width_bytes: int = 8,
) -> Coflow:
    """One BSP superstep of graph pattern mining (Table 1).

    Partitions exchange frontier data all-to-all; the frontier grows by
    ``growth``x per round, modeling "increasingly large patterns in the
    graph at each iteration".
    """
    if round_ < 0:
        raise ConfigError(f"round must be >= 0, got {round_}")
    scaled = max(1, int(frontier_elements * growth**round_))
    coflow = shuffle_coflow(
        coflow_id,
        partition_ports,
        partition_ports,
        scaled,
        element_width_bytes,
    )
    coflow.pattern = "bsp"
    return coflow


def multicast_coflow(
    coflow_id: int,
    src_port: int,
    member_ports: list[int],
    elements: int,
    element_width_bytes: int = 8,
) -> Coflow:
    """Switch-initiated group data transfer (Table 1, group communications).

    One input flow fans out to every group member as output flows.
    """
    if not member_ports:
        raise ConfigError("multicast group must have members")
    coflow = Coflow(coflow_id, pattern="multicast")
    coflow.add(
        Flow(
            0,
            src_port=src_port,
            dst_port=src_port,
            element_count=elements,
            element_width_bytes=element_width_bytes,
            direction=FlowDirection.INPUT,
        )
    )
    for i, port in enumerate(member_ports, start=1):
        coflow.add(
            Flow(
                i,
                src_port=src_port,
                dst_port=port,
                element_count=elements,
                element_width_bytes=element_width_bytes,
                direction=FlowDirection.OUTPUT,
                worker_id=i - 1,
            )
        )
    return coflow


@dataclass(frozen=True)
class WorkloadShape:
    """Shape parameters for heavy-tailed coflow synthesis.

    Defaults approximate the published Facebook trace analysis: ~60% of
    coflows are narrow (width <= 4) but >95% of bytes come from wide
    coflows; sizes are Pareto-tailed.
    """

    width_log_mean: float = 1.0
    width_log_sigma: float = 1.2
    max_width: int = 64
    size_pareto_shape: float = 1.3
    min_flow_elements: int = 16
    max_flow_elements: int = 1 << 20
    pattern_mix: tuple[tuple[str, float], ...] = (
        ("aggregation", 0.3),
        ("shuffle", 0.4),
        ("bsp", 0.2),
        ("multicast", 0.1),
    )

    def __post_init__(self) -> None:
        total = sum(weight for _, weight in self.pattern_mix)
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"pattern mix weights sum to {total}, expected 1")
        if self.max_width < 2:
            raise ConfigError("max width must be at least 2")


@dataclass
class CoflowWorkload:
    """A generated workload: coflows plus the shape that produced them."""

    coflows: list[Coflow]
    shape: WorkloadShape
    num_ports: int

    def __len__(self) -> int:
        return len(self.coflows)

    def __iter__(self):
        return iter(self.coflows)

    @property
    def total_bytes(self) -> int:
        return sum(c.size_bytes for c in self.coflows)

    @property
    def total_elements(self) -> int:
        return sum(c.total_elements for c in self.coflows)

    def widths(self) -> list[int]:
        return [c.width for c in self.coflows]

    def by_pattern(self, pattern: str) -> list[Coflow]:
        return [c for c in self.coflows if c.pattern == pattern]


def _sample_width(shape: WorkloadShape, rng: np.random.Generator) -> int:
    width = int(rng.lognormal(shape.width_log_mean, shape.width_log_sigma))
    return int(np.clip(width, 2, shape.max_width))


def _sample_elements(shape: WorkloadShape, rng: np.random.Generator) -> int:
    raw = shape.min_flow_elements * (1.0 + rng.pareto(shape.size_pareto_shape))
    return int(np.clip(raw, shape.min_flow_elements, shape.max_flow_elements))


def synthesize_workload(
    num_coflows: int,
    num_ports: int,
    rng: np.random.Generator,
    shape: WorkloadShape | None = None,
    mean_interarrival_s: float = 0.0,
) -> CoflowWorkload:
    """Generate a mixed, heavy-tailed coflow workload.

    Each coflow's pattern is drawn from ``shape.pattern_mix``, its
    participating ports are a random subset of ``num_ports``, its width is
    lognormal, and its per-flow element count is Pareto.  Release times are
    exponential with the given mean gap (0 = all released at time zero).
    """
    if num_coflows <= 0:
        raise ConfigError(f"need at least one coflow, got {num_coflows}")
    if num_ports < 2:
        raise ConfigError(f"need at least two ports, got {num_ports}")
    shape = shape or WorkloadShape()

    patterns = [name for name, _ in shape.pattern_mix]
    weights = np.array([w for _, w in shape.pattern_mix])
    coflows: list[Coflow] = []
    release = 0.0
    for coflow_id in range(num_coflows):
        pattern = patterns[int(rng.choice(len(patterns), p=weights))]
        width = min(_sample_width(shape, rng), num_ports)
        ports = [int(p) for p in rng.choice(num_ports, size=width, replace=False)]
        elements = _sample_elements(shape, rng)
        if pattern == "aggregation":
            coflow = aggregation_coflow(coflow_id, ports, elements)
        elif pattern == "shuffle":
            half = max(1, width // 2)
            coflow = shuffle_coflow(
                coflow_id, ports[:half], ports[half:] or ports[:half], elements
            )
        elif pattern == "bsp":
            coflow = bsp_round_coflow(
                coflow_id, ports, max(1, elements // 4), round_=0
            )
        else:
            coflow = multicast_coflow(coflow_id, ports[0], ports[1:] or ports, elements)
        if mean_interarrival_s > 0:
            release += float(rng.exponential(mean_interarrival_s))
        coflow.release_time = release
        coflows.append(coflow)
    return CoflowWorkload(coflows, shape, num_ports)
