"""Placement policies: how coflow state is spread across pipelines.

Section 3.1: "the application needs to define the criteria by which the
first TM will forward packets across the [central] pipelines", e.g. "by
ranges or hashes over a given data element on each packet".  A policy maps
a key (a data element's key field) to a partition index; the ADCP's first
traffic manager consults one per application.

The same policies describe the *constraint* on RMT: there, placement is
forced by physical port attachment, which :class:`PortAffinityPlacement`
models so experiments can compare like for like.
"""

from __future__ import annotations

from bisect import bisect_right

from ..errors import ConfigError, PlacementError
from ..sim.rng import stable_hash64


class PlacementPolicy:
    """Maps element keys to partition (central pipeline) indices."""

    def __init__(self, partitions: int) -> None:
        if partitions < 1:
            raise ConfigError(
                f"placement needs at least one partition, got {partitions}"
            )
        self.partitions = partitions

    def place(self, key: int) -> int:
        """Return the partition index for ``key`` (0-based)."""
        raise NotImplementedError

    def place_many(self, keys: list[int]) -> list[int]:
        """Vector version of :meth:`place`."""
        return [self.place(key) for key in keys]

    def histogram(self, keys: list[int]) -> list[int]:
        """Count of keys landing on each partition."""
        counts = [0] * self.partitions
        for key in keys:
            counts[self.place(key)] += 1
        return counts

    def balance(self, keys: list[int]) -> float:
        """Load balance quality: mean partition load / max load (1.0 = perfect)."""
        counts = self.histogram(keys)
        peak = max(counts)
        if peak == 0:
            raise PlacementError("cannot compute balance of zero keys")
        return (sum(counts) / self.partitions) / peak


class HashPlacement(PlacementPolicy):
    """Uniform placement by a stable 64-bit hash of the key.

    The default policy for aggregation workloads: "place a given weight to
    aggregate on a pipeline based on the weight's ID hash" (section 3.1).
    Placements are memoized: the hash is pure and the switches consult the
    policy once per packet on the steering path.
    """

    def __init__(self, partitions: int) -> None:
        super().__init__(partitions)
        self._memo: dict[int, int] = {}

    def place(self, key: int) -> int:
        partition = self._memo.get(key)
        if partition is None:
            partition = self._memo[key] = (
                stable_hash64(key) % self.partitions
            )
        return partition


class RangePlacement(PlacementPolicy):
    """Placement by key ranges, for order-sensitive applications.

    ``boundaries`` are the right-open split points: partition ``i`` holds
    keys in ``[boundaries[i-1], boundaries[i])``.
    """

    def __init__(self, boundaries: list[int]) -> None:
        if not boundaries:
            raise ConfigError("range placement needs at least one boundary")
        if sorted(boundaries) != list(boundaries):
            raise ConfigError(f"boundaries must be sorted, got {boundaries}")
        if len(set(boundaries)) != len(boundaries):
            raise ConfigError(f"boundaries must be distinct, got {boundaries}")
        super().__init__(len(boundaries) + 1)
        self.boundaries = list(boundaries)

    def place(self, key: int) -> int:
        return bisect_right(self.boundaries, key)


class ExplicitPlacement(PlacementPolicy):
    """Application-pinned placement from an explicit key map.

    Unmapped keys either go to a default partition or raise, depending on
    ``strict`` — strict mode catches workload/placement mismatches early.
    """

    def __init__(
        self,
        partitions: int,
        mapping: dict[int, int],
        default: int | None = None,
        strict: bool = False,
    ) -> None:
        super().__init__(partitions)
        for key, part in mapping.items():
            if not 0 <= part < partitions:
                raise ConfigError(
                    f"key {key} mapped to partition {part}, "
                    f"valid range is [0, {partitions})"
                )
        if default is not None and not 0 <= default < partitions:
            raise ConfigError(f"default partition {default} out of range")
        self.mapping = dict(mapping)
        self.default = default
        self.strict = strict

    def place(self, key: int) -> int:
        if key in self.mapping:
            return self.mapping[key]
        if self.strict or self.default is None:
            raise PlacementError(f"key {key} has no explicit placement")
        return self.default


class PortAffinityPlacement(PlacementPolicy):
    """RMT's forced placement: state lives where the port attaches.

    Not a choice but a constraint: an input flow's state can only live on
    the pipeline its ingress port is multiplexed into.  ``ports_per_pipeline``
    fixes the port-to-pipeline map; :meth:`place_port` is the primary
    interface and :meth:`place` treats the key as a port number.
    """

    def __init__(self, num_ports: int, ports_per_pipeline: int) -> None:
        if num_ports < 1:
            raise ConfigError(f"need at least one port, got {num_ports}")
        if ports_per_pipeline < 1:
            raise ConfigError(
                f"ports per pipeline must be >= 1, got {ports_per_pipeline}"
            )
        partitions = (num_ports + ports_per_pipeline - 1) // ports_per_pipeline
        super().__init__(partitions)
        self.num_ports = num_ports
        self.ports_per_pipeline = ports_per_pipeline

    def place_port(self, port: int) -> int:
        if not 0 <= port < self.num_ports:
            raise PlacementError(
                f"port {port} out of range [0, {self.num_ports})"
            )
        return port // self.ports_per_pipeline

    def place(self, key: int) -> int:
        return self.place_port(key)

    def ports_of(self, pipeline: int) -> list[int]:
        """Ports physically attached to a pipeline."""
        if not 0 <= pipeline < self.partitions:
            raise PlacementError(
                f"pipeline {pipeline} out of range [0, {self.partitions})"
            )
        start = pipeline * self.ports_per_pipeline
        end = min(start + self.ports_per_pipeline, self.num_ports)
        return list(range(start, end))
