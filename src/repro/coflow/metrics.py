"""Coflow and packet-stream metrics.

Three families:

- **Completion**: coflow completion time (CCT) — last byte of the slowest
  flow — the canonical coflow metric.
- **Goodput**: application-useful bytes over wire bytes; the paper argues
  scalar-only packets "are often small and thus have subpar goodput".
- **Key rate**: "the performance of a switch is connected to the rate of
  *keys* rather than the packets it can process" (section 3.2); key rate =
  packet rate x elements per packet.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..net.packet import Packet
from ..units import BITS_PER_BYTE
from .model import Coflow


def completion_time(
    flow_finish_times: dict[int, float], release_time: float = 0.0
) -> float:
    """CCT: time from release until the *last* flow finishes.

    Takes a map of flow id -> finish time so schedulers can report partial
    progress; raises when empty because a CCT of zero would silently skew
    averages.
    """
    if not flow_finish_times:
        raise ConfigError("cannot compute CCT with no finished flows")
    last = max(flow_finish_times.values())
    if last < release_time:
        raise ConfigError(
            f"finish time {last} precedes release time {release_time}"
        )
    return last - release_time


def goodput_fraction(packets: list[Packet]) -> float:
    """Application bytes / wire bytes over a packet stream."""
    if not packets:
        raise ConfigError("cannot compute goodput of an empty stream")
    wire = sum(p.wire_bytes for p in packets)
    good = sum(p.goodput_bytes for p in packets)
    return good / wire


def key_rate(packet_rate_pps: float, elements_per_packet: int) -> float:
    """Keys (data elements) processed per second.

    This is the section 3.2 headline metric: an RMT switch at 6 Bpps with
    scalar packets does 6 Bops/s; 16-wide arrays push it to ~96 Bops/s.
    """
    if packet_rate_pps < 0:
        raise ConfigError(f"packet rate must be >= 0, got {packet_rate_pps}")
    if elements_per_packet <= 0:
        raise ConfigError(
            f"elements per packet must be positive, got {elements_per_packet}"
        )
    return packet_rate_pps * elements_per_packet


@dataclass
class CoflowMetrics:
    """Aggregate measurements for one coflow run through a switch."""

    coflow_id: int
    release_time: float
    finish_time: float
    wire_bytes: int
    goodput_bytes: int
    packets: int
    elements: int
    recirculated_packets: int = 0
    dropped_packets: int = 0

    @property
    def cct(self) -> float:
        return self.finish_time - self.release_time

    @property
    def goodput(self) -> float:
        if self.wire_bytes == 0:
            return 0.0
        return self.goodput_bytes / self.wire_bytes

    @property
    def elements_per_packet(self) -> float:
        if self.packets == 0:
            return 0.0
        return self.elements / self.packets

    def throughput_bps(self) -> float:
        """Average wire throughput over the coflow's lifetime."""
        if self.cct <= 0:
            raise ConfigError(
                f"coflow {self.coflow_id} has non-positive CCT {self.cct}"
            )
        return self.wire_bytes * BITS_PER_BYTE / self.cct

    def element_rate(self) -> float:
        """Average elements (keys) per second over the coflow's lifetime."""
        if self.cct <= 0:
            raise ConfigError(
                f"coflow {self.coflow_id} has non-positive CCT {self.cct}"
            )
        return self.elements / self.cct


def ideal_cct(
    coflow: Coflow,
    port_speed_bps: float,
    elements_per_packet: int,
    per_packet_overhead_bytes: int = 66,
) -> float:
    """Lower-bound CCT from port bandwidth alone (no switch contention).

    Every flow is limited by its port; the coflow completes when the most
    loaded port drains.  ``per_packet_overhead_bytes`` is the non-payload
    wire footprint of each packet (headers + framing), 66 B for the
    standard Eth/IP/UDP/coflow stack with preamble and IFG.
    """
    if port_speed_bps <= 0:
        raise ConfigError("port speed must be positive")
    load_per_port: dict[int, float] = {}
    for flow in coflow.flows:
        packets = flow.packet_count(elements_per_packet)
        wire_bytes = flow.size_bytes + packets * per_packet_overhead_bytes
        port = (
            flow.src_port
            if flow.direction.name == "INPUT"
            else flow.dst_port
        )
        load_per_port[port] = load_per_port.get(port, 0.0) + wire_bytes
    worst = max(load_per_port.values())
    return worst * BITS_PER_BYTE / port_speed_bps
