"""Flow and coflow data model.

A :class:`Flow` describes one direction of traffic between a server port
and the switch; a :class:`Coflow` groups flows that belong to one
application step ("the weight calculations ... engage in an all-to-all
exchange", Table 1).  The model is descriptive — actual packets are
produced from it by :meth:`Flow.packets` — so workload generators, placement
policies, and metrics all speak the same vocabulary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigError
from ..net.packet import Packet
from ..net.traffic import make_coflow_packet


class FlowDirection(Enum):
    """Whether a flow feeds the switch or is produced by it."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Flow:
    """One coordinated flow of a coflow.

    Attributes:
        flow_id: Unique id within the coflow.
        src_port: Switch ingress port the flow arrives on (input flows).
        dst_port: Switch egress port the flow leaves on (output flows).
        element_count: Total data elements carried by the flow.
        element_width_bytes: Wire bytes per element (key + value).
        direction: Input or output relative to the switch.
        worker_id: Application worker the flow belongs to.
    """

    flow_id: int
    src_port: int
    dst_port: int
    element_count: int
    element_width_bytes: int = 8
    direction: FlowDirection = FlowDirection.INPUT
    worker_id: int = 0

    def __post_init__(self) -> None:
        if self.element_count < 0:
            raise ConfigError(
                f"flow {self.flow_id}: element count must be >= 0, "
                f"got {self.element_count}"
            )
        if self.element_width_bytes <= 0:
            raise ConfigError(
                f"flow {self.flow_id}: element width must be positive"
            )

    @property
    def size_bytes(self) -> int:
        """Application bytes carried by the flow."""
        return self.element_count * self.element_width_bytes

    def packet_count(self, elements_per_packet: int) -> int:
        """Packets needed to ship the flow at a given packing factor."""
        if elements_per_packet <= 0:
            raise ConfigError(
                f"elements per packet must be positive, got {elements_per_packet}"
            )
        return math.ceil(self.element_count / elements_per_packet)

    def packets(
        self,
        coflow_id: int,
        elements_per_packet: int,
        key_base: int = 0,
        value_fn=None,
        opcode: int = 0,
        round_: int = 0,
    ) -> list[Packet]:
        """Materialize the flow as coflow packets.

        Keys are ``key_base + i`` for element ``i``; values default to the
        key (identity) unless ``value_fn(key)`` is given.  Packets carry
        ``elements_per_packet`` elements each, except a possibly-short tail.
        """
        packets: list[Packet] = []
        produced = 0
        seq = 0
        while produced < self.element_count:
            count = min(elements_per_packet, self.element_count - produced)
            elements = []
            for i in range(produced, produced + count):
                key = key_base + i
                value = value_fn(key) if value_fn is not None else key
                elements.append((key, value))
            packet = make_coflow_packet(
                coflow_id,
                self.flow_id,
                seq,
                elements,
                element_width_bytes=self.element_width_bytes,
                opcode=opcode,
                worker_id=self.worker_id,
                round_=round_,
            )
            packet.meta.ingress_port = self.src_port
            packet.meta.egress_port = self.dst_port
            packets.append(packet)
            produced += count
            seq += 1
        return packets


@dataclass
class Coflow:
    """A set of coordinated flows with one application semantic.

    Attributes:
        coflow_id: Globally unique id.
        flows: Component flows.
        pattern: Free-form label of the communication pattern
            (``"aggregation"``, ``"shuffle"``, ``"bsp"``, ``"multicast"``).
        release_time: When the coflow's first byte may be sent (seconds).
    """

    coflow_id: int
    flows: list[Flow] = field(default_factory=list)
    pattern: str = "generic"
    release_time: float = 0.0

    def __post_init__(self) -> None:
        ids = [f.flow_id for f in self.flows]
        if len(set(ids)) != len(ids):
            raise ConfigError(
                f"coflow {self.coflow_id} has duplicate flow ids"
            )

    def add(self, flow: Flow) -> None:
        if any(f.flow_id == flow.flow_id for f in self.flows):
            raise ConfigError(
                f"coflow {self.coflow_id} already has flow {flow.flow_id}"
            )
        self.flows.append(flow)

    @property
    def input_flows(self) -> list[Flow]:
        return [f for f in self.flows if f.direction is FlowDirection.INPUT]

    @property
    def output_flows(self) -> list[Flow]:
        return [f for f in self.flows if f.direction is FlowDirection.OUTPUT]

    @property
    def width(self) -> int:
        """Number of component flows (the coflow literature's 'width')."""
        return len(self.flows)

    @property
    def size_bytes(self) -> int:
        """Total application bytes across all flows."""
        return sum(f.size_bytes for f in self.flows)

    @property
    def length_bytes(self) -> int:
        """Size of the largest flow (the coflow literature's 'length')."""
        if not self.flows:
            return 0
        return max(f.size_bytes for f in self.flows)

    @property
    def total_elements(self) -> int:
        return sum(f.element_count for f in self.flows)

    def ingress_ports(self) -> set[int]:
        """Ports the coflow's input flows arrive on."""
        return {f.src_port for f in self.input_flows}

    def egress_ports(self) -> set[int]:
        """Ports the coflow's output flows leave on."""
        return {f.dst_port for f in self.output_flows}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Coflow {self.coflow_id} {self.pattern} width={self.width} "
            f"size={self.size_bytes}B>"
        )
