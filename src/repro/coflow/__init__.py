"""Coflow abstraction and workloads.

A *coflow* (Chowdhury & Stoica, the paper's reference [6]) is a set of
coordinated flows with a shared application-level completion semantic.  The
paper's thesis is that switches should process coflows, not individual
flows, so this package is the vocabulary of every experiment:

- :class:`~repro.coflow.model.Flow` / :class:`~repro.coflow.model.Coflow` —
  the data model, including per-flow source/destination ports and element
  payload descriptions.
- :mod:`~repro.coflow.workload` — synthetic coflow generators shaped like
  the published Facebook coflow benchmark (heavy-tailed widths and sizes)
  plus pattern-specific generators for the Table 1 applications
  (all-to-all aggregation, shuffle, BSP rounds, multicast groups).
- :mod:`~repro.coflow.metrics` — coflow completion time, goodput, and
  key-rate accounting.
- :mod:`~repro.coflow.placement` — hash/range/explicit placement policies
  used by the ADCP's first traffic manager.
"""

from .metrics import CoflowMetrics, completion_time, goodput_fraction, key_rate
from .model import Coflow, Flow, FlowDirection
from .placement import (
    ExplicitPlacement,
    HashPlacement,
    PlacementPolicy,
    PortAffinityPlacement,
    RangePlacement,
)
from .scheduler import (
    CoflowScheduler,
    FairSharingScheduler,
    FifoCoflowScheduler,
    ScheduleResult,
    SebfScheduler,
)
from .workload import (
    CoflowWorkload,
    WorkloadShape,
    aggregation_coflow,
    bsp_round_coflow,
    multicast_coflow,
    shuffle_coflow,
    synthesize_workload,
)

__all__ = [
    "Coflow",
    "CoflowMetrics",
    "CoflowScheduler",
    "CoflowWorkload",
    "ExplicitPlacement",
    "FairSharingScheduler",
    "FifoCoflowScheduler",
    "Flow",
    "FlowDirection",
    "HashPlacement",
    "ScheduleResult",
    "SebfScheduler",
    "PlacementPolicy",
    "PortAffinityPlacement",
    "RangePlacement",
    "WorkloadShape",
    "aggregation_coflow",
    "bsp_round_coflow",
    "completion_time",
    "goodput_fraction",
    "key_rate",
    "multicast_coflow",
    "shuffle_coflow",
    "synthesize_workload",
]
