"""Chip-feasibility models for the section 4 discussion.

First-order physical-design estimators, parameterized and documented as
such — the point is to reproduce the *relationships* section 4 argues
about, not sign-off numbers:

- :mod:`~repro.feasibility.area` — block-level area model (MAUs, SRAM/
  TCAM macros, TMs), with the frequency-dependent gate-sizing relief the
  paper expects from lower clocks.
- :mod:`~repro.feasibility.power` — dynamic + leakage power versus
  frequency with a DVFS voltage curve.
- :mod:`~repro.feasibility.floorplan` — a g-cell grid with rectangular
  block placement; builds the monolithic and interleaved TM layouts the
  paper contrasts.
- :mod:`~repro.feasibility.congestion` — congestion-driven routing demand
  estimation over g-cells ("routing congestion is measured as the area of
  each g-cell divided by the area required to route all the signal wires
  willing to traverse the cell").
"""

from .area import AreaModel, BlockArea
from .chip import ChipBudget, ChipModel
from .congestion import CongestionReport, RoutingEstimator, Net
from .floorplan import Block, Floorplan, adcp_floorplan, interleaved_tm_floorplan, monolithic_tm_floorplan
from .power import PowerModel

__all__ = [
    "AreaModel",
    "Block",
    "BlockArea",
    "ChipBudget",
    "ChipModel",
    "CongestionReport",
    "Floorplan",
    "Net",
    "PowerModel",
    "RoutingEstimator",
    "adcp_floorplan",
    "interleaved_tm_floorplan",
    "monolithic_tm_floorplan",
]
