"""G-cell routing congestion estimation.

Section 4 defines the metric: "the routing congestion is measured as the
area of each g-cell divided by the area required to route all the signal
wires willing to traverse the cell" — i.e. demand over capacity per cell.
We route each net between its endpoints' block centers with the two
L-shaped (one-bend) Manhattan paths, splitting the net's wire count evenly
between them (the standard probabilistic global-routing estimate), then
report per-cell demand / capacity.

"The routing congestion problem is most likely to occur in the proximity
of heavily shared IP blocks, e.g., shared memories" — which the A1
benchmark shows by comparing the monolithic versus interleaved TM
floorplans under the same netlist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .floorplan import Floorplan


@dataclass(frozen=True)
class Net:
    """A two-pin net: block names plus the number of signal wires."""

    src: str
    dst: str
    wires: int

    def __post_init__(self) -> None:
        if self.wires < 1:
            raise ConfigError(f"net {self.src}->{self.dst} needs wires")


@dataclass
class CongestionReport:
    """Per-cell congestion (demand / capacity) plus summary figures."""

    congestion: np.ndarray  # shape (height, width)
    capacity_per_cell: float
    total_wirelength: float

    @property
    def max_congestion(self) -> float:
        return float(self.congestion.max())

    @property
    def mean_congestion(self) -> float:
        return float(self.congestion.mean())

    def percentile(self, p: float) -> float:
        if not 0 <= p <= 100:
            raise ConfigError("percentile must be in [0, 100]")
        return float(np.percentile(self.congestion, p))

    @property
    def overflowed_cells(self) -> int:
        """Cells whose demand exceeds capacity (congestion > 1)."""
        return int((self.congestion > 1.0).sum())

    @property
    def hotspot(self) -> tuple[int, int]:
        """(x, y) of the most congested g-cell."""
        flat = int(np.argmax(self.congestion))
        y, x = divmod(flat, self.congestion.shape[1])
        return x, y


class RoutingEstimator:
    """Probabilistic L-shape global router over a floorplan's g-cells."""

    def __init__(self, plan: Floorplan, capacity_per_cell: float = 256.0) -> None:
        if capacity_per_cell <= 0:
            raise ConfigError("g-cell capacity must be positive")
        self.plan = plan
        self.capacity_per_cell = capacity_per_cell

    def _add_segment(
        self,
        demand: np.ndarray,
        x0: float,
        y0: float,
        x1: float,
        y1: float,
        wires: float,
    ) -> float:
        """Add demand along an axis-aligned segment; returns wirelength.

        Zero-length segments (degenerate L-legs of straight nets) add no
        demand — otherwise endpoint cells would be double-counted.
        """
        if int(x0) == int(x1) and int(y0) == int(y1):
            return 0.0
        cx0, cx1 = sorted((int(x0), int(x1)))
        cy0, cy1 = sorted((int(y0), int(y1)))
        cx1 = min(cx1, self.plan.width - 1)
        cy1 = min(cy1, self.plan.height - 1)
        demand[cy0 : cy1 + 1, cx0 : cx1 + 1] += wires
        return (abs(x1 - x0) + abs(y1 - y0)) * wires

    def estimate(self, nets: list[Net]) -> CongestionReport:
        """Route all nets and return the congestion map."""
        if not nets:
            raise ConfigError("need at least one net")
        demand = np.zeros((self.plan.height, self.plan.width), dtype=float)
        wirelength = 0.0
        for net in nets:
            sx, sy = self.plan.block(net.src).center
            dx, dy = self.plan.block(net.dst).center
            half = net.wires / 2.0
            # L-shape 1: horizontal first, then vertical.
            wirelength += self._add_segment(demand, sx, sy, dx, sy, half)
            self._add_segment(demand, dx, sy, dx, dy, half)
            # L-shape 2: vertical first, then horizontal.
            self._add_segment(demand, sx, sy, sx, dy, half)
            self._add_segment(demand, sx, dy, dx, dy, half)
        return CongestionReport(
            demand / self.capacity_per_cell,
            self.capacity_per_cell,
            wirelength,
        )


def tm_netlist_monolithic(pipelines: int, wires_per_pipeline: int) -> list[Net]:
    """Nets of the classic layout: every pipeline talks to the one TM."""
    if pipelines < 1:
        raise ConfigError("need at least one pipeline")
    nets: list[Net] = []
    for i in range(pipelines):
        nets.append(Net(f"ingress{i}", "tm", wires_per_pipeline))
        nets.append(Net("tm", f"egress{i}", wires_per_pipeline))
    return nets


def tm_netlist_interleaved(
    pipelines: int, wires_per_pipeline: int, state_wires: int | None = None
) -> list[Net]:
    """Nets of the sliced layout.

    Pipeline wires go to the local slice; slices exchange shared-buffer
    state over a (narrower) ring, defaulting to a quarter of the data
    width.
    """
    if pipelines < 1:
        raise ConfigError("need at least one pipeline")
    ring = state_wires if state_wires is not None else max(1, wires_per_pipeline // 4)
    nets: list[Net] = []
    for i in range(pipelines):
        nets.append(Net(f"ingress{i}", f"tm_slice{i}", wires_per_pipeline))
        nets.append(Net(f"tm_slice{i}", f"egress{i}", wires_per_pipeline))
        nets.append(Net(f"tm_slice{i}", f"tm_slice{(i + 1) % pipelines}", ring))
    return nets
