"""Frequency-dependent power estimation.

Section 4: lowering pipeline clocks "can lower the power requirements of
the resulting chip".  Standard first-order CMOS model:

    P_dynamic = alpha * C_eff * V(f)^2 * f
    P_leakage = leakage_per_mm2 * area * (V(f) / V_ref)

with a linear DVFS curve V(f) — higher clocks need higher voltage, so
dynamic power grows *superlinearly* in f.  That superlinearity is what
makes the ADCP's demux-to-lower-clocks trade profitable even though it
multiplies the pipeline count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import GHZ


@dataclass(frozen=True)
class PowerModel:
    """First-order dynamic + leakage power model.

    Attributes:
        ceff_nf_per_mm2: Effective switched capacitance per mm^2 of logic.
        activity: Switching activity factor (0..1).
        v_min / v_ref / f_ref: DVFS curve anchors: V(f) = v_min +
            (v_ref - v_min) * (f / f_ref), floored at v_min.
        leakage_w_per_mm2: Leakage density at v_ref.
    """

    ceff_nf_per_mm2: float = 0.9
    activity: float = 0.15
    v_min: float = 0.55
    v_ref: float = 0.85
    f_ref_hz: float = 1.62 * GHZ
    leakage_w_per_mm2: float = 0.04

    def __post_init__(self) -> None:
        if self.v_min <= 0 or self.v_ref < self.v_min:
            raise ConfigError("DVFS curve requires 0 < v_min <= v_ref")
        if not 0 < self.activity <= 1:
            raise ConfigError("activity must be in (0, 1]")

    def voltage(self, frequency_hz: float) -> float:
        """Supply voltage required for ``frequency_hz`` (linear DVFS)."""
        if frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        v = self.v_min + (self.v_ref - self.v_min) * (frequency_hz / self.f_ref_hz)
        return max(v, self.v_min)

    def dynamic_power_w(self, logic_mm2: float, frequency_hz: float) -> float:
        """Dynamic power of ``logic_mm2`` of logic at ``frequency_hz``."""
        if logic_mm2 < 0:
            raise ConfigError("area must be non-negative")
        v = self.voltage(frequency_hz)
        ceff_f = self.ceff_nf_per_mm2 * 1e-9 * logic_mm2
        return self.activity * ceff_f * v * v * frequency_hz

    def leakage_power_w(self, total_mm2: float, frequency_hz: float) -> float:
        """Leakage of the whole block, scaled by operating voltage."""
        if total_mm2 < 0:
            raise ConfigError("area must be non-negative")
        v = self.voltage(frequency_hz)
        return self.leakage_w_per_mm2 * total_mm2 * (v / self.v_ref)

    def total_power_w(
        self, logic_mm2: float, total_mm2: float, frequency_hz: float
    ) -> float:
        return self.dynamic_power_w(logic_mm2, frequency_hz) + self.leakage_power_w(
            total_mm2, frequency_hz
        )

    def power_ratio(
        self,
        logic_mm2_a: float,
        freq_a_hz: float,
        logic_mm2_b: float,
        freq_b_hz: float,
    ) -> float:
        """Dynamic power of design A over design B (same memory assumed)."""
        return self.dynamic_power_w(logic_mm2_a, freq_a_hz) / self.dynamic_power_w(
            logic_mm2_b, freq_b_hz
        )
