"""Grid floorplans: block placement over g-cells.

"Modern electronic design automation tools organize the floorplan in a
grid of so-called g-cells and iteratively solve the routing problem using
congestion-driven heuristics" (section 4).  A :class:`Floorplan` is a
rectangular grid of g-cells with non-overlapping rectangular blocks; the
congestion estimator routes nets between block centers across this grid.

Two layout families matter to the paper's argument:

- :func:`monolithic_tm_floorplan` — each TM is one compact block; all
  pipeline interconnect converges on it ("a possible source of routing
  congestion").
- :func:`interleaved_tm_floorplan` — "their floorplan should be spread
  across the layout and interleaved with other logic elements, e.g.,
  pipelines": the TM is sliced, one slice adjacent to each pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, FeasibilityError


@dataclass(frozen=True)
class Block:
    """A placed rectangular block, in g-cell coordinates (inclusive min,
    exclusive max)."""

    name: str
    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ConfigError(f"block {self.name!r} has non-positive extent")

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    @property
    def cells(self) -> int:
        return (self.x1 - self.x0) * (self.y1 - self.y0)

    def overlaps(self, other: "Block") -> bool:
        return not (
            self.x1 <= other.x0
            or other.x1 <= self.x0
            or self.y1 <= other.y0
            or other.y1 <= self.y0
        )


class Floorplan:
    """A g-cell grid with named, non-overlapping blocks."""

    def __init__(self, width: int, height: int, name: str = "chip") -> None:
        if width < 1 or height < 1:
            raise ConfigError("floorplan must be at least 1x1 g-cells")
        self.width = width
        self.height = height
        self.name = name
        self._blocks: dict[str, Block] = {}

    def place(self, block: Block) -> None:
        """Add a block; rejects overlaps and out-of-grid placements."""
        if block.name in self._blocks:
            raise ConfigError(f"duplicate block {block.name!r}")
        if block.x0 < 0 or block.y0 < 0 or block.x1 > self.width or block.y1 > self.height:
            raise FeasibilityError(
                f"block {block.name!r} exceeds the {self.width}x{self.height} grid"
            )
        for existing in self._blocks.values():
            if block.overlaps(existing):
                raise FeasibilityError(
                    f"block {block.name!r} overlaps {existing.name!r}"
                )
        self._blocks[block.name] = block

    def block(self, name: str) -> Block:
        if name not in self._blocks:
            raise ConfigError(f"no block {name!r} in floorplan {self.name!r}")
        return self._blocks[name]

    def blocks(self) -> list[Block]:
        return list(self._blocks.values())

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    @property
    def utilization(self) -> float:
        used = sum(b.cells for b in self._blocks.values())
        return used / (self.width * self.height)


def monolithic_tm_floorplan(
    pipelines: int,
    pipeline_cells: tuple[int, int] = (4, 12),
    tm_cells: tuple[int, int] = (6, 6),
    name: str = "monolithic",
) -> Floorplan:
    """Pipelines in two columns, one compact TM block in the center gap.

    Layout (for 4 pipelines)::

        [in0] . [tm] . [out0]
        [in1] . [tm] . [out1]

    Ingress pipelines fill the left column, egress the right, the TM sits
    alone in the middle — every pipeline<->TM net converges on it.
    """
    if pipelines < 1:
        raise ConfigError("need at least one pipeline")
    pw, ph = pipeline_cells
    tw, th = tm_cells
    gap = 2
    width = pw + gap + tw + gap + pw
    height = max(pipelines * (ph + 1) + 1, th + 2)
    plan = Floorplan(width, height, name)
    for i in range(pipelines):
        y0 = 1 + i * (ph + 1)
        plan.place(Block(f"ingress{i}", 0, y0, pw, y0 + ph))
        plan.place(Block(f"egress{i}", pw + gap + tw + gap, y0, width, y0 + ph))
    tm_y0 = (height - th) // 2
    plan.place(Block("tm", pw + gap, tm_y0, pw + gap + tw, tm_y0 + th))
    return plan


def interleaved_tm_floorplan(
    pipelines: int,
    pipeline_cells: tuple[int, int] = (4, 12),
    tm_cells: tuple[int, int] = (6, 6),
    name: str = "interleaved",
) -> Floorplan:
    """Same pipelines, but the TM is sliced across the middle column.

    Each slice sits directly between one ingress/egress pair, so the
    pipeline<->TM wires stay local; only the (thinner) slice-to-slice
    state wires run vertically.
    """
    if pipelines < 1:
        raise ConfigError("need at least one pipeline")
    pw, ph = pipeline_cells
    tw, th = tm_cells
    gap = 2
    width = pw + gap + tw + gap + pw
    height = max(pipelines * (ph + 1) + 1, th + 2)
    plan = Floorplan(width, height, name)
    slice_h = max(1, min(ph, (th * max(1, pipelines) // pipelines)))
    for i in range(pipelines):
        y0 = 1 + i * (ph + 1)
        plan.place(Block(f"ingress{i}", 0, y0, pw, y0 + ph))
        plan.place(Block(f"egress{i}", pw + gap + tw + gap, y0, width, y0 + ph))
        slice_y0 = y0 + (ph - slice_h) // 2
        plan.place(
            Block(f"tm_slice{i}", pw + gap, slice_y0, pw + gap + tw, slice_y0 + slice_h)
        )
    return plan


def adcp_floorplan(
    lanes: int,
    central: int,
    pipeline_cells: tuple[int, int] = (3, 8),
    tm_cells: tuple[int, int] = (4, 4),
    name: str = "adcp",
) -> Floorplan:
    """Five-column ADCP layout: ingress | TM1 | central | TM2 | egress.

    Both TMs are interleaved (sliced per adjacent pipeline), following the
    paper's own congestion-mitigation advice.
    """
    if lanes < 1 or central < 1:
        raise ConfigError("need lanes and central pipelines")
    pw, ph = pipeline_cells
    tw, _ = tm_cells
    gap = 1
    width = pw + gap + tw + gap + pw + gap + tw + gap + pw
    rows = max(lanes, central)
    height = rows * (ph + 1) + 1
    plan = Floorplan(width, height, name)
    for i in range(lanes):
        y0 = 1 + i * (ph + 1)
        plan.place(Block(f"ingress{i}", 0, y0, pw, y0 + ph))
        plan.place(
            Block(
                f"egress{i}",
                pw + gap + tw + gap + pw + gap + tw + gap,
                y0,
                width,
                y0 + ph,
            )
        )
    central_x0 = pw + gap + tw + gap
    for i in range(central):
        y0 = 1 + i * (ph + 1)
        plan.place(Block(f"central{i}", central_x0, y0, central_x0 + pw, y0 + ph))
    tm1_x0 = pw + gap
    tm2_x0 = pw + gap + tw + gap + pw + gap
    for i in range(rows):
        y0 = 1 + i * (ph + 1)
        slice_h = max(1, ph // 2)
        slice_y0 = y0 + (ph - slice_h) // 2
        plan.place(Block(f"tm1_slice{i}", tm1_x0, slice_y0, tm1_x0 + tw, slice_y0 + slice_h))
        plan.place(Block(f"tm2_slice{i}", tm2_x0, slice_y0, tm2_x0 + tw, slice_y0 + slice_h))
    return plan
