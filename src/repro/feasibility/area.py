"""Block-level chip area estimation.

Calibrated to the published RMT figures' order of magnitude (the original
RMT paper reports match-action stages dominating a ~200 mm^2 class die),
with one paper-specific effect: "Lower frequency can also translate into
using potentially smaller gates and, therefore, improving the area
requirements" (section 4).  Logic area therefore shrinks below a reference
frequency by a bounded factor; memory macros do not shrink (their area is
bit-count dominated).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import GHZ


@dataclass(frozen=True)
class BlockArea:
    """Area of one named block, split into logic and memory parts."""

    name: str
    logic_mm2: float
    memory_mm2: float

    def __post_init__(self) -> None:
        if self.logic_mm2 < 0 or self.memory_mm2 < 0:
            raise ConfigError(f"block {self.name!r} has negative area")

    @property
    def total_mm2(self) -> float:
        return self.logic_mm2 + self.memory_mm2


@dataclass(frozen=True)
class AreaModel:
    """Per-resource area coefficients (mm^2), all tunable.

    Attributes:
        mau_logic_mm2: Match/action logic of one MAU at the reference
            frequency.
        sram_mm2_per_mbit / tcam_mm2_per_mbit: Macro densities.
        tm_base_mm2: Fixed TM scheduler logic.
        tm_mm2_per_port: Crossbar/scheduler growth per connected pipeline.
        tm_buffer_mm2_per_mbit: Shared packet buffer density.
        reference_frequency_hz: Frequency the logic coefficients assume.
        frequency_area_exponent: Logic area scales as
            ``(f / f_ref) ** exponent`` for f < f_ref (gate sizing relief),
            clamped to ``min_logic_scale``; faster-than-reference designs
            pay the inverse.
    """

    mau_logic_mm2: float = 0.045
    sram_mm2_per_mbit: float = 0.20
    tcam_mm2_per_mbit: float = 0.60
    parser_mm2: float = 0.35
    deparser_mm2: float = 0.25
    tm_base_mm2: float = 2.0
    tm_mm2_per_port: float = 0.12
    tm_buffer_mm2_per_mbit: float = 0.22
    reference_frequency_hz: float = 1.25 * GHZ
    frequency_area_exponent: float = 0.5
    min_logic_scale: float = 0.55

    def logic_scale(self, frequency_hz: float) -> float:
        """Gate-sizing area factor for logic clocked at ``frequency_hz``."""
        if frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        ratio = frequency_hz / self.reference_frequency_hz
        scale = ratio**self.frequency_area_exponent
        return max(scale, self.min_logic_scale)

    def pipeline_area(
        self,
        name: str,
        stages: int,
        maus_per_stage: int,
        sram_mbit_per_stage: float,
        tcam_mbit_per_stage: float,
        frequency_hz: float,
    ) -> BlockArea:
        """Area of one pipeline (parser + stages + deparser)."""
        if stages < 1 or maus_per_stage < 1:
            raise ConfigError("pipeline needs stages and MAUs")
        scale = self.logic_scale(frequency_hz)
        logic = (
            self.parser_mm2
            + self.deparser_mm2
            + stages * maus_per_stage * self.mau_logic_mm2
        ) * scale
        memory = stages * (
            sram_mbit_per_stage * self.sram_mm2_per_mbit
            + tcam_mbit_per_stage * self.tcam_mm2_per_mbit
        )
        return BlockArea(name, logic, memory)

    def tm_area(
        self,
        name: str,
        connected_pipelines: int,
        buffer_mbit: float,
        frequency_hz: float,
    ) -> BlockArea:
        """Area of one traffic manager."""
        if connected_pipelines < 1:
            raise ConfigError("TM must connect at least one pipeline")
        scale = self.logic_scale(frequency_hz)
        logic = (
            self.tm_base_mm2 + connected_pipelines * self.tm_mm2_per_port
        ) * scale
        memory = buffer_mbit * self.tm_buffer_mm2_per_mbit
        return BlockArea(name, logic, memory)

    def array_interconnect_area(
        self, name: str, array_width: int, maus_per_stage: int, stages: int
    ) -> BlockArea:
        """The programmable intra-stage memory interconnect of section 3.2.

        Modeled as crossbar logic quadratic in the array width (the
        all-to-all pattern between MAUs and memory banks), per stage.
        """
        if array_width < 1:
            raise ConfigError("array width must be >= 1")
        if array_width > maus_per_stage:
            raise ConfigError("array width cannot exceed MAUs per stage")
        per_stage = 0.002 * array_width * array_width
        return BlockArea(name, per_stage * stages, 0.0)
