"""Full-chip composition: area and power budgets for complete designs.

Section 4 argues feasibility piecewise; this module composes the piece
models into whole-chip budgets so the two architectures can be compared
at equal throughput:

- an **RMT chip**: p pipeline pairs at the Table 2 clock, one TM;
- an **ADCP chip**: n x m ingress/egress lanes at the demuxed clock, a
  central bank, two TMs, plus the array-interconnect overhead of §3.2.

The models inherit every caveat of :mod:`repro.feasibility.area` and
:mod:`repro.feasibility.power`: first-order, calibrated to published
orders of magnitude, intended for *relationships* (which knob moves what)
rather than sign-off numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..adcp.config import ADCPConfig
from ..errors import ConfigError
from ..rmt.config import RMTConfig
from .area import AreaModel, BlockArea
from .power import PowerModel


@dataclass
class ChipBudget:
    """Composed area and power of one chip design."""

    name: str
    blocks: list[BlockArea] = field(default_factory=list)
    dynamic_w: float = 0.0
    leakage_w: float = 0.0

    @property
    def logic_mm2(self) -> float:
        return sum(b.logic_mm2 for b in self.blocks)

    @property
    def memory_mm2(self) -> float:
        return sum(b.memory_mm2 for b in self.blocks)

    @property
    def total_mm2(self) -> float:
        return self.logic_mm2 + self.memory_mm2

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w

    def block(self, name: str) -> BlockArea:
        for block in self.blocks:
            if block.name == name:
                return block
        raise ConfigError(f"chip {self.name!r} has no block {name!r}")


@dataclass(frozen=True)
class ChipModel:
    """Composes pipeline/TM/interconnect blocks into chip budgets.

    Attributes:
        area: The per-block area model.
        power: The frequency/voltage power model.
        sram_mbit_per_stage / tcam_mbit_per_stage: Match memory per stage
            (identical on both targets — the comparison holds memory
            capacity constant).
        tm_buffer_mbit: Shared packet buffer per traffic manager.
    """

    area: AreaModel = AreaModel()
    power: PowerModel = PowerModel()
    sram_mbit_per_stage: float = 8.96  # 80 blocks x 1K x 112 b
    tcam_mbit_per_stage: float = 1.92  # 24 blocks x 2K x 40 b
    tm_buffer_mbit: float = 64.0

    def _add(self, budget: ChipBudget, block: BlockArea, frequency_hz: float) -> None:
        budget.blocks.append(block)
        budget.dynamic_w += self.power.dynamic_power_w(block.logic_mm2, frequency_hz)
        budget.leakage_w += self.power.leakage_power_w(block.total_mm2, frequency_hz)

    def rmt_chip(self, config: RMTConfig) -> ChipBudget:
        """Budget for a full RMT switch chip."""
        budget = ChipBudget(f"rmt_{config.throughput_bps / 1e12:.1f}T")
        for region in ("ingress", "egress"):
            for index in range(config.pipelines):
                block = self.area.pipeline_area(
                    f"{region}{index}",
                    config.stages_per_pipeline,
                    config.maus_per_stage,
                    self.sram_mbit_per_stage,
                    self.tcam_mbit_per_stage,
                    config.frequency_hz,
                )
                self._add(budget, block, config.frequency_hz)
        tm = self.area.tm_area(
            "tm", 2 * config.pipelines, self.tm_buffer_mbit, config.frequency_hz
        )
        self._add(budget, tm, config.frequency_hz)
        return budget

    def adcp_chip(self, config: ADCPConfig) -> ChipBudget:
        """Budget for a full ADCP switch chip.

        Lanes run at the demuxed clock; central pipelines at the central
        clock; each array-capable pipeline also pays the §3.2 intra-stage
        interconnect.
        """
        budget = ChipBudget(f"adcp_{config.throughput_bps / 1e12:.1f}T")
        lane_hz = config.lane_frequency_hz
        for region, count in (("ingress", config.ingress_pipelines),
                              ("egress", config.egress_pipelines)):
            for index in range(count):
                block = self.area.pipeline_area(
                    f"{region}{index}",
                    config.stages_per_pipeline,
                    config.maus_per_stage,
                    self.sram_mbit_per_stage,
                    self.tcam_mbit_per_stage,
                    lane_hz,
                )
                self._add(budget, block, lane_hz)
        central_hz = config.central_clock_hz
        for index in range(config.central_pipelines):
            block = self.area.pipeline_area(
                f"central{index}",
                config.stages_per_pipeline,
                config.maus_per_stage,
                self.sram_mbit_per_stage,
                self.tcam_mbit_per_stage,
                central_hz,
            )
            self._add(budget, block, central_hz)
            interconnect = self.area.array_interconnect_area(
                f"central{index}_xbar",
                config.array_width,
                config.maus_per_stage,
                config.stages_per_pipeline,
            )
            self._add(budget, interconnect, central_hz)
        tm1 = self.area.tm_area(
            "tm1",
            config.ingress_pipelines + config.central_pipelines,
            self.tm_buffer_mbit,
            central_hz,
        )
        self._add(budget, tm1, central_hz)
        tm2 = self.area.tm_area(
            "tm2",
            config.egress_pipelines + config.central_pipelines,
            self.tm_buffer_mbit,
            central_hz,
        )
        self._add(budget, tm2, central_hz)
        return budget

    def compare(
        self, rmt: RMTConfig, adcp: ADCPConfig
    ) -> dict[str, tuple[float, float, float]]:
        """(total mm^2, dynamic W, total W) per architecture, same memory."""
        if abs(rmt.throughput_bps - adcp.throughput_bps) > 1e-3 * rmt.throughput_bps:
            raise ConfigError(
                "compare() expects equal-throughput designs; got "
                f"{rmt.throughput_bps / 1e12:.1f}T vs "
                f"{adcp.throughput_bps / 1e12:.1f}T"
            )
        rmt_budget = self.rmt_chip(rmt)
        adcp_budget = self.adcp_chip(adcp)
        return {
            "rmt": (rmt_budget.total_mm2, rmt_budget.dynamic_w, rmt_budget.total_w),
            "adcp": (adcp_budget.total_mm2, adcp_budget.dynamic_w, adcp_budget.total_w),
        }
