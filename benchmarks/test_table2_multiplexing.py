"""Experiment T2 — regenerate Table 2, "Port multiplexing poor scalability".

For each published switch generation, recompute the pipeline frequency
from (port speed, ports per pipeline, minimum wire packet) and diff it
against the paper's number.  Every row must land within 1%.
"""

from __future__ import annotations

from benchlib import report
from repro.analytical.scaling import table2_rows


def test_table2_rows_reproduce(benchmark):
    rows = benchmark(table2_rows)

    lines = [
        f"{'thru':>9} {'port':>6} {'pipes':>5} {'p/pipe':>6} "
        f"{'minpkt':>6} {'paper':>6} {'model':>7} {'err':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row.throughput_gbps or 0:>7.0f} G {row.port_speed_gbps:>4.0f} G "
            f"{row.pipelines or 0:>5} {str(row.ports_per_pipeline):>6} "
            f"{row.min_packet_bytes:>5.0f}B {row.paper_freq_ghz:>5.2f}G "
            f"{row.computed_freq_ghz:>6.3f}G {row.freq_error:>6.2%}"
        )
    report("Table 2: port multiplexing poor scalability", lines)

    assert len(rows) == 5
    for row in rows:
        assert row.freq_error < 0.01, row

    # The paper's trend assertions: packet-size tax grows, ports per
    # pipeline shrink, frequency saturates at the 1.62 GHz wall.
    packets = [row.min_packet_bytes for row in rows]
    assert packets == sorted(packets) and packets[-1] / packets[0] > 5.8
    assert rows[-1].ports_per_pipeline < rows[0].ports_per_pipeline
    assert max(row.computed_freq_ghz for row in rows) < 1.7


def test_table2_frequency_wall_without_packet_tax(benchmark):
    """Counterfactual: holding honest 84 B packets, what clock would each
    Table 2 generation need?  This is the unsustainability argument in
    one sweep."""
    from repro.analytical.scaling import PAPER_TABLE2_ROWS
    from repro.units import GBPS, GHZ, pipeline_frequency

    def required_clocks():
        return [
            pipeline_frequency(
                row.port_speed_gbps * GBPS, float(row.ports_per_pipeline), 84.0
            )
            / GHZ
            for row in PAPER_TABLE2_ROWS
        ]

    clocks = benchmark(required_clocks)
    report(
        "Table 2 counterfactual: clock needed at honest 84 B minimum",
        [
            f"{row.port_speed_gbps:>5.0f} G x {str(row.ports_per_pipeline):>3} "
            f"ports/pipe -> {clock:5.2f} GHz"
            for row, clock in zip(PAPER_TABLE2_ROWS, clocks)
        ],
    )
    # 10G generation was honest; everything after needs > 2 GHz clocks.
    assert clocks[0] < 1.0
    assert all(clock > 2.0 for clock in clocks[1:])
    assert max(clocks) > 9.0  # "a 10 GHz processor is not a viable option"
